"""MoDisSENSE reproduction.

A from-scratch Python implementation of *MoDisSENSE: A Distributed
Spatio-Temporal and Textual Processing Platform for Social Networking
Services* (Mytilinis et al., SIGMOD 2015), including every substrate the
paper deploys: an HBase-compatible store with region coprocessors, a
PostgreSQL-style relational engine, a MapReduce framework, a sentiment
stack, distributed DBSCAN, simulated social networks, and the platform
layer that composes them.

Quickstart::

    from repro import MoDisSENSE, SearchQuery
    from repro.config import PlatformConfig

    platform = MoDisSENSE(PlatformConfig.small())
    ...
"""

from .config import (
    ClusterConfig,
    FaultsConfig,
    JobsConfig,
    PlatformConfig,
    SentimentConfig,
)
from .core import FaultInjector, MoDisSENSE, ScoredPOI, SearchQuery, SearchResult
from .core.api import RestApi
from .core.modules.trending import TrendingQuery

__version__ = "1.0.0"

__all__ = [
    "MoDisSENSE",
    "RestApi",
    "SearchQuery",
    "SearchResult",
    "ScoredPOI",
    "TrendingQuery",
    "PlatformConfig",
    "ClusterConfig",
    "FaultsConfig",
    "FaultInjector",
    "SentimentConfig",
    "JobsConfig",
    "__version__",
]
