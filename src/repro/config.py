"""Platform-wide configuration objects.

The paper deploys MoDisSENSE on an OpenStack cluster of dual-core VMs and
tunes the number of HBase nodes (4, 8, 16), the number of regions per
table, and the periodic-job windows.  :class:`PlatformConfig` gathers the
same knobs in one validated place so experiments can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .errors import ConfigError

#: Bounding box used for the paper's synthetic dataset: POIs "located in
#: Greece" collected from OpenStreetMap (Section 3.1).
GREECE_BBOX = (34.8, 19.3, 41.8, 29.6)  # (min_lat, min_lon, max_lat, max_lon)

#: Paper Section 3.1 workload constants.
PAPER_NUM_POIS = 8500
PAPER_NUM_USERS = 150_000
PAPER_VISITS_MEAN = 170.0
PAPER_VISITS_STD = 101.0
PAPER_CLUSTER_SIZES = (4, 8, 16)


@dataclass
class ClusterConfig:
    """Shape and cost model of the simulated HBase/Hadoop cluster.

    The cost-model constants are calibrated so that the 16-node cluster
    answers a 5000-friend personalized query in under a second, matching
    the paper's Figure 2 (see ``repro/cluster/simulation.py``).
    """

    num_nodes: int = 16
    cores_per_node: int = 2
    regions_per_table: int = 32
    #: Simulated one-way RPC latency between client and a region server.
    rpc_latency_ms: float = 1.2
    #: Simulated per-visit-record processing cost inside a coprocessor.
    #: Calibrated so 5000 friends x ~170 visits on 16 dual-core nodes
    #: lands just under 1 s (paper Figure 2's headline).
    cost_per_record_us: float = 17.5
    #: Simulated fixed cost of starting a coprocessor invocation.
    coprocessor_setup_ms: float = 0.35
    #: Simulated per-result merge cost at the web-server tier.
    merge_cost_per_item_us: float = 1.5
    #: Simulated client-side cost of routing one key (friend) to its
    #: owning region before fan-out.  A bisect over region start keys is
    #: sub-microsecond; the term keeps routed-query latencies honest
    #: about the work the client tier now performs.
    route_cost_per_key_us: float = 0.3

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1, got %r" % self.num_nodes)
        if self.cores_per_node < 1:
            raise ConfigError(
                "cores_per_node must be >= 1, got %r" % self.cores_per_node
            )
        if self.regions_per_table < 1:
            raise ConfigError(
                "regions_per_table must be >= 1, got %r" % self.regions_per_table
            )

    @property
    def total_cores(self) -> int:
        """Total number of simulated worker cores in the cluster."""
        return self.num_nodes * self.cores_per_node


@dataclass
class SentimentConfig:
    """Knobs of the Naive Bayes sentiment pipeline (paper Section 3.2)."""

    use_tf: bool = True
    use_bigrams: bool = True
    use_bns: bool = True
    min_occurrences: int = 3
    #: Fraction of features retained when BNS feature selection is on.
    bns_keep_fraction: float = 0.4
    stem: bool = True
    remove_stopwords: bool = True
    lowercase: bool = True

    def __post_init__(self) -> None:
        if self.min_occurrences < 0:
            raise ConfigError("min_occurrences must be >= 0")
        if not 0.0 < self.bns_keep_fraction <= 1.0:
            raise ConfigError("bns_keep_fraction must be in (0, 1]")

    @classmethod
    def baseline(cls) -> "SentimentConfig":
        """The paper's *baseline training process*: stemming, lowercase and
        stopword removal only — none of the four optimizations."""
        return cls(
            use_tf=False,
            use_bigrams=False,
            use_bns=False,
            min_occurrences=0,
        )

    @classmethod
    def optimized(cls) -> "SentimentConfig":
        """The paper's tuned configuration (tf, 2-grams, BNS, pruning)."""
        return cls()


@dataclass
class JobsConfig:
    """Periods of the platform's batch jobs, in simulated seconds."""

    data_collection_period_s: float = 900.0
    hotin_update_period_s: float = 3600.0
    event_detection_period_s: float = 3600.0
    #: Aggregation window *T* for hotness/interest (paper Section 2.2).
    hotin_window_s: float = 7 * 24 * 3600.0
    #: DBSCAN parameters for event detection.
    dbscan_eps_m: float = 60.0
    dbscan_min_points: int = 12
    #: GPS points closer than this to a known POI are filtered before
    #: clustering (paper Section 2.2, Event Detection Module).
    known_poi_filter_radius_m: float = 80.0

    def __post_init__(self) -> None:
        if self.dbscan_eps_m <= 0:
            raise ConfigError("dbscan_eps_m must be positive")
        if self.dbscan_min_points < 1:
            raise ConfigError("dbscan_min_points must be >= 1")


@dataclass
class TracingConfig:
    """Knobs of the query-tracing layer (``repro.core.tracing``).

    Tracing is **on by default**: spans only observe (results are
    identical with tracing on or off), per-query overhead is a handful
    of lock-protected appends, and both trace buffers are bounded ring
    buffers — the CI overhead smoke job enforces <10% end-to-end cost.
    Set ``enabled=False`` to hand out no-op spans everywhere.
    """

    enabled: bool = True
    #: Ring-buffer capacity for assembled span trees (``admin_traces``).
    max_traces: int = 128
    #: Root spans at or above this latency (simulated ``latency_ms`` tag
    #: when present, wall duration otherwise) are also captured in the
    #: slow-query log.  ``None`` disables the log.
    slow_query_threshold_ms: float = 250.0
    #: Slow-query ring-buffer capacity.
    slow_log_size: int = 32

    def __post_init__(self) -> None:
        if self.max_traces < 1:
            raise ConfigError("max_traces must be >= 1")
        if self.slow_log_size < 1:
            raise ConfigError("slow_log_size must be >= 1")
        if (
            self.slow_query_threshold_ms is not None
            and self.slow_query_threshold_ms < 0
        ):
            raise ConfigError("slow_query_threshold_ms cannot be negative")


@dataclass
class FaultsConfig:
    """Fault injection + fan-out resilience knobs.

    Two halves live here on purpose.  The *injection* half (rates, hang
    latency, lost-region fraction) only acts when ``enabled`` is True
    and a :class:`~repro.core.faults.FaultInjector` is attached to the
    cluster — with it off, query results are byte-identical to a build
    without the fault layer.  The *resilience* half (retries, backoff,
    deadline, hedging, circuit breaker) configures the query fan-out's
    recovery machinery, which also protects against real coprocessor
    exceptions, injector or not.
    """

    #: Arms the injector.  Off by default: the clean path never draws.
    enabled: bool = False
    #: Seed for every injection decision; decisions are derived from
    #: ``(seed, fanout-epoch, region, attempt)`` so they are repeatable
    #: regardless of thread-pool interleaving.
    seed: int = 1337
    #: Per-attempt probability a region invocation raises.
    region_error_rate: float = 0.0
    #: Per-attempt probability a region invocation straggles.
    region_hang_rate: float = 0.0
    #: Simulated added latency of one injected hang.
    hang_ms: float = 400.0
    #: Per-attempt probability a region returns a corrupt partial.
    corrupt_rate: float = 0.0
    #: Fraction of a failed node's regions whose data stays unavailable
    #: until the node recovers (models losing the replica too).
    lost_region_fraction: float = 0.0
    #: Injected stale-location errors per moved region after a node
    #: failure (the client's META cache pointing at the dead server).
    stale_location_errors: int = 1

    # ---- resilience knobs (honored with or without an injector) ----
    #: Re-invocations of a failed region before hedging/degrading.
    max_retries: int = 2
    #: First retry's simulated backoff; grows by ``retry_backoff_multiplier``.
    retry_backoff_ms: float = 2.0
    retry_backoff_multiplier: float = 2.0
    #: Upper bound of the deterministic jitter added to each backoff.
    retry_jitter_ms: float = 1.0
    #: Whole-query deadline from which each region's recovery budget is
    #: derived; retries/hedges stop once a region's accumulated extra
    #: (simulated) spend crosses it.  The first attempt always runs, so
    #: zero-fault queries are never cut short.  ``None`` disables it.
    query_deadline_ms: Optional[float] = 2000.0
    #: When True, a fan-out whose simulated latency exceeds the deadline
    #: raises :class:`~repro.errors.QueryDeadlineExceeded` instead of
    #: degrading gracefully.
    strict_deadline: bool = False
    #: Re-execute a failed/straggling region once against a surviving
    #: node before declaring it missing.
    hedge_enabled: bool = True
    #: Consecutive failures that open a node's circuit breaker.
    breaker_threshold: int = 3
    #: Fan-outs a breaker stays open before admitting a probe request.
    breaker_cooldown_fanouts: int = 4

    def __post_init__(self) -> None:
        for name in ("region_error_rate", "region_hang_rate", "corrupt_rate",
                     "lost_region_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError("%s must be in [0, 1], got %r" % (name, value))
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0 or self.retry_jitter_ms < 0:
            raise ConfigError("backoff/jitter cannot be negative")
        if self.retry_backoff_multiplier < 1.0:
            raise ConfigError("retry_backoff_multiplier must be >= 1")
        if self.hang_ms < 0:
            raise ConfigError("hang_ms cannot be negative")
        if self.query_deadline_ms is not None and self.query_deadline_ms <= 0:
            raise ConfigError("query_deadline_ms must be positive or None")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_fanouts < 1:
            raise ConfigError("breaker_cooldown_fanouts must be >= 1")
        if self.stale_location_errors < 0:
            raise ConfigError("stale_location_errors cannot be negative")

    @classmethod
    def chaos(cls, seed: int = 1337, **overrides) -> "FaultsConfig":
        """An armed injector with moderate default rates — the starting
        point for chaos tests and the ``chaos-smoke`` CI job."""
        defaults = dict(
            enabled=True,
            seed=seed,
            region_error_rate=0.1,
            region_hang_rate=0.05,
            lost_region_fraction=0.25,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class CacheConfig:
    """Knobs of the concurrent-query caching layer.

    Caching is **off by default**: with ``enabled=False`` no cache object
    is ever constructed and the query path is byte-identical to a build
    without the cache layer.  With it on, answers are still guaranteed
    byte-identical — the scan cache stamps every entry with the owning
    region's data sequence id (any write/flush/compaction makes the
    entry stale), and the hot-POI cache revalidates against the POI
    repository's version plus an explicit HotIn epoch.

    ``coalesce`` governs single-flight deduplication of identical
    in-flight personalized queries.  It defaults on independently of
    ``enabled`` because coalescing stores nothing: concurrent identical
    callers simply share the one fan-out's result, so there is no
    staleness to manage.
    """

    #: Master switch for the region scan cache + hot-POI score cache.
    enabled: bool = False
    #: Deduplicate identical in-flight personalized queries.
    coalesce: bool = True
    #: LRU capacity of the per-region friend-partition scan cache
    #: (one entry per (region, friend, time-window)).
    scan_cache_max_entries: int = 65536
    #: Wall-clock TTL for scan-cache entries; ``None`` disables and
    #: leaves invalidation purely seqid-driven.
    scan_cache_ttl_s: Optional[float] = None
    #: LRU capacity of the hot-POI (non-personalized) score cache.
    hot_poi_max_entries: int = 256
    #: Period of the scheduler's cache-maintenance sweep job, which
    #: drops TTL-expired and seqid-stale entries (simulated seconds).
    sweep_period_s: float = 60.0

    def __post_init__(self) -> None:
        if self.scan_cache_max_entries < 1:
            raise ConfigError("scan_cache_max_entries must be >= 1")
        if self.hot_poi_max_entries < 1:
            raise ConfigError("hot_poi_max_entries must be >= 1")
        if self.scan_cache_ttl_s is not None and self.scan_cache_ttl_s <= 0:
            raise ConfigError("scan_cache_ttl_s must be positive or None")
        if self.sweep_period_s <= 0:
            raise ConfigError("sweep_period_s must be positive")


@dataclass
class TopKConfig:
    """Knobs of threshold-algorithm top-k early termination
    (:mod:`repro.core.modules.topk`).

    Off by default: with ``enabled=False`` the personalized query path
    is byte-identical to a build without the top-k module — regions ship
    complete partials and the web tier ranks at the end.  With it on,
    answers are *still* byte-identical (the differential oracle suite
    pins this): regions emit score-sorted batches with a monotone upper
    bound on the unemitted rest, and the merger cancels region emission
    it can prove irrelevant, skipping the per-POI attribute decodes and
    partial shipping the exhaustive path pays for.
    """

    #: Master switch for top-k early termination on personalized search.
    enabled: bool = False
    #: Sorted-access items a region emits per merger round.  Smaller
    #: batches tighten the threshold faster (more pruning) at the cost
    #: of more merge rounds.
    batch_size: int = 16

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")


@dataclass
class IngestConfig:
    """Knobs of the streaming ingest tier (``repro.core.ingest``).

    Off by default: with ``enabled=False`` no tier is constructed and
    every write takes the seed single-put path.  With it on, visits
    submitted through :meth:`MoDisSENSE.ingest_visit` flow through
    bounded per-partition queues into applier workers that group-commit
    batches through the WAL and fold HotIn aggregates incrementally —
    the batch MapReduce job is then only a periodic reconciliation pass.
    """

    #: Master switch for the streaming ingest tier.
    enabled: bool = False
    #: Applier workers / queue partitions.  Regions are mapped onto
    #: partitions (many-to-one) and remapped by the load-aware
    #: rebalancer; each region is drained by exactly one applier at a
    #: time, keeping regions single-writer.
    num_partitions: int = 4
    #: Bounded capacity of each partition queue, in visits.
    queue_capacity: int = 4096
    #: Max visits one applier batch group-commits (one WAL sync per
    #: region per batch).
    max_batch: int = 256
    #: ``"block"``: a producer hitting a full queue waits up to
    #: ``block_timeout_s`` then fails typed; ``"shed"``: it fails typed
    #: immediately (load shedding).  Either way the visit was never
    #: enqueued, so nothing is half-applied.
    backpressure: str = "block"
    #: Blocking producers give up (BackpressureError) after this long.
    block_timeout_s: float = 5.0
    #: Arms the load-aware repartitioner.
    rebalance_enabled: bool = True
    #: A partition is hot when its share of the observation window's
    #: events exceeds ``rebalance_hot_ratio`` times the mean share.
    rebalance_hot_ratio: float = 2.0
    #: Rebalance checks are skipped until the observation window has
    #: seen at least this many events (avoids thrashing on noise).
    rebalance_min_events: int = 512
    #: Period of the scheduler's ``ingest_rebalance`` job (sim seconds).
    rebalance_period_s: float = 60.0
    #: Period of the scheduler's ``hotin_reconcile`` verify-and-repair
    #: job (sim seconds) — the demoted batch MapReduce pass.
    reconcile_period_s: float = 3600.0
    #: Incremental HotIn cells older than the reconcile window's start
    #: minus this slack are pruned after each reconcile (seconds of
    #: event time); 0 disables pruning.
    prune_slack_s: float = 24 * 3600.0
    #: Dirty-POI hotness pushes into the SQL repository are coalesced
    #: to at most one per this many wall seconds (0 = push every
    #: batch).  Bounds query-visible hotness staleness while keeping
    #: appliers off the indexed-update path on every batch; a drain or
    #: recovery always flushes regardless.
    refresh_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ConfigError("num_partitions must be >= 1")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.backpressure not in ("block", "shed"):
            raise ConfigError(
                "backpressure must be 'block' or 'shed', got %r"
                % self.backpressure
            )
        if self.block_timeout_s <= 0:
            raise ConfigError("block_timeout_s must be positive")
        if self.rebalance_hot_ratio < 1.0:
            raise ConfigError("rebalance_hot_ratio must be >= 1")
        if self.refresh_interval_s < 0:
            raise ConfigError("refresh_interval_s must be >= 0")
        if self.rebalance_min_events < 1:
            raise ConfigError("rebalance_min_events must be >= 1")
        if self.rebalance_period_s <= 0 or self.reconcile_period_s <= 0:
            raise ConfigError("ingest job periods must be positive")
        if self.prune_slack_s < 0:
            raise ConfigError("prune_slack_s cannot be negative")


@dataclass
class SupervisorConfig:
    """Knobs of the self-healing cluster supervisor
    (``repro.core.supervisor``).

    Off by default: with ``enabled=False`` no supervisor is constructed,
    region WALs stay plain per-region logs, and failure handling is
    exactly the manual ``fail_node``/``recover_node`` story.  With it
    on, every node carries a heartbeat lease driven by the platform
    scheduler; a node that misses heartbeats past ``lease_timeout_s``
    is declared dead and recovered HBase-style — its server WAL is
    split by region, regions are reassigned to the least-loaded
    survivors, and each region's committed-but-unflushed WAL suffix is
    replayed into a fresh memstore before it reopens.  A scheduled
    scrubber verifies store-file block checksums and WAL tails,
    repairing corrupt blocks from the WAL archive or quarantining them.
    """

    enabled: bool = False
    #: Simulated seconds between heartbeat-lease ticks.
    heartbeat_period_s: float = 1.0
    #: A node whose lease is older than this (simulated seconds) is
    #: declared dead and recovered.  Detection MTTR is bounded by
    #: ``lease_timeout_s + heartbeat_period_s`` when time advances in
    #: sub-lease steps; the recovery-smoke CI gate enforces MTTR at
    #: most twice this value.
    lease_timeout_s: float = 3.0
    #: Simulated seconds between storage-scrub passes.
    scrub_period_s: float = 60.0
    #: Truncated WAL records kept per region as the scrubber's repair
    #: source (flushed cells live in store files; their log records move
    #: to this bounded archive instead of vanishing).
    wal_archive_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.heartbeat_period_s <= 0:
            raise ConfigError("heartbeat_period_s must be positive")
        if self.lease_timeout_s <= 0:
            raise ConfigError("lease_timeout_s must be positive")
        if self.lease_timeout_s < self.heartbeat_period_s:
            raise ConfigError(
                "lease_timeout_s must be >= heartbeat_period_s "
                "(a lease shorter than one heartbeat always expires)"
            )
        if self.scrub_period_s <= 0:
            raise ConfigError("scrub_period_s must be positive")
        if self.wal_archive_capacity < 0:
            raise ConfigError("wal_archive_capacity cannot be negative")


@dataclass
class AdmissionConfig:
    """Knobs of the overload-protection layer (``repro.core.admission``).

    **Off by default**: with ``enabled=False`` no controller is
    constructed and every request path is byte-identical to a build
    without the layer.  With it on but un-triggered (no overload), the
    only added work per request is a ticket acquire/release — answers
    stay byte-identical; the ``overload-smoke`` CI job gates the
    overhead at ≤10%.

    Four coupled mechanisms: a gradient/AIMD concurrency limiter per
    priority class (interactive > admin > background), per-client
    token-bucket rate limits at the REST boundary, a global retry
    budget gating the fan-out's retry/hedge paths, and a brownout
    ladder that degrades (stale cache answers, shrunk scans, paused
    background jobs, ingest shed) before it rejects.
    """

    #: Master switch; off constructs nothing.
    enabled: bool = False

    # ---- adaptive concurrency limiter (per priority class) ----
    #: Starting concurrency limit of each class's limiter.
    initial_limit: int = 32
    min_limit: int = 2
    max_limit: int = 256
    #: Share of the interactive limit the admin / background classes
    #: start from (each class runs its own AIMD loop afterwards).
    admin_weight: float = 0.5
    background_weight: float = 0.25
    #: A window's median latency beyond ``tolerance x baseline`` is
    #: treated as congestion: multiplicative decrease.  At or below it,
    #: additive increase.
    latency_tolerance: float = 2.0
    decrease_factor: float = 0.7
    increase_step: float = 1.0
    #: Completions per AIMD adjustment window.
    sample_window: int = 16
    #: Fixed uncongested-latency baseline (wall ms).  None learns it
    #: online as the smallest windowed median seen (with a slow upward
    #: drift so regime changes are eventually adopted).
    baseline_latency_ms: Optional[float] = None

    # ---- per-client token buckets (REST boundary) ----
    #: Sustained requests/second allowed per ``client_id``; requests
    #: without a client id skip the bucket (the limiter still applies).
    client_rate: float = 200.0
    client_burst: float = 400.0
    #: LRU-bounded number of per-client buckets kept.
    max_clients: int = 1024

    # ---- global retry budget (fan-out retries + hedges) ----
    #: Retries+hedges allowed as a fraction of recent region requests.
    retry_budget_ratio: float = 0.1
    #: Sliding window the ratio is measured over (wall seconds).
    retry_budget_window_s: float = 10.0
    #: Floor so cold-start / low-traffic retries still work.
    retry_budget_min_tokens: int = 5

    # ---- brownout ladder ----
    #: Ladder evaluation period (simulated seconds; driven by the
    #: platform scheduler's ``admission_tick`` job).
    tick_period_s: float = 1.0
    #: A tick is "overloaded" when the window's rejection rate exceeds
    #: this, or the interactive latency signal exceeds
    #: ``brownout_latency_factor x baseline``.
    brownout_reject_rate: float = 0.05
    brownout_latency_factor: float = 3.0
    #: Consecutive overloaded ticks before escalating one level, and
    #: calm ticks before recovering one level (hysteresis).
    escalate_ticks: int = 2
    recover_ticks: int = 3
    #: Scan shaping applied at the SHRINK level and above: cap each
    #: region's shipped partial list and the query's k.
    brownout_per_region_limit: int = 64
    brownout_max_k: int = 5

    def __post_init__(self) -> None:
        if self.min_limit < 1:
            raise ConfigError("min_limit must be >= 1")
        if not self.min_limit <= self.initial_limit <= self.max_limit:
            raise ConfigError(
                "need min_limit <= initial_limit <= max_limit, got %r/%r/%r"
                % (self.min_limit, self.initial_limit, self.max_limit)
            )
        for name in ("admin_weight", "background_weight"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ConfigError("%s must be in (0, 1]" % name)
        if self.latency_tolerance < 1.0:
            raise ConfigError("latency_tolerance must be >= 1")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ConfigError("decrease_factor must be in (0, 1)")
        if self.increase_step <= 0:
            raise ConfigError("increase_step must be positive")
        if self.sample_window < 1:
            raise ConfigError("sample_window must be >= 1")
        if (
            self.baseline_latency_ms is not None
            and self.baseline_latency_ms <= 0
        ):
            raise ConfigError("baseline_latency_ms must be positive or None")
        if self.client_rate <= 0 or self.client_burst <= 0:
            raise ConfigError("client_rate/client_burst must be positive")
        if self.max_clients < 1:
            raise ConfigError("max_clients must be >= 1")
        if not 0.0 < self.retry_budget_ratio <= 1.0:
            raise ConfigError("retry_budget_ratio must be in (0, 1]")
        if self.retry_budget_window_s <= 0:
            raise ConfigError("retry_budget_window_s must be positive")
        if self.retry_budget_min_tokens < 0:
            raise ConfigError("retry_budget_min_tokens cannot be negative")
        if self.tick_period_s <= 0:
            raise ConfigError("tick_period_s must be positive")
        if not 0.0 < self.brownout_reject_rate < 1.0:
            raise ConfigError("brownout_reject_rate must be in (0, 1)")
        if self.brownout_latency_factor < 1.0:
            raise ConfigError("brownout_latency_factor must be >= 1")
        if self.escalate_ticks < 1 or self.recover_ticks < 1:
            raise ConfigError("escalate/recover tick counts must be >= 1")
        if self.brownout_per_region_limit < 1:
            raise ConfigError("brownout_per_region_limit must be >= 1")
        if self.brownout_max_k < 1:
            raise ConfigError("brownout_max_k must be >= 1")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Evaluated by :class:`repro.core.telemetry.slo.SLOEngine` as
    multi-window burn rates: the fast window catches sudden breakage
    (page), the slow window catches sustained slow bleed (ticket).

    Two kinds:

    - ``"ratio"``: ``bad_series`` / ``total_series`` counter deltas over
      each window (e.g. missing regions over used regions);
    - ``"threshold"``: the share of window scrape samples where
      ``series`` violates ``threshold`` (``direction="le"`` means
      healthy when the value stays at or below the bound, ``"ge"`` when
      at or above it).
    """

    name: str
    kind: str  # "ratio" | "threshold"
    #: Objective: the good fraction must stay >= target; the error
    #: budget is ``1 - target``.
    target: float
    description: str = ""
    # ---- ratio kind ----
    bad_series: Optional[str] = None
    total_series: Optional[str] = None
    # ---- threshold kind ----
    series: Optional[str] = None
    threshold: Optional[float] = None
    direction: str = "le"
    # ---- burn-rate windows (simulated seconds) ----
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    critical_burn: float = 8.0
    warning_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "threshold"):
            raise ConfigError(
                "SLO kind must be 'ratio' or 'threshold', got %r" % self.kind
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigError("SLO target must be in (0, 1)")
        if self.kind == "ratio" and not (self.bad_series and self.total_series):
            raise ConfigError(
                "ratio SLO %r needs bad_series and total_series" % self.name
            )
        if self.kind == "threshold" and (
            self.series is None or self.threshold is None
        ):
            raise ConfigError(
                "threshold SLO %r needs series and threshold" % self.name
            )
        if self.direction not in ("le", "ge"):
            raise ConfigError("SLO direction must be 'le' or 'ge'")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ConfigError("SLO windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise ConfigError("fast_window_s must not exceed slow_window_s")
        if self.critical_burn <= 0 or self.warning_burn <= 0:
            raise ConfigError("SLO burn thresholds must be positive")


def default_slos() -> Tuple[SLOSpec, ...]:
    """The platform's eight stock SLOs (tune or replace per deployment)."""
    return (
        SLOSpec(
            name="goodput",
            kind="ratio",
            bad_series="admission.rejected",
            total_series="admission.offered",
            target=0.80,
            description="Requests shed by admission control.  The 20% "
                        "budget is sized for brownout (shed-before-"
                        "collapse), not normal operation — any burn at "
                        "all means the platform is rejecting work.",
        ),
        SLOSpec(
            name="personalized_p99_latency",
            kind="threshold",
            series="query.personalized:p99",
            threshold=1000.0,
            direction="le",
            target=0.99,
            description="p99 personalized-query latency stays under 1 s "
                        "(the paper's Figure-2 headline).",
        ),
        SLOSpec(
            name="ingest_freshness",
            kind="threshold",
            series="ingest.freshness_age_s",
            threshold=0.5,
            direction="le",
            target=0.99,
            description="Applied-but-unpublished hotness is at most "
                        "0.5 s old (the PR-5 freshness SLO, now watched "
                        "in production rather than only in a bench).",
        ),
        SLOSpec(
            name="fanout_coverage",
            kind="ratio",
            bad_series="regions.missing",
            total_series="regions.used",
            target=0.999,
            description="Invoked regions that never answered within the "
                        "retry/hedge budget.",
        ),
        SLOSpec(
            name="degraded_query_rate",
            kind="ratio",
            bad_series="queries.degraded",
            total_series="queries.personalized",
            target=0.99,
            description="Personalized queries answered from partial "
                        "results.",
        ),
        SLOSpec(
            name="backpressure_shed_rate",
            kind="ratio",
            bad_series="ingest.shed",
            total_series="ingest.submitted",
            target=0.999,
            description="Ingest writes shed by full partition queues.",
        ),
        SLOSpec(
            name="storage_integrity",
            kind="ratio",
            bad_series="scrub.blocks_corrupt",
            total_series="scrub.blocks_scanned",
            target=0.999,
            description="Store-file blocks the scrubber found failing "
                        "their checksum (corrupt blocks are repaired "
                        "from the WAL or quarantined, never served).",
        ),
        SLOSpec(
            name="recovery_mttr",
            kind="threshold",
            series="supervisor.mttr_s",
            threshold=6.0,
            direction="le",
            target=0.99,
            description="Node-death detection + recovery time stays "
                        "within twice the default 3 s heartbeat lease "
                        "(no samples while nothing dies = healthy).",
        ),
    )


@dataclass
class TelemetryConfig:
    """Knobs of the telemetry pipeline (``repro.core.telemetry``).

    **On by default**: the pipeline only observes (scrapes, samples,
    events), so query answers are byte-identical with it on or off; the
    ``obs-smoke`` CI job gates measured overhead at ≤10%.  Set
    ``enabled=False`` to construct no hub at all.

    The scrape job fires on the platform scheduler's *simulated* clock
    with ``catch_up=False``: advancing a whole simulated day costs one
    scrape, not 86 400.
    """

    enabled: bool = True
    #: Simulated seconds between scheduler scrapes of the registry.
    scrape_period_s: float = 1.0
    #: Raw samples kept per series.
    base_samples: int = 720
    #: Rollup bucket widths, seconds (1s → 10s → 1m).
    rollup_resolutions: Tuple[float, ...] = (1.0, 10.0, 60.0)
    #: Buckets kept per rollup resolution per series.
    rollup_buckets: int = 360
    #: Wide-event ring capacity (routine events).
    event_capacity: int = 512
    #: Always-kept ring capacity (slow/degraded/errored/alerts).
    interesting_capacity: int = 256
    #: Keep 1-in-N routine events per type (1 = keep everything);
    #: interesting events always bypass sampling.
    event_sample_every: int = 4
    #: Arms the continuous sampling profiler.
    profiler_enabled: bool = True
    #: Wall seconds between profiler samples (0.02 = 50 Hz).
    profiler_interval_s: float = 0.02
    #: Stack frames walked per sampled thread.
    profiler_max_depth: int = 48
    #: Declarative SLOs the health engine evaluates.
    slos: Tuple[SLOSpec, ...] = field(default_factory=default_slos)

    def __post_init__(self) -> None:
        if self.scrape_period_s <= 0:
            raise ConfigError("scrape_period_s must be positive")
        if self.base_samples < 2:
            raise ConfigError("base_samples must be >= 2")
        if not self.rollup_resolutions or any(
            r <= 0 for r in self.rollup_resolutions
        ):
            raise ConfigError("rollup_resolutions must be positive")
        if self.rollup_buckets < 1:
            raise ConfigError("rollup_buckets must be >= 1")
        if self.event_capacity < 1 or self.interesting_capacity < 1:
            raise ConfigError("event capacities must be >= 1")
        if self.event_sample_every < 1:
            raise ConfigError("event_sample_every must be >= 1")
        if self.profiler_interval_s <= 0:
            raise ConfigError("profiler_interval_s must be positive")
        if self.profiler_max_depth < 1:
            raise ConfigError("profiler_max_depth must be >= 1")
        names = [spec.name for spec in self.slos]
        if len(names) != len(set(names)):
            raise ConfigError("SLO names must be unique")


@dataclass
class PlatformConfig:
    """Top-level configuration for a MoDisSENSE deployment."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    sentiment: SentimentConfig = field(default_factory=SentimentConfig)
    jobs: JobsConfig = field(default_factory=JobsConfig)
    tracing: TracingConfig = field(default_factory=TracingConfig)
    faults: FaultsConfig = field(default_factory=FaultsConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    topk: TopKConfig = field(default_factory=TopKConfig)
    #: Seed for all synthetic-data randomness; fixed for reproducibility.
    seed: int = 2015

    @classmethod
    def small(cls) -> "PlatformConfig":
        """A configuration sized for unit tests: 4 nodes, 8 regions."""
        return cls(cluster=ClusterConfig(num_nodes=4, regions_per_table=8))

    @classmethod
    def paper(cls, num_nodes: int = 16) -> "PlatformConfig":
        """The paper's experimental setup for a given cluster size."""
        if num_nodes not in PAPER_CLUSTER_SIZES:
            raise ConfigError(
                "paper cluster sizes are %s, got %r"
                % (PAPER_CLUSTER_SIZES, num_nodes)
            )
        return cls(cluster=ClusterConfig(num_nodes=num_nodes))
