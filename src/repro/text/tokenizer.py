"""Tokenization with the paper's preprocessing steps."""

from __future__ import annotations

import re
from typing import List, Optional

from .stemmer import porter_stem
from .stopwords import STOPWORDS

_TOKEN_RE = re.compile(r"[a-zA-Z][a-zA-Z']+")


class Tokenizer:
    """Word tokenizer applying the baseline preprocessing of Section 3.2:
    lowercase, stopword removal, Porter stemming.

    Each step can be disabled for the ablation benches.  Stems are cached
    per tokenizer instance: the corpus vocabulary is tiny compared with
    token volume, so memoization removes the stemmer from the hot path.
    """

    def __init__(
        self,
        lowercase: bool = True,
        remove_stopwords: bool = True,
        stem: bool = True,
        min_token_length: int = 2,
    ) -> None:
        self.lowercase = lowercase
        self.remove_stopwords = remove_stopwords
        self.stem = stem
        self.min_token_length = min_token_length
        self._stem_cache: dict = {}

    def tokenize(self, text: str) -> List[str]:
        """Split text into normalized token list."""
        if self.lowercase:
            text = text.lower()
        tokens = _TOKEN_RE.findall(text)
        out: List[str] = []
        for token in tokens:
            token = token.strip("'")
            if len(token) < self.min_token_length:
                continue
            if self.remove_stopwords and token in STOPWORDS:
                continue
            if self.stem:
                stemmed = self._stem_cache.get(token)
                if stemmed is None:
                    stemmed = porter_stem(token)
                    self._stem_cache[token] = stemmed
                token = stemmed
            if token:
                out.append(token)
        return out
