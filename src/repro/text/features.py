"""Feature engineering: tf weighting, rare-word pruning, BNS selection.

These are the paper's tunable optimizations (Section 3.2): "use of the
tf metric, 2-grams, Bi-Normal Separation and deletion of words with less
than x occurrences."
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import SentimentConfig
from .ngrams import unigrams_and_bigrams
from .tokenizer import Tokenizer


def _norm_ppf(p: float) -> float:
    """Inverse standard-normal CDF via Acklam's rational approximation.

    Accurate to ~1e-9 over (0, 1); BNS needs z-scores of rates, and
    shipping a dependency for one function would be disproportionate.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1), got %r" % p)
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def bns_scores(
    doc_freq_pos: Dict[str, int],
    doc_freq_neg: Dict[str, int],
    num_pos: int,
    num_neg: int,
) -> Dict[str, float]:
    """Bi-Normal Separation score per feature (Forman, 2003).

    ``BNS(f) = |F^-1(tpr) - F^-1(fpr)|`` where tpr/fpr are the feature's
    document rates in the positive/negative class, clipped away from 0
    and 1 as Forman prescribes.
    """
    scores: Dict[str, float] = {}
    num_pos = max(1, num_pos)
    num_neg = max(1, num_neg)
    lo = 0.0005
    hi = 1.0 - lo
    features = set(doc_freq_pos) | set(doc_freq_neg)
    for feature in features:
        tpr = min(hi, max(lo, doc_freq_pos.get(feature, 0) / num_pos))
        fpr = min(hi, max(lo, doc_freq_neg.get(feature, 0) / num_neg))
        scores[feature] = abs(_norm_ppf(tpr) - _norm_ppf(fpr))
    return scores


class FeatureExtractor:
    """Turns raw review text into a feature-count vector.

    The pipeline (in order): tokenize (lowercase / stopwords / stemming
    per config) → optional bigrams → optional vocabulary restriction
    (set by :meth:`fit` from pruning + BNS) → counts.  With ``use_tf``
    off, counts collapse to 0/1 presence (Bernoulli-style features),
    which is the paper's baseline.
    """

    def __init__(self, config: Optional[SentimentConfig] = None) -> None:
        self.config = config or SentimentConfig()
        self.tokenizer = Tokenizer(
            lowercase=self.config.lowercase,
            remove_stopwords=self.config.remove_stopwords,
            stem=self.config.stem,
        )
        self._vocabulary: Optional[Set[str]] = None

    # ------------------------------------------------------------ fitting

    def fit(self, labeled_documents: Iterable[Tuple[str, int]]) -> None:
        """Learn the vocabulary from ``(text, label)`` pairs.

        Applies min-occurrence pruning and, when enabled, keeps the top
        ``bns_keep_fraction`` of features by BNS score.  Labels are 1
        (positive) / 0 (negative).
        """
        total_counts: Dict[str, int] = {}
        doc_freq_pos: Dict[str, int] = {}
        doc_freq_neg: Dict[str, int] = {}
        num_pos = 0
        num_neg = 0

        for text, label in labeled_documents:
            features = self._raw_features(text)
            present = set(features)
            for f in features:
                total_counts[f] = total_counts.get(f, 0) + 1
            target = doc_freq_pos if label == 1 else doc_freq_neg
            if label == 1:
                num_pos += 1
            else:
                num_neg += 1
            for f in present:
                target[f] = target.get(f, 0) + 1

        vocabulary = set(total_counts)
        if self.config.min_occurrences > 0:
            vocabulary = {
                f
                for f in vocabulary
                if total_counts[f] >= self.config.min_occurrences
            }
        if self.config.use_bns and vocabulary:
            scores = bns_scores(doc_freq_pos, doc_freq_neg, num_pos, num_neg)
            ranked = sorted(
                vocabulary, key=lambda f: scores.get(f, 0.0), reverse=True
            )
            keep = max(1, int(len(ranked) * self.config.bns_keep_fraction))
            vocabulary = set(ranked[:keep])
        self._vocabulary = vocabulary

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary) if self._vocabulary is not None else 0

    # ---------------------------------------------------------- transform

    def _raw_features(self, text: str) -> List[str]:
        tokens = self.tokenizer.tokenize(text)
        if self.config.use_bigrams:
            return unigrams_and_bigrams(tokens)
        return tokens

    def transform(self, text: str) -> Dict[str, int]:
        """Feature-count vector for one document."""
        counts: Dict[str, int] = {}
        for feature in self._raw_features(text):
            if self._vocabulary is not None and feature not in self._vocabulary:
                continue
            counts[feature] = counts.get(feature, 0) + 1
        if not self.config.use_tf:
            counts = {f: 1 for f in counts}
        return counts
