"""Multinomial Naive Bayes with Laplace smoothing.

The from-scratch equivalent of the Mahout classifier the paper trains:
log-space scoring, add-one smoothing, binary classes (positive=1,
negative=0).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NotTrainedError, ValidationError


class NaiveBayesClassifier:
    """Binary multinomial NB over feature-count vectors.

    Train with :meth:`train` on ``(feature_counts, label)`` pairs, or
    feed pre-aggregated per-class counts through
    :meth:`from_aggregates` (the MapReduce training path).
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValidationError("smoothing must be positive")
        self.smoothing = smoothing
        self._log_prior: Optional[Dict[int, float]] = None
        self._log_likelihood: Optional[Dict[int, Dict[str, float]]] = None
        self._log_unseen: Optional[Dict[int, float]] = None
        self._vocabulary_size = 0

    # ----------------------------------------------------------- training

    def train(
        self, examples: Iterable[Tuple[Dict[str, int], int]]
    ) -> None:
        """Fit priors and likelihoods from feature-count/label pairs."""
        class_doc_counts: Dict[int, int] = {0: 0, 1: 0}
        class_feature_counts: Dict[int, Dict[str, int]] = {0: {}, 1: {}}
        for counts, label in examples:
            if label not in (0, 1):
                raise ValidationError("labels must be 0 or 1, got %r" % label)
            class_doc_counts[label] += 1
            bucket = class_feature_counts[label]
            for feature, count in counts.items():
                bucket[feature] = bucket.get(feature, 0) + count
        self.from_aggregates(class_doc_counts, class_feature_counts)

    def from_aggregates(
        self,
        class_doc_counts: Dict[int, int],
        class_feature_counts: Dict[int, Dict[str, int]],
    ) -> None:
        """Build the model from per-class aggregates.

        This is the interface the MapReduce trainer reduces into: the
        shuffle produces exactly these two dictionaries.
        """
        total_docs = sum(class_doc_counts.values())
        if total_docs == 0:
            raise ValidationError("cannot train on an empty corpus")
        vocabulary = set()
        for counts in class_feature_counts.values():
            vocabulary.update(counts)
        self._vocabulary_size = len(vocabulary)

        self._log_prior = {}
        self._log_likelihood = {}
        self._log_unseen = {}
        v = max(1, self._vocabulary_size)
        for label in (0, 1):
            docs = class_doc_counts.get(label, 0)
            # Laplace on the prior too, so a single-class corpus still
            # yields finite scores.
            self._log_prior[label] = math.log(
                (docs + self.smoothing) / (total_docs + 2 * self.smoothing)
            )
            counts = class_feature_counts.get(label, {})
            total_tokens = sum(counts.values())
            denom = total_tokens + self.smoothing * v
            self._log_likelihood[label] = {
                feature: math.log((count + self.smoothing) / denom)
                for feature, count in counts.items()
            }
            self._log_unseen[label] = math.log(self.smoothing / denom)

    @property
    def is_trained(self) -> bool:
        return self._log_prior is not None

    @property
    def vocabulary_size(self) -> int:
        return self._vocabulary_size

    # ---------------------------------------------------------- inference

    def log_scores(self, counts: Dict[str, int]) -> Dict[int, float]:
        """Unnormalized class log-posteriors for one document."""
        if (
            self._log_prior is None
            or self._log_likelihood is None
            or self._log_unseen is None
        ):
            raise NotTrainedError("classifier used before training")
        scores: Dict[int, float] = {}
        for label in (0, 1):
            score = self._log_prior[label]
            likelihood = self._log_likelihood[label]
            unseen = self._log_unseen[label]
            for feature, count in counts.items():
                score += count * likelihood.get(feature, unseen)
            scores[label] = score
        return scores

    def predict(self, counts: Dict[str, int]) -> int:
        """Most probable class: 1 (positive) or 0 (negative)."""
        scores = self.log_scores(counts)
        return 1 if scores[1] >= scores[0] else 0

    def predict_proba(self, counts: Dict[str, int]) -> float:
        """P(positive | document), computed stably in log space."""
        scores = self.log_scores(counts)
        m = max(scores.values())
        exp0 = math.exp(scores[0] - m)
        exp1 = math.exp(scores[1] - m)
        return exp1 / (exp0 + exp1)
