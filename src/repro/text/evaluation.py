"""Classifier evaluation: confusion matrix, precision/recall/F1.

The paper reports accuracy only, but tuning "after an extensive
experimental study" needs the full picture — especially with the
class-imbalance robustness BNS is known for.  These utilities evaluate
any trained pipeline on a labelled set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from ..errors import ValidationError


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = 1)."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            raise ValidationError("empty confusion matrix")
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denom = self.true_positive + self.false_positive
        return self.true_positive / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def specificity(self) -> float:
        """True-negative rate — recall of the negative class."""
        denom = self.true_negative + self.false_positive
        return self.true_negative / denom if denom else 0.0

    def describe(self) -> str:
        return (
            "accuracy=%.3f precision=%.3f recall=%.3f f1=%.3f"
            % (self.accuracy, self.precision, self.recall, self.f1)
        )


def evaluate_classifier(
    classify, labeled_documents: Iterable[Tuple[str, int]]
) -> ConfusionMatrix:
    """Build a confusion matrix for any ``classify(text) -> 0|1``."""
    tp = fp = tn = fn = 0
    for text, label in labeled_documents:
        predicted = classify(text)
        if label == 1 and predicted == 1:
            tp += 1
        elif label == 0 and predicted == 1:
            fp += 1
        elif label == 0 and predicted == 0:
            tn += 1
        elif label == 1 and predicted == 0:
            fn += 1
        else:
            raise ValidationError(
                "labels/predictions must be 0 or 1, got %r/%r"
                % (label, predicted)
            )
    matrix = ConfusionMatrix(tp, fp, tn, fn)
    if matrix.total == 0:
        raise ValidationError("cannot evaluate on an empty set")
    return matrix
