"""N-gram feature construction.

One of the paper's four classifier optimizations is the use of 2-grams:
adjacent token pairs become additional features, capturing negation and
collocation ("not good", "highly recommend") that unigrams miss.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ValidationError

#: Joiner for n-gram components; distinct from token characters.
NGRAM_JOINER = "_"


def ngrams(tokens: Sequence[str], n: int) -> List[str]:
    """All contiguous ``n``-grams of a token sequence, joined by ``_``."""
    if n < 1:
        raise ValidationError("n must be >= 1, got %r" % n)
    if n == 1:
        return list(tokens)
    return [
        NGRAM_JOINER.join(tokens[i : i + n])
        for i in range(len(tokens) - n + 1)
    ]


def unigrams_and_bigrams(tokens: Sequence[str]) -> List[str]:
    """The paper's 2-gram option: unigrams plus bigrams."""
    return list(tokens) + ngrams(tokens, 2)
