"""The Porter stemming algorithm (Porter, 1980), implemented in full.

The paper's preprocessing applies stemming before training; Mahout uses
Lucene's Porter stemmer, so this is a faithful from-scratch port of the
original algorithm's five steps.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's *m*: the number of VC sequences in the stem."""
    m = 0
    i = 0
    n = len(stem)
    # Skip initial consonants.
    while i < n and _is_consonant(stem, i):
        i += 1
    while i < n:
        # Vowel run.
        while i < n and not _is_consonant(stem, i):
            i += 1
        if i >= n:
            break
        m += 1
        # Consonant run.
        while i < n and _is_consonant(stem, i):
            i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """Consonant-vowel-consonant, where the final consonant is not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str, min_m: int) -> str:
    """If ``word`` ends with ``suffix`` and the remaining stem has
    measure > ``min_m``, swap the suffix; otherwise return unchanged."""
    if not word.endswith(suffix):
        return word
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_m:
        return stem + replacement
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word; inputs shorter than 3 chars pass through."""
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            return _replace_suffix(word, suffix, replacement, 0)
    return word


def _step3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            return _replace_suffix(word, suffix, replacement, 0)
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word
