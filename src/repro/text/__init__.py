"""Textual-processing substrate.

Rebuilds the paper's sentiment stack (Section 3.2) from scratch: a
tokenizer with the baseline preprocessing (lowercase, stopword removal,
Porter stemming), the four training optimizations (term-frequency
weighting, 2-grams, Bi-Normal Separation feature selection, rare-word
pruning), and a multinomial Naive Bayes classifier — the Mahout
equivalent.
"""

from .tokenizer import Tokenizer
from .stemmer import porter_stem
from .stopwords import STOPWORDS
from .ngrams import ngrams, unigrams_and_bigrams
from .features import FeatureExtractor, bns_scores
from .naive_bayes import NaiveBayesClassifier
from .sentiment import SentimentPipeline, TrainingReport
from .evaluation import ConfusionMatrix, evaluate_classifier
from .tuning import GridSearchResult, cross_validate, grid_search, k_fold_splits

__all__ = [
    "Tokenizer",
    "porter_stem",
    "STOPWORDS",
    "ngrams",
    "unigrams_and_bigrams",
    "FeatureExtractor",
    "bns_scores",
    "NaiveBayesClassifier",
    "SentimentPipeline",
    "TrainingReport",
    "ConfusionMatrix",
    "evaluate_classifier",
    "GridSearchResult",
    "cross_validate",
    "grid_search",
    "k_fold_splits",
]
