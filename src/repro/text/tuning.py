"""Classifier hyper-parameter tuning.

Paper Section 3.2: "Experiments with different combinations for the
algorithm parameters were also conducted ... After an extensive
experimental study and a fine-tuning of the algorithm parameters, we
managed to create a highly accurate classifier."  This module is that
study's machinery: k-fold cross-validation over a labelled corpus and a
grid search across :class:`~repro.config.SentimentConfig` knobs.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SentimentConfig
from ..errors import ValidationError
from .sentiment import SentimentPipeline


def k_fold_splits(
    items: Sequence, k: int, seed: int = 2015
) -> List[Tuple[List, List]]:
    """Shuffle and split into ``k`` (train, validation) pairs."""
    if k < 2:
        raise ValidationError("k must be >= 2")
    items = list(items)
    if len(items) < k:
        raise ValidationError("need at least k items")
    rng = random.Random(seed)
    rng.shuffle(items)
    folds = [items[i::k] for i in range(k)]
    splits = []
    for i in range(k):
        validation = folds[i]
        train = [item for j, fold in enumerate(folds) if j != i
                 for item in fold]
        splits.append((train, validation))
    return splits


def cross_validate(
    config: SentimentConfig,
    corpus: Sequence[Tuple[str, int]],
    k: int = 3,
    seed: int = 2015,
) -> float:
    """Mean validation accuracy of ``config`` across ``k`` folds."""
    accuracies = []
    for train, validation in k_fold_splits(corpus, k, seed):
        pipeline = SentimentPipeline(config)
        pipeline.train(train)
        accuracies.append(pipeline.evaluate(validation))
    return sum(accuracies) / len(accuracies)


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_config: SentimentConfig
    best_accuracy: float
    #: Every evaluated point: (overrides dict, cv accuracy), best first.
    trials: List[Tuple[Dict, float]] = field(default_factory=list)


#: The parameter grid the paper's four optimizations span.
DEFAULT_GRID: Dict[str, List] = {
    "use_tf": [False, True],
    "use_bigrams": [False, True],
    "use_bns": [False, True],
    "min_occurrences": [0, 3],
}


def grid_search(
    corpus: Sequence[Tuple[str, int]],
    grid: Optional[Dict[str, List]] = None,
    base: Optional[SentimentConfig] = None,
    k: int = 3,
    seed: int = 2015,
) -> GridSearchResult:
    """Exhaustively cross-validate every grid point.

    ``grid`` maps :class:`SentimentConfig` field names to candidate
    values; ``base`` supplies the non-swept fields.  Ties break toward
    the earlier (simpler, given DEFAULT_GRID's ordering) configuration,
    so the search never returns a needlessly complex winner.
    """
    grid = grid or DEFAULT_GRID
    base = base or SentimentConfig.baseline()
    names = list(grid)
    for name in names:
        if not hasattr(base, name):
            raise ValidationError("unknown SentimentConfig field %r" % name)

    trials: List[Tuple[Dict, float]] = []
    best: Optional[Tuple[Dict, float]] = None
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        config = replace(base, **overrides)
        accuracy = cross_validate(config, corpus, k=k, seed=seed)
        trials.append((overrides, accuracy))
        if best is None or accuracy > best[1]:
            best = (overrides, accuracy)

    assert best is not None  # grid product is never empty
    trials.sort(key=lambda t: -t[1])
    return GridSearchResult(
        best_config=replace(base, **best[0]),
        best_accuracy=best[1],
        trials=trials,
    )
