"""The end-to-end sentiment pipeline of the Text Processing Module.

Combines the feature extractor and Naive Bayes under one train/score
API.  Training can run single-threaded or as a MapReduce job whose
reducers produce the per-class aggregates NB consumes — the same split
Mahout uses on Hadoop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SentimentConfig
from ..errors import NotTrainedError, ValidationError
from ..mapreduce import JobRunner, MapReduceJob
from .features import FeatureExtractor
from .naive_bayes import NaiveBayesClassifier


@dataclass
class TrainingReport:
    """What a training run produced."""

    documents: int
    vocabulary_size: int
    training_accuracy: float
    config: SentimentConfig


class SentimentPipeline:
    """Train on ``(text, label)`` pairs; score arbitrary text.

    Labels follow the paper's Tripadvisor scheme: star ratings 1–5 are
    binarized (``>= 4`` positive, ``<= 2`` negative, 3 dropped) by
    :meth:`binarize_rating` before training.
    """

    def __init__(self, config: Optional[SentimentConfig] = None) -> None:
        self.config = config or SentimentConfig()
        self.extractor = FeatureExtractor(self.config)
        self.classifier = NaiveBayesClassifier()

    # ------------------------------------------------------------ labels

    @staticmethod
    def binarize_rating(rating: int) -> Optional[int]:
        """Map a 1–5 star rating to 1/0/None (positive/negative/drop)."""
        if not 1 <= rating <= 5:
            raise ValidationError("rating must be 1..5, got %r" % rating)
        if rating >= 4:
            return 1
        if rating <= 2:
            return 0
        return None

    # ---------------------------------------------------------- training

    def train(
        self, labeled_documents: Sequence[Tuple[str, int]]
    ) -> TrainingReport:
        """Single-process training: fit vocabulary, then the classifier."""
        if not labeled_documents:
            raise ValidationError("cannot train on an empty corpus")
        self.extractor.fit(labeled_documents)
        examples = [
            (self.extractor.transform(text), label)
            for text, label in labeled_documents
        ]
        self.classifier.train(examples)
        return self._report(labeled_documents)

    def train_mapreduce(
        self,
        labeled_documents: Sequence[Tuple[str, int]],
        runner: Optional[JobRunner] = None,
        num_mappers: int = 8,
    ) -> TrainingReport:
        """Distributed training: mappers extract per-document feature
        counts, reducers sum per-(class, feature) totals, and the final
        aggregates feed :meth:`NaiveBayesClassifier.from_aggregates`."""
        if not labeled_documents:
            raise ValidationError("cannot train on an empty corpus")
        self.extractor.fit(labeled_documents)
        extractor = self.extractor
        own_runner = runner is None
        runner = runner or JobRunner(max_workers=num_mappers)

        def mapper(record, emit, counters):
            text, label = record
            counts = extractor.transform(text)
            emit(("docs", label), 1)
            for feature, count in counts.items():
                emit((label, feature), count)

        def combiner(key, values, emit, counters):
            emit(key, sum(values))

        def reducer(key, values, emit, counters):
            emit(key, sum(values))

        job = MapReduceJob(
            name="nb-train",
            mapper=mapper,
            combiner=combiner,
            reducer=reducer,
            num_mappers=num_mappers,
            num_reducers=max(2, num_mappers // 2),
        )
        try:
            result = runner.run(job, list(labeled_documents))
        finally:
            if own_runner:
                runner.shutdown()

        class_doc_counts: Dict[int, int] = {0: 0, 1: 0}
        class_feature_counts: Dict[int, Dict[str, int]] = {0: {}, 1: {}}
        for key, total in result.pairs:
            if key[0] == "docs":
                class_doc_counts[key[1]] = total
            else:
                label, feature = key
                class_feature_counts[label][feature] = total
        self.classifier.from_aggregates(class_doc_counts, class_feature_counts)
        return self._report(labeled_documents)

    def _report(
        self, labeled_documents: Sequence[Tuple[str, int]]
    ) -> TrainingReport:
        return TrainingReport(
            documents=len(labeled_documents),
            vocabulary_size=self.extractor.vocabulary_size,
            training_accuracy=self.evaluate(labeled_documents),
            config=self.config,
        )

    # --------------------------------------------------------- inference

    def score(self, text: str) -> float:
        """P(positive) for one text; the platform persists this next to
        the text itself (paper Section 2.2, Text Processing Module)."""
        if not self.classifier.is_trained:
            raise NotTrainedError("pipeline used before training")
        return self.classifier.predict_proba(self.extractor.transform(text))

    def classify(self, text: str) -> int:
        """Hard label: 1 positive, 0 negative."""
        if not self.classifier.is_trained:
            raise NotTrainedError("pipeline used before training")
        return self.classifier.predict(self.extractor.transform(text))

    def evaluate(self, labeled_documents: Iterable[Tuple[str, int]]) -> float:
        """Accuracy over a labeled set."""
        correct = 0
        total = 0
        for text, label in labeled_documents:
            total += 1
            if self.classify(text) == label:
                correct += 1
        if total == 0:
            raise ValidationError("cannot evaluate on an empty set")
        return correct / total
