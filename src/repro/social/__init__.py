"""Social-network substrate.

The real platform talks to Facebook, Twitter and Foursquare through
their OAuth-protected APIs.  This package provides the same plugin
surface over deterministic synthetic networks: friend graphs, check-ins
with comments, and status updates — everything the Data Collection
Module consumes.
"""

from .graph import SocialGraph
from .networks import (
    SocialNetworkPlugin,
    SimulatedNetwork,
    CheckIn,
    StatusUpdate,
    FriendInfo,
    NETWORK_FACEBOOK,
    NETWORK_TWITTER,
    NETWORK_FOURSQUARE,
)
from .oauth import OAuthProvider, AccessToken

__all__ = [
    "SocialGraph",
    "SocialNetworkPlugin",
    "SimulatedNetwork",
    "CheckIn",
    "StatusUpdate",
    "FriendInfo",
    "NETWORK_FACEBOOK",
    "NETWORK_TWITTER",
    "NETWORK_FOURSQUARE",
    "OAuthProvider",
    "AccessToken",
]
