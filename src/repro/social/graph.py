"""Undirected friendship graphs."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set

from ..errors import ValidationError


class SocialGraph:
    """An undirected graph of user ids with friendship edges.

    Provides the generation models the synthetic workload needs: an
    Erdős–Rényi-style random graph for uniformity and a preferential-
    attachment model for realistic degree skew (a few hub users with
    thousands of friends, matching the paper's 500–10000-friend sweeps).
    """

    def __init__(self) -> None:
        self._adj: Dict[int, Set[int]] = {}

    def add_user(self, user_id: int) -> None:
        self._adj.setdefault(user_id, set())

    def add_friendship(self, a: int, b: int) -> None:
        if a == b:
            raise ValidationError("a user cannot befriend themselves")
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def remove_friendship(self, a: int, b: int) -> None:
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)

    def friends_of(self, user_id: int) -> List[int]:
        return sorted(self._adj.get(user_id, ()))

    def are_friends(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, ())

    def degree(self, user_id: int) -> int:
        return len(self._adj.get(user_id, ()))

    def users(self) -> List[int]:
        return sorted(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return sum(len(friends) for friends in self._adj.values()) // 2

    # -------------------------------------------------------- generators

    @classmethod
    def random_uniform(
        cls, user_ids: Iterable[int], mean_degree: float, seed: int = 2015
    ) -> "SocialGraph":
        """G(n, p)-style graph with expected degree ``mean_degree``.

        Edges are sampled by pairing each user with ``mean_degree/2``
        uniformly-random partners, which hits the target mean without
        touching all O(n^2) pairs.
        """
        rng = random.Random(seed)
        graph = cls()
        ids = list(user_ids)
        for uid in ids:
            graph.add_user(uid)
        if len(ids) < 2:
            return graph
        half = mean_degree / 2.0
        for uid in ids:
            count = int(half) + (1 if rng.random() < (half - int(half)) else 0)
            for _ in range(count):
                other = rng.choice(ids)
                if other != uid:
                    graph.add_friendship(uid, other)
        return graph

    @classmethod
    def preferential_attachment(
        cls, user_ids: Iterable[int], edges_per_user: int = 5, seed: int = 2015
    ) -> "SocialGraph":
        """Barabási–Albert-style graph: heavy-tailed degrees."""
        rng = random.Random(seed)
        graph = cls()
        ids = list(user_ids)
        if not ids:
            return graph
        for uid in ids:
            graph.add_user(uid)
        targets: List[int] = []  # repeated by degree -> preferential pick
        seed_size = min(len(ids), edges_per_user + 1)
        for i in range(seed_size):
            for j in range(i + 1, seed_size):
                graph.add_friendship(ids[i], ids[j])
                targets.extend((ids[i], ids[j]))
        for uid in ids[seed_size:]:
            chosen: Set[int] = set()
            while len(chosen) < min(edges_per_user, seed_size):
                pick = rng.choice(targets) if targets else rng.choice(ids)
                if pick != uid:
                    chosen.add(pick)
            for other in chosen:
                graph.add_friendship(uid, other)
                targets.extend((uid, other))
        return graph
