"""Simulated social networks behind the plugin interface.

MoDisSENSE "can be extended to more platforms with the appropriate
plugin implementation" (paper Section 1).  :class:`SocialNetworkPlugin`
is that interface; :class:`SimulatedNetwork` is the deterministic
implementation the reproduction uses for Facebook, Twitter and
Foursquare alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import PluginError
from .graph import SocialGraph
from .oauth import AccessToken, OAuthProvider

NETWORK_FACEBOOK = "facebook"
NETWORK_TWITTER = "twitter"
NETWORK_FOURSQUARE = "foursquare"


@dataclass(frozen=True)
class FriendInfo:
    """What the Social Info Repository stores per friend: the unique
    social-network id, the name and the profile picture (Section 2.1)."""

    network_user_id: str
    name: str
    picture_url: str


@dataclass(frozen=True)
class CheckIn:
    """A visit event published on a social network."""

    network_user_id: str
    poi_id: int
    lat: float
    lon: float
    timestamp: int
    comment: str = ""


@dataclass(frozen=True)
class StatusUpdate:
    """A plain status update (tweet, post)."""

    network_user_id: str
    timestamp: int
    text: str


class SocialNetworkPlugin:
    """The contract a network integration must satisfy.

    All reads take a validated :class:`AccessToken` so the plugin can
    enforce that the platform only sees data the user authorized.
    """

    name = "abstract"

    def get_profile(self, token: AccessToken) -> FriendInfo:
        raise PluginError("%s does not implement get_profile" % self.name)

    def get_friends(self, token: AccessToken) -> List[FriendInfo]:
        raise PluginError("%s does not implement get_friends" % self.name)

    def get_checkins(
        self, token: AccessToken, user_id: str, since: int, until: int
    ) -> List[CheckIn]:
        raise PluginError("%s does not implement get_checkins" % self.name)

    def get_status_updates(
        self, token: AccessToken, user_id: str, since: int, until: int
    ) -> List[StatusUpdate]:
        raise PluginError("%s does not implement get_status_updates" % self.name)

    def publish(self, token: AccessToken, text: str) -> None:
        raise PluginError("%s does not implement publish" % self.name)


class SimulatedNetwork(SocialNetworkPlugin):
    """A deterministic in-memory social network.

    Content (friendships, check-ins, statuses) is loaded up front by the
    data generators; read methods then behave like the real API:
    token-gated, friend-visibility-checked, time-windowed.
    """

    def __init__(self, name: str, oauth: Optional[OAuthProvider] = None) -> None:
        self.name = name
        self.oauth = oauth or OAuthProvider(name)
        self.graph = SocialGraph()
        self._profiles: Dict[str, FriendInfo] = {}
        self._checkins: Dict[str, List[CheckIn]] = {}
        self._statuses: Dict[str, List[StatusUpdate]] = {}
        self._published: List[StatusUpdate] = []

    # ------------------------------------------------------- population

    def add_profile(self, profile: FriendInfo, password: str = "pw") -> None:
        self._profiles[profile.network_user_id] = profile
        self.graph.add_user(self._numeric(profile.network_user_id))
        self.oauth.register_user(profile.network_user_id, password)

    def add_friendship(self, a: str, b: str) -> None:
        self.graph.add_friendship(self._numeric(a), self._numeric(b))

    def add_checkin(self, checkin: CheckIn) -> None:
        self._checkins.setdefault(checkin.network_user_id, []).append(checkin)

    def add_status(self, status: StatusUpdate) -> None:
        self._statuses.setdefault(status.network_user_id, []).append(status)

    @staticmethod
    def _numeric(network_user_id: str) -> int:
        """Stable numeric id used by the graph: the trailing digits of the
        network id (the generators mint ids like ``fb_123``)."""
        digits = "".join(ch for ch in network_user_id if ch.isdigit())
        if not digits:
            raise PluginError(
                "network user ids must embed a numeric id, got %r"
                % network_user_id
            )
        return int(digits)

    def _id_for_numeric(self, numeric: int) -> Optional[str]:
        for network_user_id in self._profiles:
            if self._numeric(network_user_id) == numeric:
                return network_user_id
        return None

    # ------------------------------------------------------------ reads

    def _check_visibility(self, token: AccessToken, user_id: str) -> None:
        """The platform may read a user's own data or their friends'."""
        if token.network != self.name:
            raise PluginError(
                "token for network %r used against %r"
                % (token.network, self.name)
            )
        if user_id == token.network_user_id:
            return
        if not self.graph.are_friends(
            self._numeric(token.network_user_id), self._numeric(user_id)
        ):
            raise PluginError(
                "%r is not a friend of %r on %s"
                % (user_id, token.network_user_id, self.name)
            )

    def get_profile(self, token: AccessToken) -> FriendInfo:
        profile = self._profiles.get(token.network_user_id)
        if profile is None:
            raise PluginError(
                "no %s profile for %r" % (self.name, token.network_user_id)
            )
        return profile

    def get_friends(self, token: AccessToken) -> List[FriendInfo]:
        numeric = self._numeric(token.network_user_id)
        out = []
        for friend_numeric in self.graph.friends_of(numeric):
            friend_id = self._id_for_numeric(friend_numeric)
            if friend_id is not None and friend_id in self._profiles:
                out.append(self._profiles[friend_id])
        return out

    def get_checkins(
        self, token: AccessToken, user_id: str, since: int, until: int
    ) -> List[CheckIn]:
        self._check_visibility(token, user_id)
        return [
            c
            for c in self._checkins.get(user_id, [])
            if since <= c.timestamp < until
        ]

    def get_status_updates(
        self, token: AccessToken, user_id: str, since: int, until: int
    ) -> List[StatusUpdate]:
        self._check_visibility(token, user_id)
        return [
            s
            for s in self._statuses.get(user_id, [])
            if since <= s.timestamp < until
        ]

    def publish(self, token: AccessToken, text: str) -> None:
        """Post on the user's behalf (blog sharing, Section 1)."""
        self._published.append(
            StatusUpdate(
                network_user_id=token.network_user_id,
                timestamp=int(token.issued_at),
                text=text,
            )
        )

    @property
    def published(self) -> List[StatusUpdate]:
        return list(self._published)
