"""OAuth-style authorization, simulated.

The paper's User Management Module "follows the OAuth protocol": the
user authenticates with the social network, the network hands the
platform an access token, and the platform acts on the user's behalf
with that token.  This module reproduces the token lifecycle — grant,
validation, expiry, revocation — without the HTTP round-trips.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AuthenticationError


@dataclass(frozen=True)
class AccessToken:
    """A bearer token binding (network, network_user_id, scopes)."""

    token: str
    network: str
    network_user_id: str
    issued_at: float
    expires_at: float
    scopes: tuple = ("read_profile", "read_friends", "read_checkins", "publish")

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


class OAuthProvider:
    """One social network's authorization server.

    Credentials are a per-user secret registered up front (standing in
    for the user's real account); :meth:`authorize` performs the
    code-for-token exchange in one step, since the browser redirect legs
    add nothing to the reproduction.
    """

    def __init__(self, network: str, token_ttl_s: float = 3600.0) -> None:
        self.network = network
        self.token_ttl_s = token_ttl_s
        self._secrets: Dict[str, bytes] = {}
        self._tokens: Dict[str, AccessToken] = {}
        self._signing_key = secrets.token_bytes(32)

    def register_user(self, network_user_id: str, password: str) -> None:
        """Create the account on the (simulated) social network side."""
        digest = hashlib.sha256(password.encode("utf-8")).digest()
        self._secrets[network_user_id] = digest

    def authorize(
        self, network_user_id: str, password: str, now: float
    ) -> AccessToken:
        """Authenticate and issue a bearer token."""
        stored = self._secrets.get(network_user_id)
        if stored is None:
            raise AuthenticationError(
                "unknown %s user %r" % (self.network, network_user_id)
            )
        supplied = hashlib.sha256(password.encode("utf-8")).digest()
        if not hmac.compare_digest(stored, supplied):
            raise AuthenticationError(
                "bad credentials for %s user %r"
                % (self.network, network_user_id)
            )
        raw = "%s:%s:%f" % (self.network, network_user_id, now)
        token_value = hmac.new(
            self._signing_key, raw.encode("utf-8"), hashlib.sha256
        ).hexdigest()
        token = AccessToken(
            token=token_value,
            network=self.network,
            network_user_id=network_user_id,
            issued_at=now,
            expires_at=now + self.token_ttl_s,
        )
        self._tokens[token_value] = token
        return token

    def validate(self, token_value: str, now: float) -> AccessToken:
        """Resolve a bearer token; raises if unknown, revoked or expired."""
        token = self._tokens.get(token_value)
        if token is None:
            raise AuthenticationError("unknown or revoked token")
        if token.is_expired(now):
            raise AuthenticationError(
                "token for %s user %r expired"
                % (token.network, token.network_user_id)
            )
        return token

    def revoke(self, token_value: str) -> None:
        self._tokens.pop(token_value, None)
