"""Tables: a sorted directory of regions plus routing and split logic."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import RegionNotFoundError, StorageError
from .bytes_util import uniform_split_points
from .cell import Cell
from .filters import ScanFilter
from .region import Region


@dataclass
class TableDescriptor:
    """Schema of an HBase table: name, families, pre-split layout."""

    name: str
    families: List[str]
    num_regions: int = 1
    #: Explicit split points override ``num_regions`` uniform splits.
    split_points: Optional[List[bytes]] = None
    flush_threshold_bytes: int = 4 * 1024 * 1024
    #: Rows per region before an automatic split (0 disables).
    max_rows_per_region: int = 0

    def resolved_split_points(self) -> List[bytes]:
        if self.split_points is not None:
            points = list(self.split_points)
            if points != sorted(points):
                raise StorageError("split points must be sorted")
            return points
        if self.num_regions <= 1:
            return []
        return uniform_split_points(self.num_regions)


class HTable:
    """A range-partitioned table.

    Maintains regions sorted by start key; routes every operation to the
    owning region and merges multi-region scans in key order.
    """

    def __init__(self, descriptor: TableDescriptor) -> None:
        self.descriptor = descriptor
        points = descriptor.resolved_split_points()
        boundaries = [None] + points + [None]
        self.regions: List[Region] = [
            Region(
                families=descriptor.families,
                start_key=boundaries[i],
                end_key=boundaries[i + 1],
                flush_threshold_bytes=descriptor.flush_threshold_bytes,
            )
            for i in range(len(boundaries) - 1)
        ]
        # Start keys for bisect routing; region 0 covers (-inf, ...).
        self._start_keys: List[bytes] = [
            r.start_key for r in self.regions if r.start_key is not None
        ]

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def families(self) -> List[str]:
        return list(self.descriptor.families)

    # ------------------------------------------------------------ routing

    def region_for_row(self, row: bytes) -> Region:
        idx = bisect.bisect_right(self._start_keys, row)
        region = self.regions[idx]
        if not region.contains_row(row):
            raise RegionNotFoundError(
                "no region of %r covers row %r" % (self.name, row)
            )
        return region

    def regions_for_range(
        self, start_row: Optional[bytes], stop_row: Optional[bytes]
    ) -> List[Region]:
        """Regions intersecting ``[start_row, stop_row)`` in key order.

        O(log regions + matches) via bisect over the sorted start keys —
        this is the routing primitive the client tier leans on, so it
        must not degrade into a full region sweep per lookup.
        """
        lo = 0
        if start_row is not None:
            # First region whose end covers start_row: the region at
            # bisect_right(start_keys, start_row) starts at or before it.
            lo = bisect.bisect_right(self._start_keys, start_row)
        hi = len(self.regions)
        if stop_row is not None:
            # Regions from bisect_left(start_keys, stop_row) onward start
            # at or beyond stop_row and cannot intersect.  _start_keys is
            # offset by one (region 0 has start_key None), hence the +1.
            hi = bisect.bisect_left(self._start_keys, stop_row) + 1
        return self.regions[lo:hi]

    # ------------------------------------------------------------- writes

    def put(self, cell: Cell) -> None:
        region = self.region_for_row(cell.row)
        region.put(cell)
        self._maybe_split(region, cell.family)

    def put_many(self, cells: Sequence[Cell]) -> None:
        for cell in cells:
            self.put(cell)

    def put_batch(self, cells: Sequence[Cell]) -> Dict[Region, tuple]:
        """Group-commit puts, routed once per batch.

        Cells are grouped by owning region (one bisect per cell, no
        per-put ``_maybe_split`` bookkeeping) and each region applies
        its share via :meth:`Region.put_batch` — one WAL sync and one
        memstore merge per region instead of one per cell.  Returns
        ``{region: (first_wal_seq, last_wal_seq)}`` so callers tracking
        fold watermarks (the ingest tier) know what landed where.
        Whole-batch validation mirrors :meth:`mutate_batch`.
        """
        grouped: Dict[int, List[Cell]] = {}
        region_by_id: Dict[int, Region] = {}
        for cell in cells:
            region = self.region_for_row(cell.row)
            grouped.setdefault(region.region_id, []).append(cell)
            region_by_id[region.region_id] = region
        applied: Dict[Region, tuple] = {}
        for region_id, batch in grouped.items():
            region = region_by_id[region_id]
            applied[region] = region.put_batch(batch)
            self._maybe_split(region, batch[0].family)
        return applied

    def delete(self, row: bytes, family: str, qualifier: bytes, timestamp: int) -> None:
        self.region_for_row(row).delete(row, family, qualifier, timestamp)

    def check_and_put(
        self,
        row: bytes,
        family: str,
        qualifier: bytes,
        expected: Optional[bytes],
        cell: Cell,
    ) -> bool:
        """Atomic conditional write, routed to the owning region."""
        return self.region_for_row(row).check_and_put(
            row, family, qualifier, expected, cell
        )

    def mutate_batch(self, cells: Sequence[Cell]) -> int:
        """Batch puts, grouped per owning region.

        Validation runs for the *whole batch* before any region applies
        its share, preserving the all-or-nothing-on-validation contract
        across regions.
        """
        grouped: Dict[int, List[Cell]] = {}
        region_by_id = {}
        for cell in cells:
            region = self.region_for_row(cell.row)
            grouped.setdefault(region.region_id, []).append(cell)
            region_by_id[region.region_id] = region
        written = 0
        for region_id, batch in grouped.items():
            written += region_by_id[region_id].mutate_batch(batch)
        return written

    def set_ttl_cutoff(self, family: str, cutoff_ts: int) -> None:
        """Apply a TTL horizon to every region of the table."""
        for region in self.regions:
            region.set_ttl_cutoff(family, cutoff_ts)

    def flush(self) -> None:
        for region in self.regions:
            region.flush()

    def compact(self) -> None:
        for region in self.regions:
            region.compact()

    # -------------------------------------------------------------- reads

    def get(self, row: bytes, family: str, qualifier: bytes) -> Optional[bytes]:
        return self.region_for_row(row).get(row, family, qualifier)

    def get_row(self, row: bytes, family: str) -> Dict[bytes, bytes]:
        return self.region_for_row(row).get_row(row, family)

    def get_versions(
        self,
        row: bytes,
        family: str,
        qualifier: bytes,
        max_versions: int = 3,
        min_ts: Optional[int] = None,
        max_ts: Optional[int] = None,
    ) -> List[Cell]:
        """Versioned read, routed to the owning region."""
        return self.region_for_row(row).get_versions(
            row, family, qualifier, max_versions, min_ts, max_ts
        )

    def scan(
        self,
        family: str,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
        scan_filter: Optional[ScanFilter] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Cell]:
        """Scan across all intersecting regions in key order.

        ``limit`` stops after that many cells — regions are visited in
        key order, so a limited scan touches only the leading regions
        (HBase's ``setLimit`` / paginated scanner).
        """
        emitted = 0
        for region in self.regions_for_range(start_row, stop_row):
            for cell in region.scan(family, start_row, stop_row, scan_filter):
                yield cell
                emitted += 1
                if limit is not None and emitted >= limit:
                    return

    # -------------------------------------------------------------- split

    def _maybe_split(self, region: Region, family: str) -> None:
        limit = self.descriptor.max_rows_per_region
        if limit <= 0 or region.approx_rows(family) < limit:
            return
        self.split_region(region)

    def split_region(self, region: Region) -> None:
        """Split a region at its median row key (HBase's midpoint split).

        All of the region's cells are re-distributed into two daughters;
        a no-op if the region holds fewer than two distinct rows.
        """
        rows = set()
        cells: List[Cell] = []
        for fam in self.descriptor.families:
            for cell in region.scan(fam):
                rows.add(cell.row)
                cells.append(cell)
        if len(rows) < 2:
            return
        sorted_rows = sorted(rows)
        mid = sorted_rows[len(sorted_rows) // 2]
        if mid == sorted_rows[0]:
            return  # degenerate: all mass on the first key

        left = Region(
            families=self.descriptor.families,
            start_key=region.start_key,
            end_key=mid,
            flush_threshold_bytes=self.descriptor.flush_threshold_bytes,
        )
        right = Region(
            families=self.descriptor.families,
            start_key=mid,
            end_key=region.end_key,
            flush_threshold_bytes=self.descriptor.flush_threshold_bytes,
        )
        for cell in cells:
            (left if cell.row < mid else right).put(cell)

        idx = self.regions.index(region)
        self.regions[idx : idx + 1] = [left, right]
        self._start_keys = [
            r.start_key for r in self.regions if r.start_key is not None
        ]

    # ------------------------------------------------------------ stats

    def region_ids(self) -> List[int]:
        return [r.region_id for r in self.regions]

    def total_rows(self, family: str) -> int:
        return sum(r.approx_rows(family) for r in self.regions)

    def __repr__(self) -> str:
        return "HTable(%r, regions=%d)" % (self.name, len(self.regions))
