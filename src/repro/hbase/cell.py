"""The versioned cell: HBase's fundamental storage unit."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ValidationError


@dataclass(frozen=True)
class Cell:
    """One ``(row, family, qualifier, timestamp) -> value`` entry.

    ``is_delete`` marks a tombstone; the LSM read path must see newer
    tombstones shadow older puts until a major compaction drops both.
    """

    row: bytes
    family: str
    qualifier: bytes
    timestamp: int
    value: bytes = b""
    is_delete: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.row, bytes) or not self.row:
            raise ValidationError("cell row must be non-empty bytes")
        if not isinstance(self.qualifier, bytes):
            raise ValidationError("cell qualifier must be bytes")
        if self.timestamp < 0:
            raise ValidationError("cell timestamp must be >= 0")
        if not isinstance(self.value, bytes):
            raise ValidationError("cell value must be bytes")

    def sort_key(self) -> Tuple:
        """HBase KeyValue order: row asc, family/qualifier asc, timestamp
        *descending* so the newest version of a cell is met first."""
        return (self.row, self.family, self.qualifier, -self.timestamp)

    def coordinates(self) -> Tuple:
        """The cell's identity without version: (row, family, qualifier)."""
        return (self.row, self.family, self.qualifier)

    def __lt__(self, other: "Cell") -> bool:
        return self.sort_key() < other.sort_key()

    def approx_size(self) -> int:
        """Rough heap footprint used by memstore flush thresholds."""
        return 32 + len(self.row) + len(self.qualifier) + len(self.value)
