"""The in-memory, sorted write buffer of a region's column family."""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, List, Optional, Sequence, Tuple

from .cell import Cell


class MemStore:
    """Sorted buffer of freshly-written cells.

    Single puts insert into a list kept sorted by KeyValue order via
    ``bisect`` — O(log n) search plus O(n) shift.  Batched puts
    (:meth:`put_batch`, the ingest tier's group commit) do NOT pay that
    per-cell shift: each batch lands as its own sorted *segment*, and
    segments merge into the main run lazily, on the first read that
    needs total order.  A write burst of B batches therefore costs one
    O(n) consolidation instead of B of them — the in-memory analogue of
    LSM minor compaction, and the same trade real HBase makes by
    buffering writes in a skip list instead of a flat sorted array.

    Reads after consolidation are exactly as cheap as before this
    optimization existed: one sorted run, allocation-free iteration.

    Thread-safety: a lock guards the segment list and the main run, so
    concurrent scans (queries) and batched writes (ingest appliers)
    never observe a half-merged buffer.
    """

    def __init__(self, flush_threshold_bytes: int = 4 * 1024 * 1024) -> None:
        self._cells: List[Cell] = []
        self._keys: List[tuple] = []
        #: Pending segments from batched puts, newest last, each in
        #: arrival order.  Later cells win over earlier ones (and over
        #: the main run) on equal keys; sorting is consolidation's job.
        self._pending: List[List[Cell]] = []
        self._size_bytes = 0
        self._lock = threading.Lock()
        self.flush_threshold_bytes = flush_threshold_bytes

    def __len__(self) -> int:
        with self._lock:
            self._consolidate()
            return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def should_flush(self) -> bool:
        return self._size_bytes >= self.flush_threshold_bytes

    def put(self, cell: Cell) -> None:
        """Insert a cell, keeping KeyValue order.

        A cell with identical coordinates *and* timestamp replaces the
        previous one (HBase's last-write-wins for same-version puts).
        """
        with self._lock:
            if self._pending:
                # Sequencing against un-merged batches: land as a
                # 1-cell segment so last-write-wins order is preserved.
                self._pending.append([cell])
                self._size_bytes += cell.approx_size()
                return
            key = cell.sort_key()
            idx = bisect.bisect_left(self._keys, key)
            if idx < len(self._keys) and self._keys[idx] == key:
                self._size_bytes -= self._cells[idx].approx_size()
                self._cells[idx] = cell
                self._size_bytes += cell.approx_size()
                return
            self._keys.insert(idx, key)
            self._cells.insert(idx, cell)
            self._size_bytes += cell.approx_size()

    def put_batch(self, cells: Sequence[Cell]) -> None:
        """Insert many cells as one sorted segment.

        Semantically identical to calling :meth:`put` per cell in order
        (same-key cells replace, later entries win), but the write path
        pays only an O(k) append: sorting and merging are deferred to
        one consolidation on the next ordered read.  Total work is
        conserved — it moves off the write-burst hot path, which is the
        in-memory half of the ingest tier's group-commit throughput win.
        """
        if not cells:
            return
        if len(cells) == 1:
            self.put(cells[0])  # handles both pending and in-place paths
            return
        with self._lock:
            self._pending.append(list(cells))
            # Approximate until consolidation: a key shadowing an older
            # copy counts twice, erring toward flushing sooner.
            self._size_bytes += sum(cell.approx_size() for cell in cells)

    def _consolidate(self) -> None:
        """Merge pending segments into the main run (lock held).

        One two-pointer pass: segments union into a single last-wins
        sorted batch (Timsort over concatenated sorted runs is near
        linear), which then merges with the main run in one slice-copy
        sweep — the O(n) every batched write deferred, paid once.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        stamped: List[Tuple[tuple, int, Cell]] = []
        order = 0
        for seg in pending:
            for cell in seg:
                stamped.append((cell.sort_key(), order, cell))
                order += 1
        stamped.sort(key=lambda t: (t[0], t[1]))
        batch: List[Tuple[tuple, Cell]] = []
        size = self._size_bytes
        for key, _order, cell in stamped:
            if batch and batch[-1][0] == key:
                size -= batch[-1][1].approx_size()
                batch[-1] = (key, cell)
            else:
                batch.append((key, cell))

        old_keys, old_cells = self._keys, self._cells
        new_keys: List[tuple] = []
        new_cells: List[Cell] = []
        n = len(old_keys)
        oi = 0
        for key, cell in batch:
            # Copy existing entries below the incoming key in one slice.
            j = bisect.bisect_left(old_keys, key, oi)
            if j > oi:
                new_keys.extend(old_keys[oi:j])
                new_cells.extend(old_cells[oi:j])
                oi = j
            if oi < n and old_keys[oi] == key:
                size -= old_cells[oi].approx_size()
                oi += 1  # replaced by the incoming cell
            new_keys.append(key)
            new_cells.append(cell)
        if oi < n:
            new_keys.extend(old_keys[oi:])
            new_cells.extend(old_cells[oi:])
        self._keys = new_keys
        self._cells = new_cells
        self._size_bytes = size

    def scan(
        self,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in order.

        Both ends resolve by binary search, so iteration never touches
        (or compares against) cells outside the range.
        """
        with self._lock:
            self._consolidate()
            lo = 0
            if start_row is not None:
                lo = bisect.bisect_left(self._keys, (start_row,))
            hi = len(self._cells)
            if stop_row is not None:
                hi = bisect.bisect_left(self._keys, (stop_row,), lo)
            if lo == 0 and hi == len(self._cells):
                return iter(self._cells)
            return iter(self._cells[lo:hi])

    def snapshot(self) -> List[Cell]:
        """The sorted cell list, for flushing into a store file."""
        with self._lock:
            self._consolidate()
            return list(self._cells)

    def clear(self) -> None:
        with self._lock:
            self._cells = []
            self._keys = []
            self._pending = []
            self._size_bytes = 0
