"""The in-memory, sorted write buffer of a region's column family."""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from .cell import Cell


class MemStore:
    """Sorted buffer of freshly-written cells.

    Writes insert into a list kept sorted by KeyValue order via
    ``bisect`` — O(log n) search plus O(n) shift, which on the memstore's
    bounded size (it flushes at ``flush_threshold_bytes``) stays far from
    quadratic in practice and keeps scans allocation-free.
    """

    def __init__(self, flush_threshold_bytes: int = 4 * 1024 * 1024) -> None:
        self._cells: List[Cell] = []
        self._keys: List[tuple] = []
        self._size_bytes = 0
        self.flush_threshold_bytes = flush_threshold_bytes

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def should_flush(self) -> bool:
        return self._size_bytes >= self.flush_threshold_bytes

    def put(self, cell: Cell) -> None:
        """Insert a cell, keeping KeyValue order.

        A cell with identical coordinates *and* timestamp replaces the
        previous one (HBase's last-write-wins for same-version puts).
        """
        key = cell.sort_key()
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            self._size_bytes -= self._cells[idx].approx_size()
            self._cells[idx] = cell
            self._size_bytes += cell.approx_size()
            return
        self._keys.insert(idx, key)
        self._cells.insert(idx, cell)
        self._size_bytes += cell.approx_size()

    def scan(
        self,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in order.

        Both ends resolve by binary search, so iteration never touches
        (or compares against) cells outside the range.
        """
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._keys, (start_row,))
        hi = len(self._cells)
        if stop_row is not None:
            hi = bisect.bisect_left(self._keys, (stop_row,), lo)
        if lo == 0 and hi == len(self._cells):
            return iter(self._cells)
        return iter(self._cells[lo:hi])

    def snapshot(self) -> List[Cell]:
        """The sorted cell list, for flushing into a store file."""
        return list(self._cells)

    def clear(self) -> None:
        self._cells = []
        self._keys = []
        self._size_bytes = 0
