"""Write-ahead log for region durability.

HBase acknowledges a write only after it reaches the WAL; if a region
server dies, the memstore's unflushed cells are rebuilt by replaying the
log.  This module reproduces that contract in-process: the "disk" is an
append-only record list owned by the log object, which survives the
simulated crash of the region that writes to it.

Log records are framed with a sequence number and a CRC so replay can
detect (and stop at) a torn tail — the failure mode a real crash leaves
behind.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..errors import StorageError
from .cell import Cell


@dataclass(frozen=True)
class WALRecord:
    """One durable log entry."""

    sequence: int
    cell: Cell
    crc: int

    @staticmethod
    def checksum(sequence: int, cell: Cell) -> int:
        payload = b"|".join(
            (
                str(sequence).encode("ascii"),
                cell.row,
                cell.family.encode("utf-8"),
                cell.qualifier,
                str(cell.timestamp).encode("ascii"),
                cell.value,
                b"1" if cell.is_delete else b"0",
            )
        )
        return zlib.crc32(payload)

    def is_valid(self) -> bool:
        return self.crc == self.checksum(self.sequence, self.cell)


class WriteAheadLog:
    """An append-only cell log with sequence numbers and truncation.

    ``truncate_to(sequence)`` discards entries at or below ``sequence``;
    regions call it after a successful flush, because flushed cells no
    longer need replay (HBase's log-roll + archival).
    """

    def __init__(self) -> None:
        self._records: List[WALRecord] = []
        self._next_sequence = 1

    def append(self, cell: Cell) -> int:
        """Durably record one cell; returns its sequence number."""
        sequence = self._next_sequence
        self._next_sequence += 1
        self._records.append(
            WALRecord(
                sequence=sequence,
                cell=cell,
                crc=WALRecord.checksum(sequence, cell),
            )
        )
        return sequence

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_sequence(self) -> int:
        return self._next_sequence - 1

    def truncate_to(self, sequence: int) -> int:
        """Drop records with sequence <= ``sequence``; returns how many."""
        before = len(self._records)
        self._records = [r for r in self._records if r.sequence > sequence]
        return before - len(self._records)

    def replay(self) -> Iterator[Cell]:
        """Yield logged cells in order, stopping at a corrupt record.

        A torn tail (e.g. from :meth:`corrupt_tail` in tests) ends the
        replay rather than raising: everything before it is recovered,
        matching HBase's recovery semantics.
        """
        for record in self._records:
            if not record.is_valid():
                break
            yield record.cell

    def corrupt_tail(self) -> None:
        """Testing hook: simulate a torn final record."""
        if not self._records:
            raise StorageError("cannot corrupt an empty log")
        last = self._records[-1]
        self._records[-1] = WALRecord(
            sequence=last.sequence, cell=last.cell, crc=last.crc ^ 0xFFFF
        )
