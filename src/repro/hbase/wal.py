"""Write-ahead logs for region durability.

HBase acknowledges a write only after it reaches the WAL; if a region
server dies, the memstore's unflushed cells are rebuilt by replaying the
log.  This module reproduces that contract in-process: the "disk" is an
append-only record list owned by the log object, which survives the
simulated crash of the region that writes to it.

Log records are framed with a sequence number and a CRC so replay can
detect (and stop at) a torn tail — the failure mode a real crash leaves
behind.

Two log shapes live here:

- :class:`WriteAheadLog` — a plain per-region log (the seed behavior,
  still what the streaming ingest tier attaches when no supervisor is
  running);
- :class:`ServerWAL` + :class:`RegionWALHandle` — the HBase-faithful
  arrangement the cluster supervisor installs: ONE durable log per
  region *server*, shared by every region placed there, with each
  record tagged by its region.  When the server dies, recovery splits
  the log by region (:meth:`ServerWAL.split_by_region`) and replays
  each region's committed-but-unflushed suffix on its new home — the
  genuine log-split recovery a real master performs.  The handle gives
  each region the exact :class:`WriteAheadLog` interface, so regions
  and the ingest tier's fold watermarks work unchanged on either shape.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from .cell import Cell


@dataclass(frozen=True)
class WALRecord:
    """One durable log entry."""

    sequence: int
    cell: Cell
    crc: int

    @staticmethod
    def checksum(sequence: int, cell: Cell) -> int:
        payload = b"|".join(
            (
                str(sequence).encode("ascii"),
                cell.row,
                cell.family.encode("utf-8"),
                cell.qualifier,
                str(cell.timestamp).encode("ascii"),
                cell.value,
                b"1" if cell.is_delete else b"0",
            )
        )
        return zlib.crc32(payload)

    def is_valid(self) -> bool:
        return self.crc == self.checksum(self.sequence, self.cell)


class WriteAheadLog:
    """An append-only cell log with sequence numbers and truncation.

    ``truncate_to(sequence)`` discards entries at or below ``sequence``;
    regions call it after a successful flush, because flushed cells no
    longer need replay (HBase's log-roll + archival).
    """

    def __init__(self) -> None:
        self._records: List[WALRecord] = []
        self._next_sequence = 1
        #: Durability boundaries crossed so far: one per :meth:`append`
        #: and one per :meth:`append_batch`, however many records the
        #: batch carried.  This is the group-commit ledger — a real WAL
        #: pays one fsync per boundary, so the streaming ingest tier's
        #: 3x-writes claim is checkable as ``sync_count << len(wal)``.
        self.sync_count = 0

    def append(self, cell: Cell) -> int:
        """Durably record one cell; returns its sequence number.

        Each call is its own sync boundary (fsync-per-put — the seed
        write path's behavior, which group commit amortizes away).
        """
        sequence = self._next_sequence
        self._next_sequence += 1
        self._records.append(
            WALRecord(
                sequence=sequence,
                cell=cell,
                crc=WALRecord.checksum(sequence, cell),
            )
        )
        self.sync_count += 1
        return sequence

    def append_batch(self, cells: Sequence[Cell]) -> Tuple[int, int]:
        """Group-commit: durably record ``cells`` under ONE sync boundary.

        Returns ``(first_sequence, last_sequence)`` of the appended run
        (``(0, 0)`` for an empty batch).  Records are framed and
        checksummed individually — replay is record-by-record and
        byte-identical to the same cells appended one at a time — but
        the batch shares a single sync, which is where a real WAL's
        throughput win lives.
        """
        if not cells:
            return (0, 0)
        first = self._next_sequence
        checksum = WALRecord.checksum
        append = self._records.append
        sequence = first
        for cell in cells:
            append(WALRecord(sequence=sequence, cell=cell,
                             crc=checksum(sequence, cell)))
            sequence += 1
        self._next_sequence = sequence
        self.sync_count += 1
        return (first, sequence - 1)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_sequence(self) -> int:
        return self._next_sequence - 1

    def truncate_to(self, sequence: int) -> int:
        """Drop records with sequence <= ``sequence``; returns how many."""
        before = len(self._records)
        self._records = [r for r in self._records if r.sequence > sequence]
        return before - len(self._records)

    def replay(self) -> Iterator[Cell]:
        """Yield logged cells in order, stopping at a corrupt record.

        A torn tail (e.g. from :meth:`corrupt_tail` in tests) ends the
        replay rather than raising: everything before it is recovered,
        matching HBase's recovery semantics.
        """
        for record in self._records:
            if not record.is_valid():
                break
            yield record.cell

    def records_after(self, sequence: int) -> Iterator[WALRecord]:
        """Valid records with ``sequence > sequence``, in order.

        The ingest tier's applier recovery replays exactly the suffix of
        the log it had not yet folded into the incremental HotIn state —
        records at or below the fold watermark are skipped, so a replay
        can never double-count a delta.  Stops at a torn tail like
        :meth:`replay`.
        """
        for record in self._records:
            if not record.is_valid():
                break
            if record.sequence > sequence:
                yield record

    def corrupt_tail(self) -> None:
        """Testing hook: simulate a torn final record."""
        if not self._records:
            raise StorageError("cannot corrupt an empty log")
        last = self._records[-1]
        self._records[-1] = WALRecord(
            sequence=last.sequence, cell=last.cell, crc=last.crc ^ 0xFFFF
        )

    def drop_torn_tail(self) -> int:
        """Discard the invalid suffix of the log; returns how many records.

        Replay already *ignores* a torn tail; dropping it additionally
        reclaims the space and lets subsequent appends produce a log
        whose every record is valid again.  The scrubber calls this when
        its WAL-tail pass finds torn records.
        """
        for i, record in enumerate(self._records):
            if not record.is_valid():
                dropped = len(self._records) - i
                del self._records[i:]
                return dropped
        return 0


class ServerWAL:
    """One durable write-ahead log per region *server* (HBase-faithful).

    Every region placed on the server appends to this single log through
    its :class:`RegionWALHandle`; records are kept per region internally
    so that :meth:`split_by_region` — the master's log split during
    recovery — is a dictionary read, not a scan.

    Truncation (after a region flush) moves records into a bounded
    per-region *archive* instead of discarding them: flushed records are
    no longer needed for crash replay, but they are the only intact copy
    of a cell once a store-file block rots, so the scrubber repairs
    corrupt blocks from here.  The archive is capped per region
    (``archive_capacity`` records, oldest evicted first) so a long-lived
    server cannot hold the whole table in log form.
    """

    def __init__(self, node_id: int, archive_capacity: int = 65536) -> None:
        if archive_capacity < 0:
            raise StorageError("archive_capacity must be >= 0")
        self.node_id = node_id
        self.archive_capacity = archive_capacity
        self._by_region: Dict[int, List[WALRecord]] = {}
        self._archive: Dict[int, List[WALRecord]] = {}
        #: Sync boundaries crossed on this server's log (group-commit
        #: ledger, summed across every region writing here).
        self.sync_count = 0

    # -- write path (called by RegionWALHandle) --------------------------

    def append_record(self, region_id: int, record: WALRecord) -> None:
        self._by_region.setdefault(region_id, []).append(record)

    def mark_sync(self) -> None:
        self.sync_count += 1

    # -- read / recovery -------------------------------------------------

    def records_for(self, region_id: int) -> List[WALRecord]:
        """The region's live (not yet flushed/archived) records, in order."""
        return self._by_region.get(region_id, [])

    def archived_for(self, region_id: int) -> List[WALRecord]:
        """Flushed records retained for scrub repair, oldest first."""
        return self._archive.get(region_id, [])

    def region_ids(self) -> List[int]:
        return sorted(set(self._by_region) | set(self._archive))

    def split_by_region(self) -> Dict[int, List[WALRecord]]:
        """Log split: the live records of every region, keyed by region.

        This is what the supervisor walks when the server is declared
        dead — each region's committed-but-unflushed suffix, ready to be
        replayed on that region's new home.
        """
        return {rid: list(records)
                for rid, records in self._by_region.items() if records}

    # -- maintenance ------------------------------------------------------

    def truncate_region(self, region_id: int, sequence: int) -> int:
        """Archive the region's records with sequence <= ``sequence``.

        Returns how many records moved.  Only valid records are worth
        archiving — a torn record can never seed a repair.
        """
        live = self._by_region.get(region_id)
        if not live:
            return 0
        keep = [r for r in live if r.sequence > sequence]
        moved = [r for r in live if r.sequence <= sequence and r.is_valid()]
        count = len(live) - len(keep)
        if keep:
            self._by_region[region_id] = keep
        else:
            self._by_region.pop(region_id, None)
        if moved and self.archive_capacity:
            archive = self._archive.setdefault(region_id, [])
            archive.extend(moved)
            if len(archive) > self.archive_capacity:
                del archive[: len(archive) - self.archive_capacity]
        return count

    def adopt(self, region_id: int, live: Sequence[WALRecord],
              archived: Sequence[WALRecord]) -> None:
        """Take ownership of a region's records (rehoming after a move)."""
        if live:
            self._by_region.setdefault(region_id, []).extend(live)
        if archived and self.archive_capacity:
            archive = self._archive.setdefault(region_id, [])
            archive.extend(archived)
            if len(archive) > self.archive_capacity:
                del archive[: len(archive) - self.archive_capacity]

    def remove_region(self, region_id: int) -> Tuple[List[WALRecord], List[WALRecord]]:
        """Detach a region's records entirely; returns (live, archived)."""
        return (
            self._by_region.pop(region_id, []),
            self._archive.pop(region_id, []),
        )


class RegionWALHandle:
    """A region's view of its server's shared :class:`ServerWAL`.

    Presents the exact :class:`WriteAheadLog` interface — ``append``,
    ``append_batch``, ``truncate_to``, ``replay``, ``records_after``,
    ``last_sequence``, ``sync_count`` — so :class:`~repro.hbase.region.Region`
    and the streaming ingest tier's fold watermarks work unchanged.  The
    sequence counter is owned by the handle (per-region sequences, as in
    HBase), while durability and storage live on whichever server the
    region is currently placed on.  :meth:`rehome` re-points the handle
    at a new server after the supervisor moves the region, carrying the
    region's records along.
    """

    def __init__(self, server: "ServerWAL", region_id: int) -> None:
        self._server = server
        self.region_id = region_id
        self._next_sequence = 1
        #: Sync boundaries attributable to THIS region's writes (the
        #: per-region ledger the ingest tier's group-commit accounting
        #: reads); the server additionally keeps a cluster-visible sum.
        self.sync_count = 0

    @property
    def server(self) -> "ServerWAL":
        return self._server

    def append(self, cell: Cell) -> int:
        sequence = self._next_sequence
        self._next_sequence += 1
        self._server.append_record(
            self.region_id,
            WALRecord(sequence=sequence, cell=cell,
                      crc=WALRecord.checksum(sequence, cell)),
        )
        self.sync_count += 1
        self._server.mark_sync()
        return sequence

    def append_batch(self, cells: Sequence[Cell]) -> Tuple[int, int]:
        if not cells:
            return (0, 0)
        first = self._next_sequence
        sequence = first
        checksum = WALRecord.checksum
        append = self._server.append_record
        rid = self.region_id
        for cell in cells:
            append(rid, WALRecord(sequence=sequence, cell=cell,
                                  crc=checksum(sequence, cell)))
            sequence += 1
        self._next_sequence = sequence
        self.sync_count += 1
        self._server.mark_sync()
        return (first, sequence - 1)

    def __len__(self) -> int:
        return len(self._server.records_for(self.region_id))

    @property
    def last_sequence(self) -> int:
        return self._next_sequence - 1

    def truncate_to(self, sequence: int) -> int:
        return self._server.truncate_region(self.region_id, sequence)

    def replay(self) -> Iterator[Cell]:
        for record in self._server.records_for(self.region_id):
            if not record.is_valid():
                break
            yield record.cell

    def records_after(self, sequence: int) -> Iterator[WALRecord]:
        for record in self._server.records_for(self.region_id):
            if not record.is_valid():
                break
            if record.sequence > sequence:
                yield record

    def corrupt_tail(self) -> None:
        records = self._server.records_for(self.region_id)
        if not records:
            raise StorageError("cannot corrupt an empty log")
        last = records[-1]
        records[-1] = WALRecord(
            sequence=last.sequence, cell=last.cell, crc=last.crc ^ 0xFFFF
        )

    def drop_torn_tail(self) -> int:
        records = self._server.records_for(self.region_id)
        for i, record in enumerate(records):
            if not record.is_valid():
                dropped = len(records) - i
                del records[i:]
                return dropped
        return 0

    def rehome(self, new_server: "ServerWAL") -> None:
        """Move this region's records (live + archived) to ``new_server``.

        Called by the supervisor when the region's placement changes —
        either a planned move (the region is flushed first, so only the
        archive travels) or dead-server recovery (the split-out live
        suffix travels too, for replay on the new home).
        """
        if new_server is self._server:
            return
        live, archived = self._server.remove_region(self.region_id)
        new_server.adopt(self.region_id, live, archived)
        self._server = new_server
