"""Write-ahead log for region durability.

HBase acknowledges a write only after it reaches the WAL; if a region
server dies, the memstore's unflushed cells are rebuilt by replaying the
log.  This module reproduces that contract in-process: the "disk" is an
append-only record list owned by the log object, which survives the
simulated crash of the region that writes to it.

Log records are framed with a sequence number and a CRC so replay can
detect (and stop at) a torn tail — the failure mode a real crash leaves
behind.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from .cell import Cell


@dataclass(frozen=True)
class WALRecord:
    """One durable log entry."""

    sequence: int
    cell: Cell
    crc: int

    @staticmethod
    def checksum(sequence: int, cell: Cell) -> int:
        payload = b"|".join(
            (
                str(sequence).encode("ascii"),
                cell.row,
                cell.family.encode("utf-8"),
                cell.qualifier,
                str(cell.timestamp).encode("ascii"),
                cell.value,
                b"1" if cell.is_delete else b"0",
            )
        )
        return zlib.crc32(payload)

    def is_valid(self) -> bool:
        return self.crc == self.checksum(self.sequence, self.cell)


class WriteAheadLog:
    """An append-only cell log with sequence numbers and truncation.

    ``truncate_to(sequence)`` discards entries at or below ``sequence``;
    regions call it after a successful flush, because flushed cells no
    longer need replay (HBase's log-roll + archival).
    """

    def __init__(self) -> None:
        self._records: List[WALRecord] = []
        self._next_sequence = 1
        #: Durability boundaries crossed so far: one per :meth:`append`
        #: and one per :meth:`append_batch`, however many records the
        #: batch carried.  This is the group-commit ledger — a real WAL
        #: pays one fsync per boundary, so the streaming ingest tier's
        #: 3x-writes claim is checkable as ``sync_count << len(wal)``.
        self.sync_count = 0

    def append(self, cell: Cell) -> int:
        """Durably record one cell; returns its sequence number.

        Each call is its own sync boundary (fsync-per-put — the seed
        write path's behavior, which group commit amortizes away).
        """
        sequence = self._next_sequence
        self._next_sequence += 1
        self._records.append(
            WALRecord(
                sequence=sequence,
                cell=cell,
                crc=WALRecord.checksum(sequence, cell),
            )
        )
        self.sync_count += 1
        return sequence

    def append_batch(self, cells: Sequence[Cell]) -> Tuple[int, int]:
        """Group-commit: durably record ``cells`` under ONE sync boundary.

        Returns ``(first_sequence, last_sequence)`` of the appended run
        (``(0, 0)`` for an empty batch).  Records are framed and
        checksummed individually — replay is record-by-record and
        byte-identical to the same cells appended one at a time — but
        the batch shares a single sync, which is where a real WAL's
        throughput win lives.
        """
        if not cells:
            return (0, 0)
        first = self._next_sequence
        checksum = WALRecord.checksum
        append = self._records.append
        sequence = first
        for cell in cells:
            append(WALRecord(sequence=sequence, cell=cell,
                             crc=checksum(sequence, cell)))
            sequence += 1
        self._next_sequence = sequence
        self.sync_count += 1
        return (first, sequence - 1)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_sequence(self) -> int:
        return self._next_sequence - 1

    def truncate_to(self, sequence: int) -> int:
        """Drop records with sequence <= ``sequence``; returns how many."""
        before = len(self._records)
        self._records = [r for r in self._records if r.sequence > sequence]
        return before - len(self._records)

    def replay(self) -> Iterator[Cell]:
        """Yield logged cells in order, stopping at a corrupt record.

        A torn tail (e.g. from :meth:`corrupt_tail` in tests) ends the
        replay rather than raising: everything before it is recovered,
        matching HBase's recovery semantics.
        """
        for record in self._records:
            if not record.is_valid():
                break
            yield record.cell

    def records_after(self, sequence: int) -> Iterator[WALRecord]:
        """Valid records with ``sequence > sequence``, in order.

        The ingest tier's applier recovery replays exactly the suffix of
        the log it had not yet folded into the incremental HotIn state —
        records at or below the fold watermark are skipped, so a replay
        can never double-count a delta.  Stops at a torn tail like
        :meth:`replay`.
        """
        for record in self._records:
            if not record.is_valid():
                break
            if record.sequence > sequence:
                yield record

    def corrupt_tail(self) -> None:
        """Testing hook: simulate a torn final record."""
        if not self._records:
            raise StorageError("cannot corrupt an empty log")
        last = self._records[-1]
        self._records[-1] = WALRecord(
            sequence=last.sequence, cell=last.cell, crc=last.crc ^ 0xFFFF
        )
