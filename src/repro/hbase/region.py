"""A region: one contiguous row-key range of a table.

Regions are HBase's unit of distribution and of coprocessor execution.
Each region owns a memstore + store files per column family and serves
gets, puts, deletes and filtered scans over its ``[start_key, end_key)``
slice of the table.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ColumnFamilyNotFoundError, StorageError
from .cell import Cell
from .filters import ScanFilter
from .hfile import StoreFile, iter_merge_sorted_runs, merge_sorted_runs
from .memstore import MemStore
from .wal import WriteAheadLog

_region_ids = itertools.count()


class Region:
    """One shard of a table, spanning ``[start_key, end_key)``.

    ``start_key=None`` means "from the beginning of the key space";
    ``end_key=None`` means "to the end".
    """

    def __init__(
        self,
        families: Sequence[str],
        start_key: Optional[bytes] = None,
        end_key: Optional[bytes] = None,
        flush_threshold_bytes: int = 4 * 1024 * 1024,
        wal: Optional["WriteAheadLog"] = None,
        minor_compaction_threshold: int = 0,
    ) -> None:
        if not families:
            raise StorageError("a region needs at least one column family")
        self.region_id = next(_region_ids)
        self.start_key = start_key
        self.end_key = end_key
        self.families = list(families)
        self._flush_threshold = flush_threshold_bytes
        self._memstores: Dict[str, MemStore] = {
            f: MemStore(flush_threshold_bytes) for f in families
        }
        self._store_files: Dict[str, List[StoreFile]] = {f: [] for f in families}
        #: Monotonic per-region write counter; doubles as a version
        #: tie-breaker when callers put twice at the same timestamp.
        self.write_count = 0
        #: Monotonic data sequence id: bumped by every mutation that can
        #: change what a reader observes *or* reorganizes storage — puts
        #: (including tombstones), flushes, minor/major compactions, TTL
        #: cutoff changes and store-file adoption.  Scan-cache entries
        #: are stamped with the seqid captured before their scan, so any
        #: concurrent or later mutation makes them stale (HBase's
        #: read-point semantics, used here for invalidation).
        self.data_seqid = 0
        #: Optional durability log: every put is appended before it is
        #: applied; a full flush lets the log truncate (see recover()).
        self.wal = wal
        #: Store files per family before a minor compaction triggers
        #: (0 disables automatic minor compaction).
        self.minor_compaction_threshold = minor_compaction_threshold
        #: Per-family TTL horizon: cells with ``timestamp < cutoff`` are
        #: invisible to reads and dropped by major compaction (HBase's
        #: column-family TTL, driven by explicit application time since
        #: the store has no wall clock).
        self._ttl_cutoff: Dict[str, int] = {}
        #: Scans served since region creation.  Best-effort (bumped
        #: without a lock; under concurrent queries an increment can be
        #: lost) — it feeds hot-region attribution in trace tags, not
        #: the cost model.
        self.scans_served = 0

    # ----------------------------------------------------------- routing

    def contains_row(self, row: bytes) -> bool:
        if self.start_key is not None and row < self.start_key:
            return False
        if self.end_key is not None and row >= self.end_key:
            return False
        return True

    def _memstore(self, family: str) -> MemStore:
        try:
            return self._memstores[family]
        except KeyError:
            raise ColumnFamilyNotFoundError(
                "family %r not declared (have %s)" % (family, self.families)
            ) from None

    # ------------------------------------------------------------ writes

    def put(self, cell: Cell) -> None:
        """Write one cell; flushes the family's memstore when full.

        With a WAL attached, the cell reaches the log *before* the
        memstore — the ordering crash recovery depends on.
        """
        if not self.contains_row(cell.row):
            raise StorageError(
                "row %r outside region range [%r, %r)"
                % (cell.row, self.start_key, self.end_key)
            )
        if self.wal is not None:
            self.wal.append(cell)
        store = self._memstore(cell.family)
        store.put(cell)
        self.write_count += 1
        self.data_seqid += 1
        if store.should_flush:
            self.flush(cell.family)

    def put_batch(self, cells: Sequence[Cell]) -> Tuple[int, int]:
        """Write many cells as one group commit.

        Equivalent to calling :meth:`put` per cell — same WAL records,
        same memstore contents, same recovery — but the whole batch
        shares ONE WAL sync boundary (:meth:`WriteAheadLog.append_batch`)
        and each family's memstore absorbs its share in one sorted merge.
        Every row is range-checked before anything is applied, matching
        :meth:`mutate_batch`'s all-or-nothing-on-validation contract.

        Returns the WAL ``(first_sequence, last_sequence)`` covering the
        batch (``(0, 0)`` with no WAL attached or an empty batch); the
        ingest tier uses it as its delta-fold watermark.  Flush checks
        run once per family after the merge, so a batch may overshoot
        the flush threshold by at most one batch — the deliberate price
        of group commit.
        """
        if not cells:
            return (0, 0)
        for cell in cells:
            if not self.contains_row(cell.row):
                raise StorageError(
                    "row %r outside region range [%r, %r)"
                    % (cell.row, self.start_key, self.end_key)
                )
            self._memstore(cell.family)  # family must exist pre-WAL
        seq_range = (0, 0)
        if self.wal is not None:
            seq_range = self.wal.append_batch(cells)
        by_family: Dict[str, List[Cell]] = {}
        for cell in cells:
            by_family.setdefault(cell.family, []).append(cell)
        for family, group in by_family.items():
            self._memstore(family).put_batch(group)
        self.write_count += len(cells)
        self.data_seqid += len(cells)
        for family in by_family:
            if self._memstores[family].should_flush:
                self.flush(family)
        return seq_range

    def delete(self, row: bytes, family: str, qualifier: bytes, timestamp: int) -> None:
        """Write a tombstone shadowing versions up to ``timestamp``."""
        self.put(
            Cell(
                row=row,
                family=family,
                qualifier=qualifier,
                timestamp=timestamp,
                is_delete=True,
            )
        )

    def flush(self, family: Optional[str] = None) -> None:
        """Freeze memstore contents into a new immutable store file.

        A *full* flush (no family argument) leaves nothing unflushed, so
        the WAL — if attached — can truncate everything logged so far.
        """
        targets = [family] if family else self.families
        for fam in targets:
            store = self._memstore(fam)
            if len(store) == 0:
                continue
            self._store_files[fam].append(StoreFile(store.snapshot()))
            store.clear()
            self.data_seqid += 1
            if (
                self.minor_compaction_threshold > 0
                and len(self._store_files[fam]) >= self.minor_compaction_threshold
            ):
                self.minor_compact(fam)
        if family is None and self.wal is not None:
            self.wal.truncate_to(self.wal.last_sequence)

    def minor_compact(self, family: str) -> None:
        """Size-tiered minor compaction: merge this family's store files
        into one run *without* dropping tombstones or old versions —
        deletes must survive until a major compaction, because an older
        shadowed put may still sit in another (future) file."""
        files = self._store_files[family]
        if len(files) <= 1:
            return
        merged = merge_sorted_runs([sf.cells() for sf in files])
        self._store_files[family] = [StoreFile(merged)]
        self.data_seqid += 1

    @classmethod
    def recover(
        cls,
        wal: "WriteAheadLog",
        families: Sequence[str],
        start_key: Optional[bytes] = None,
        end_key: Optional[bytes] = None,
        **kwargs,
    ) -> "Region":
        """Rebuild a crashed region's unflushed state by replaying its WAL.

        Only cells still in the log are replayed — flushed cells were
        truncated away and live in store files, which a real deployment
        would reopen from disk; callers re-attach them via
        :meth:`adopt_store_files`.
        """
        region = cls(
            families=families, start_key=start_key, end_key=end_key,
            wal=wal, **kwargs,
        )
        for cell in wal.replay():
            store = region._memstore(cell.family)
            store.put(cell)
            region.write_count += 1
        return region

    def adopt_store_files(self, family: str, files: List[StoreFile]) -> None:
        """Attach surviving on-disk store files during recovery."""
        self._store_files[family] = list(files) + self._store_files[family]
        self.data_seqid += 1

    def crash(self) -> int:
        """Lose the memstores, as a region-server crash does.

        Store files survive (they are \"on disk\") and the WAL survives
        (it lives on the server log / its own object) — exactly the
        durable/volatile split recovery depends on.  Returns how many
        memstore cells were dropped; the supervisor replays them from
        the WAL before the region reopens.
        """
        dropped = 0
        for store in self._memstores.values():
            dropped += len(store)
            store.clear()
        self.data_seqid += 1
        return dropped

    def replay_cells(self, cells: Sequence[Cell]) -> int:
        """Rebuild memstore state from already-logged cells (recovery).

        Unlike :meth:`put`, nothing is re-appended to the WAL — these
        cells are *from* the WAL, and logging them again would double
        them on the next replay.  No flush is triggered either; the
        supervisor decides when the recovered region flushes.  Returns
        the number of cells applied.
        """
        applied = 0
        for cell in cells:
            if not self.contains_row(cell.row):
                raise StorageError(
                    "row %r outside region range [%r, %r)"
                    % (cell.row, self.start_key, self.end_key)
                )
            self._memstore(cell.family).put(cell)
            applied += 1
        if applied:
            self.write_count += applied
            self.data_seqid += applied
        return applied

    def store_files_for(self, family: str) -> List[StoreFile]:
        """The family's live store files (scrubber access; do not mutate)."""
        return list(self._store_files[self._require_family(family)])

    def _require_family(self, family: str) -> str:
        self._memstore(family)  # raises ColumnFamilyNotFoundError
        return family

    def compact(self, family: Optional[str] = None) -> None:
        """Major compaction: merge all runs, apply tombstones, keep only
        the newest version of each cell."""
        targets = [family] if family else self.families
        for fam in targets:
            runs: List[List[Cell]] = [sf.cells() for sf in self._store_files[fam]]
            runs.append(self._memstore(fam).snapshot())
            merged = merge_sorted_runs(runs)
            survivors: List[Cell] = []
            last_coords = None
            newest_delete_ts = -1
            for cell in merged:  # newest version first per coordinates
                if self._expired(cell):
                    continue
                coords = cell.coordinates()
                if coords != last_coords:
                    last_coords = coords
                    newest_delete_ts = -1
                if cell.is_delete:
                    newest_delete_ts = max(newest_delete_ts, cell.timestamp)
                    continue
                if cell.timestamp <= newest_delete_ts:
                    continue
                if survivors and survivors[-1].coordinates() == coords:
                    continue  # older version of an already-kept cell
                survivors.append(cell)
            self._memstore(fam).clear()
            self._store_files[fam] = [StoreFile(survivors)] if survivors else []
            self.data_seqid += 1

    # ------------------------------------------------------------- reads

    def set_ttl_cutoff(self, family: str, cutoff_ts: int) -> None:
        """Expire every cell of ``family`` older than ``cutoff_ts``.

        Reads become TTL-aware immediately; storage is reclaimed at the
        next major compaction.
        """
        self._memstore(family)  # validates the family
        previous = self._ttl_cutoff.get(family, 0)
        self._ttl_cutoff[family] = max(previous, cutoff_ts)
        if self._ttl_cutoff[family] != previous:
            self.data_seqid += 1

    def _expired(self, cell: Cell) -> bool:
        return cell.timestamp < self._ttl_cutoff.get(cell.family, 0)

    def get(self, row: bytes, family: str, qualifier: bytes) -> Optional[bytes]:
        """Latest live value of one cell, or None."""
        best: Optional[Cell] = None
        delete_ts = -1
        for cell in self._iter_row(row, family):
            if cell.qualifier != qualifier or self._expired(cell):
                continue
            if cell.is_delete:
                delete_ts = max(delete_ts, cell.timestamp)
            elif best is None or cell.timestamp > best.timestamp:
                best = cell
        if best is None or best.timestamp <= delete_ts:
            return None
        return best.value

    def get_row(self, row: bytes, family: str) -> Dict[bytes, bytes]:
        """All live qualifiers of a row in a family, newest versions."""
        newest: Dict[bytes, Cell] = {}
        deletes: Dict[bytes, int] = {}
        for cell in self._iter_row(row, family):
            if self._expired(cell):
                continue
            if cell.is_delete:
                prev = deletes.get(cell.qualifier, -1)
                deletes[cell.qualifier] = max(prev, cell.timestamp)
            else:
                kept = newest.get(cell.qualifier)
                if kept is None or cell.timestamp > kept.timestamp:
                    newest[cell.qualifier] = cell
        return {
            q: c.value
            for q, c in newest.items()
            if c.timestamp > deletes.get(q, -1)
        }

    def get_versions(
        self,
        row: bytes,
        family: str,
        qualifier: bytes,
        max_versions: int = 3,
        min_ts: Optional[int] = None,
        max_ts: Optional[int] = None,
    ) -> List[Cell]:
        """Up to ``max_versions`` live versions of one cell, newest
        first, optionally restricted to versions in ``[min_ts, max_ts)``
        (HBase's ``Get.setMaxVersions`` + ``setTimeRange``)."""
        if max_versions < 1:
            raise StorageError("max_versions must be >= 1")
        delete_ts = -1
        versions: List[Cell] = []
        for cell in self._iter_row(row, family):
            if cell.qualifier != qualifier or self._expired(cell):
                continue
            if cell.is_delete:
                delete_ts = max(delete_ts, cell.timestamp)
            else:
                versions.append(cell)
        versions = [c for c in versions if c.timestamp > delete_ts]
        if min_ts is not None:
            versions = [c for c in versions if c.timestamp >= min_ts]
        if max_ts is not None:
            versions = [c for c in versions if c.timestamp < max_ts]
        # Newest first; drop duplicate timestamps (same-version rewrite).
        versions.sort(key=lambda c: -c.timestamp)
        deduped: List[Cell] = []
        for cell in versions:
            if deduped and deduped[-1].timestamp == cell.timestamp:
                continue
            deduped.append(cell)
        return deduped[:max_versions]

    def check_and_put(
        self,
        row: bytes,
        family: str,
        qualifier: bytes,
        expected: Optional[bytes],
        cell: Cell,
    ) -> bool:
        """Atomic conditional write (HBase's ``checkAndPut``).

        Applies ``cell`` only if the current value of
        ``(row, family, qualifier)`` equals ``expected`` (``None`` means
        "the cell must not exist").  Returns whether the put happened.
        The in-process store is single-writer per region, so read-then-
        write here is atomic by construction.
        """
        current = self.get(row, family, qualifier)
        if current != expected:
            return False
        self.put(cell)
        return True

    def mutate_batch(self, cells: Sequence[Cell]) -> int:
        """Apply a batch of puts as one unit (HBase's ``batch``).

        All-or-nothing against *validation*: every cell is range-checked
        before any write is applied, so a bad row key cannot leave the
        batch half-applied.  Returns the number of cells written.
        """
        for cell in cells:
            if not self.contains_row(cell.row):
                raise StorageError(
                    "row %r outside region range [%r, %r)"
                    % (cell.row, self.start_key, self.end_key)
                )
        for cell in cells:
            self.put(cell)
        return len(cells)

    def _iter_row(self, row: bytes, family: str) -> Iterator[Cell]:
        from .bytes_util import next_prefix

        stop = next_prefix(row)
        stop_row = stop if stop else None
        store = self._memstore(family)
        yield from (c for c in store.scan(row, stop_row) if c.row == row)
        for sf in self._store_files[family]:
            if not sf.may_contain_row(row):
                continue
            yield from (c for c in sf.scan(row, stop_row) if c.row == row)

    def scan(
        self,
        family: str,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
        scan_filter: Optional[ScanFilter] = None,
    ) -> Iterator[Cell]:
        """Merged, filtered scan over ``[start_row, stop_row)``.

        Emits only the newest live version of each cell, in KeyValue
        order, after applying the filter — the same contract a region
        server gives its scanners.
        """
        self.scans_served += 1
        if scan_filter is not None:
            f_start, f_stop = scan_filter.row_range()
            if f_start is not None and (start_row is None or f_start > start_row):
                start_row = f_start
            if f_stop is not None and (stop_row is None or f_stop < stop_row):
                stop_row = f_stop
        # Clamp to the region's own range.
        if self.start_key is not None and (
            start_row is None or start_row < self.start_key
        ):
            start_row = self.start_key
        if self.end_key is not None and (stop_row is None or stop_row > self.end_key):
            stop_row = self.end_key

        # Lazy k-way merge over the live iterators — no run is ever
        # materialized; cells stream through dedup/tombstone/filter
        # logic straight to the caller.  Reverse so that memstore
        # (newest) is the *last* run and wins merge ties;
        # iter_merge_sorted_runs prefers later runs on ties.
        runs = [
            sf.scan(start_row, stop_row)
            for sf in self._store_files[family]
            if sf.overlaps_range(start_row, stop_row)
        ]
        runs.reverse()
        runs.append(self._memstore(family).scan(start_row, stop_row))
        merged = iter_merge_sorted_runs(runs)

        # Dedup/tombstone state is tracked with three scalars instead of
        # a coordinates() tuple per cell: the row comparison short-
        # circuits almost every iteration on row-unique workloads.
        ttl = self._ttl_cutoff
        check_ttl = bool(ttl)
        last_row = last_family = last_qualifier = None
        delete_ts = -1
        emitted = False
        for cell in merged:
            if check_ttl and cell.timestamp < ttl.get(cell.family, 0):
                continue
            if (
                cell.row != last_row
                or cell.qualifier != last_qualifier
                or cell.family != last_family
            ):
                last_row = cell.row
                last_family = cell.family
                last_qualifier = cell.qualifier
                delete_ts = -1
                emitted = False
            else:
                emitted = True
            if cell.is_delete:
                delete_ts = max(delete_ts, cell.timestamp)
                continue
            if emitted or cell.timestamp <= delete_ts:
                continue
            if scan_filter is not None and not scan_filter.accept(cell):
                # Newest version rejected by filter: do not fall back to
                # older versions — they are shadowed.
                continue
            yield cell

    # ------------------------------------------------------------ sizing

    def approx_rows(self, family: str) -> int:
        """Approximate live-cell count (pre-compaction upper bound)."""
        total = len(self._memstore(family))
        total += sum(len(sf) for sf in self._store_files[family])
        return total

    def store_file_count(self, family: str) -> int:
        return len(self._store_files[family])

    def __repr__(self) -> str:
        return "Region(id=%d, range=[%r, %r))" % (
            self.region_id,
            self.start_key,
            self.end_key,
        )
