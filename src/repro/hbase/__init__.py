"""An in-process reproduction of the HBase storage model.

MoDisSENSE keeps its write-heavy repositories (social graph, texts,
visits, GPS traces) in HBase and answers personalized queries through
region **coprocessors** (paper Sections 2.1–2.2).  This package rebuilds
the pieces of HBase those designs depend on:

- byte-ordered row keys with composite-key helpers (:mod:`bytes_util`);
- versioned cells in column families (:mod:`cell`);
- an LSM write path: sorted memstore, immutable store files, flush and
  compaction (:mod:`memstore`, :mod:`hfile`, :mod:`region`);
- range-partitioned regions with pre-splitting and scans with
  server-side filters (:mod:`region`, :mod:`table`, :mod:`filters`);
- coprocessor endpoints that execute aggregation inside each region
  (:mod:`coprocessor`);
- a cluster-level client that fans coprocessor calls out across regions
  in parallel and accounts their simulated cost (:mod:`client`).
"""

from .bytes_util import (
    encode_int,
    decode_int,
    encode_int_desc,
    decode_int_desc,
    compose_key,
    split_key,
    next_prefix,
)
from .cell import Cell
from .memstore import MemStore
from .hfile import StoreFile
from .filters import (
    ScanFilter,
    PrefixFilter,
    RowRangeFilter,
    ColumnFilter,
    ValuePredicateFilter,
    TimestampRangeFilter,
    AndFilter,
)
from .region import Region
from .wal import RegionWALHandle, ServerWAL, WriteAheadLog, WALRecord
from .table import HTable, TableDescriptor
from .cancellation import CancellationToken
from .coprocessor import Coprocessor, CoprocessorContext, CorruptPartial
from .cache import RegionScanCache
from .client import HBaseCluster, CoprocessorCallResult

__all__ = [
    "encode_int",
    "decode_int",
    "encode_int_desc",
    "decode_int_desc",
    "compose_key",
    "split_key",
    "next_prefix",
    "Cell",
    "MemStore",
    "StoreFile",
    "ScanFilter",
    "PrefixFilter",
    "RowRangeFilter",
    "ColumnFilter",
    "ValuePredicateFilter",
    "TimestampRangeFilter",
    "AndFilter",
    "Region",
    "WriteAheadLog",
    "WALRecord",
    "ServerWAL",
    "RegionWALHandle",
    "HTable",
    "TableDescriptor",
    "CancellationToken",
    "Coprocessor",
    "CoprocessorContext",
    "CorruptPartial",
    "RegionScanCache",
    "HBaseCluster",
    "CoprocessorCallResult",
]
