"""Region coprocessors.

The paper's key query optimization (Section 2.2): "Each coprocessor is
responsible for a region of the Visit Repository table ... multiple get
requests are issued in parallel.  Increasing the regions number leads to
increase in coprocessors number and thus achieves higher degree of
parallelism within a single query."

A :class:`Coprocessor` is an endpoint deployed on a table.  When the
client invokes it, every region runs the endpoint *locally* against its
own data through a :class:`CoprocessorContext`, and the client merges the
per-region partial results.  The context records how many records the
endpoint touched, which feeds the cluster cost model.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..errors import CoprocessorError
from .cell import Cell
from .filters import ScanFilter
from .region import Region


class _NoopStage:
    """Stage-span stand-in when no tracer was propagated: accepts tags,
    records nothing.  Keeps ``hbase`` free of a ``core`` import."""

    __slots__ = ()

    def tag(self, key: str, value: Any) -> "_NoopStage":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_STAGE = _NoopStage()


class CorruptPartial:
    """Marker the fault injector substitutes for a region's partial
    result to model a wire-corrupted response.  Any coprocessor's
    :meth:`Coprocessor.validate_partial` rejects it, which routes the
    invocation through the retry/hedge machinery like a raised error.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any = None) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CorruptPartial(...)"


class StreamingPartial:
    """Marker base for partials that are *streams*, not finished lists.

    An endpoint whose region-side work is complete but whose emission is
    incremental (the top-k path: score-sorted batches plus an upper
    bound on the unemitted rest) returns a ``StreamingPartial`` subclass
    from :meth:`Coprocessor.run`.  The fan-out engine detects the marker
    and, instead of the plain list merge, drives the endpoint's
    :meth:`Coprocessor.stream_merge` *before* building per-region cost
    tasks, so only the items a stream actually shipped are charged to
    the web tier's merge cost.

    Subclasses must expose: ``region_id``, ``shipped`` (items that
    crossed the wire), ``cells_decoded``, ``cells_avoided``, ``pruned``
    (terminated complete-by-proof), ``aborted`` (terminated by
    deadline), and ``finished``.
    """

    __slots__ = ()


class CoprocessorContext:
    """Region-local view handed to a coprocessor endpoint.

    Wraps the region's read API and counts touched records so the
    simulation can charge the invocation's cost precisely.
    """

    def __init__(
        self,
        region: Region,
        tracer: Optional[Any] = None,
        span: Optional[Any] = None,
        cache: Optional[Any] = None,
        cancellation: Optional[Any] = None,
    ) -> None:
        self._region = region
        self.records_scanned = 0
        #: Per-query :class:`~repro.hbase.cancellation.CancellationToken`
        #: (None on the default path).  Endpoints with long scan loops
        #: should probe it every ``cancellation.check_every`` cells via
        #: :meth:`checkpoint`; a tripped token raises
        #: :class:`~repro.errors.QueryCancelled` mid-scan.
        self.cancellation = cancellation
        #: Region scan cache (see :mod:`repro.hbase.cache`) this
        #: invocation may consult; None on the uncached path and for
        #: any invocation the fault injector touched — a faulted run
        #: must neither serve nor populate cached partials.
        self.cache = cache
        #: Free-form endpoint counters (e.g. ``cells_decoded``); the
        #: client sums them across regions into the call result so a
        #: query's work profile is observable end to end.
        self.counters: Dict[str, int] = {}
        #: Trace context propagated from the client (see
        #: ``repro.core.tracing``): ``span`` is this invocation's
        #: region-level span, and :meth:`trace` opens stage spans under
        #: it.  Both default to the no-op path.
        self._tracer = tracer
        self.span = span

    def count(self, name: str, amount: int = 1) -> None:
        """Bump an endpoint-defined counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def checkpoint(self, records: int, extra_ms: float = 0.0) -> None:
        """Probe this query's cancellation token (no-op when none was
        propagated).  ``records`` is the endpoint's own cells-touched
        tally — the simulated-spend basis for deadline enforcement."""
        if self.cancellation is not None:
            self.cancellation.checkpoint(records, extra_ms)

    def trace(self, name: str, **tags: Any):
        """Open a stage span under this invocation's region span.

        Returns a context-manager span; with tracing disabled it is the
        shared no-op span, so endpoints can instrument stages without
        checking whether tracing is on.
        """
        if self._tracer is None:
            return _NOOP_STAGE
        return self._tracer.span(name, parent=self.span, **tags)

    @property
    def region_id(self) -> int:
        return self._region.region_id

    @property
    def data_seqid(self) -> int:
        """The region's current data sequence id.  Endpoints capture it
        *before* a scan and stamp cache entries with it, so any write
        racing with the scan invalidates the entry."""
        return self._region.data_seqid

    @property
    def start_key(self) -> Optional[bytes]:
        return self._region.start_key

    @property
    def end_key(self) -> Optional[bytes]:
        return self._region.end_key

    def get(self, row: bytes, family: str, qualifier: bytes) -> Optional[bytes]:
        """Region-local point get."""
        self.records_scanned += 1
        return self._region.get(row, family, qualifier)

    def get_row(self, row: bytes, family: str) -> Dict[bytes, bytes]:
        """Region-local whole-row get."""
        values = self._region.get_row(row, family)
        self.records_scanned += max(1, len(values))
        return values

    def scan(
        self,
        family: str,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
        scan_filter: Optional[ScanFilter] = None,
    ) -> Iterator[Cell]:
        """Region-local filtered scan; every emitted cell is counted."""
        for cell in self._region.scan(family, start_row, stop_row, scan_filter):
            self.records_scanned += 1
            yield cell

    def scan_uncounted(
        self,
        family: str,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
        scan_filter: Optional[ScanFilter] = None,
    ) -> Iterator[Cell]:
        """Region-local scan without the per-cell counting wrapper.

        Hot-path escape hatch: the endpoint's own loop touches every
        cell anyway, so it can tally locally and report once via
        :meth:`add_scanned` instead of paying an extra generator frame
        per cell.  Callers MUST report, or the cost model undercharges.
        """
        return self._region.scan(family, start_row, stop_row, scan_filter)

    def add_scanned(self, count: int) -> None:
        """Report cells consumed through :meth:`scan_uncounted`."""
        self.records_scanned += count

    def contains_row(self, row: bytes) -> bool:
        """True if this region owns ``row`` — endpoints use it to skip
        get requests for keys another region serves."""
        return self._region.contains_row(row)


class Coprocessor:
    """Base class for endpoint coprocessors.

    Subclasses implement :meth:`run`, which receives the region context
    plus the caller's request object and returns a serializable partial
    result.  The client merges partials with :meth:`merge`.
    """

    name = "coprocessor"

    def run(self, context: CoprocessorContext, request: Any) -> Any:
        """Execute region-locally.  Must be overridden."""
        raise CoprocessorError(
            "%s does not implement run()" % type(self).__name__
        )

    def merge(self, partials: List[Any]) -> Any:
        """Combine per-region partial results (default: concatenate lists)."""
        merged: List[Any] = []
        for partial in partials:
            if partial:
                merged.extend(partial)
        return merged

    def stream_merge(
        self, streams: List[Any], deadline_token: Optional[Any] = None
    ) -> Any:
        """Merge :class:`StreamingPartial` results incrementally.

        Called by the fan-out engine (instead of :meth:`merge`) when
        region invocations returned streaming partials.  Endpoints that
        emit streams must override this; the base class has no streaming
        protocol.
        """
        raise CoprocessorError(
            "%s returned StreamingPartial results but does not "
            "implement stream_merge()" % type(self).__name__
        )

    def validate_partial(self, partial: Any) -> bool:
        """Sanity-check one region's partial before accepting it.

        The resilient fan-out calls this only when a fault injector is
        armed; an invalid partial is treated exactly like a raised
        region error (retry, then hedge, then degrade).  The base check
        rejects the injector's corruption marker; endpoints with a known
        partial shape should also verify structure.
        """
        return not isinstance(partial, CorruptPartial)
