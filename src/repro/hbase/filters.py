"""Server-side scan filters.

HBase pushes filters to the region server so network traffic only carries
qualifying cells; the coprocessor-based query path in the paper leans on
the same idea ("eliminates the visits that do not satisfy the user
defined criteria" inside each region).  Filters here mirror the common
HBase filter classes the platform needs.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .bytes_util import next_prefix
from .cell import Cell


class ScanFilter:
    """Base filter: accepts every cell and never narrows the scan range."""

    def accept(self, cell: Cell) -> bool:
        """Return True if the cell should be emitted."""
        return True

    def row_range(self) -> tuple:
        """Optional ``(start_row, stop_row)`` narrowing the scan.

        ``None`` in either slot means unbounded on that side.  The region
        intersects this with the caller's explicit range, letting a
        prefix filter turn a full scan into a short range scan.
        """
        return (None, None)


class PrefixFilter(ScanFilter):
    """Rows starting with a fixed byte prefix."""

    def __init__(self, prefix: bytes) -> None:
        self._prefix = prefix

    def accept(self, cell: Cell) -> bool:
        return cell.row.startswith(self._prefix)

    def row_range(self) -> tuple:
        stop = next_prefix(self._prefix)
        return (self._prefix, stop if stop else None)


class RowRangeFilter(ScanFilter):
    """Rows in ``[start_row, stop_row)``."""

    def __init__(
        self, start_row: Optional[bytes], stop_row: Optional[bytes]
    ) -> None:
        self._start = start_row
        self._stop = stop_row

    def accept(self, cell: Cell) -> bool:
        if self._start is not None and cell.row < self._start:
            return False
        if self._stop is not None and cell.row >= self._stop:
            return False
        return True

    def row_range(self) -> tuple:
        return (self._start, self._stop)


class ColumnFilter(ScanFilter):
    """Cells from a given family (and optionally one qualifier)."""

    def __init__(self, family: str, qualifier: Optional[bytes] = None) -> None:
        self._family = family
        self._qualifier = qualifier

    def accept(self, cell: Cell) -> bool:
        if cell.family != self._family:
            return False
        if self._qualifier is not None and cell.qualifier != self._qualifier:
            return False
        return True


class ValuePredicateFilter(ScanFilter):
    """Cells whose decoded value satisfies an arbitrary predicate.

    The predicate receives the raw value bytes; decoding stays the
    caller's business so the filter makes no serialization assumptions.
    """

    def __init__(self, predicate: Callable) -> None:
        self._predicate = predicate

    def accept(self, cell: Cell) -> bool:
        return bool(self._predicate(cell.value))


class TimestampRangeFilter(ScanFilter):
    """Cells whose version timestamp falls in ``[min_ts, max_ts)``."""

    def __init__(self, min_ts: Optional[int], max_ts: Optional[int]) -> None:
        self._min = min_ts
        self._max = max_ts

    def accept(self, cell: Cell) -> bool:
        if self._min is not None and cell.timestamp < self._min:
            return False
        if self._max is not None and cell.timestamp >= self._max:
            return False
        return True


class AndFilter(ScanFilter):
    """Conjunction of filters; the row range is the ranges' intersection."""

    def __init__(self, filters: Sequence[ScanFilter]) -> None:
        self._filters = list(filters)

    def accept(self, cell: Cell) -> bool:
        return all(f.accept(cell) for f in self._filters)

    def row_range(self) -> tuple:
        start, stop = None, None
        for f in self._filters:
            f_start, f_stop = f.row_range()
            if f_start is not None and (start is None or f_start > start):
                start = f_start
            if f_stop is not None and (stop is None or f_stop < stop):
                stop = f_stop
        return (start, stop)
