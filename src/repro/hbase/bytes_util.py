"""Row-key byte encoding.

HBase orders rows lexicographically by raw bytes, so every key the
platform composes must sort correctly *as bytes*.  These helpers encode
integers big-endian (so numeric order equals byte order), support
descending order for newest-first time indexes, and compose/split the
multi-part keys the repositories use (``user␟timestamp␟poi`` and
friends).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ValidationError

#: Separator for composite keys.  0x1F (unit separator) never appears in
#: the platform's identifier alphabet, so splits are unambiguous.
KEY_SEPARATOR = b"\x1f"

_INT_WIDTH = 8
_INT_MAX = (1 << (8 * _INT_WIDTH)) - 1


def encode_int(value: int, width: int = _INT_WIDTH) -> bytes:
    """Encode a non-negative int as fixed-width big-endian bytes.

    Fixed width + big-endian makes byte order equal numeric order, which
    row-range scans over timestamps depend on.
    """
    if value < 0:
        raise ValidationError("cannot byte-encode negative int %r" % value)
    try:
        return value.to_bytes(width, "big")
    except OverflowError:
        raise ValidationError(
            "%r does not fit in %d bytes" % (value, width)
        ) from None


def decode_int(data: bytes) -> int:
    """Inverse of :func:`encode_int`."""
    return int.from_bytes(data, "big")


def encode_int_desc(value: int, width: int = _INT_WIDTH) -> bytes:
    """Encode an int so that *larger* values sort *first*.

    Used for newest-first time indexes: scanning forward returns the most
    recent visits, matching the trending-events access pattern.
    """
    if value < 0:
        raise ValidationError("cannot byte-encode negative int %r" % value)
    max_for_width = (1 << (8 * width)) - 1
    if value > max_for_width:
        raise ValidationError("%r does not fit in %d bytes" % (value, width))
    return (max_for_width - value).to_bytes(width, "big")


def decode_int_desc(data: bytes) -> int:
    """Inverse of :func:`encode_int_desc`."""
    max_for_width = (1 << (8 * len(data))) - 1
    return max_for_width - int.from_bytes(data, "big")


def compose_key(*parts) -> bytes:
    """Join key parts with the separator byte.

    Parts may be ``bytes`` (used verbatim) or ``str`` (UTF-8 encoded).
    Integer parts must be pre-encoded by the caller — implicit encoding
    would hide the fixed-width decision that makes ordering correct.
    """
    encoded: List[bytes] = []
    for part in parts:
        if isinstance(part, bytes):
            encoded.append(part)
        elif isinstance(part, str):
            encoded.append(part.encode("utf-8"))
        else:
            raise ValidationError(
                "key parts must be bytes or str, got %r" % type(part).__name__
            )
    return KEY_SEPARATOR.join(encoded)


def split_key(key: bytes) -> List[bytes]:
    """Split a composite key back into its parts."""
    return key.split(KEY_SEPARATOR)


def next_prefix(prefix: bytes) -> bytes:
    """Smallest byte string greater than every string with this prefix.

    Classic HBase prefix-scan trick: scan ``[prefix, next_prefix(prefix))``.
    Returns ``b""`` (meaning "no upper bound") if the prefix is all 0xFF.
    """
    data = bytearray(prefix)
    while data:
        if data[-1] != 0xFF:
            data[-1] += 1
            return bytes(data)
        data.pop()
    return b""


def uniform_split_points(num_regions: int, width: int = 2) -> List[bytes]:
    """Split points that cut the key space into ``num_regions`` uniform
    byte ranges — the equivalent of HBase's pre-splitting at creation.

    The points are ``width``-byte prefixes; row keys that should spread
    across regions (e.g. hashed user prefixes) start with bytes drawn
    uniformly from the same space.
    """
    if num_regions < 1:
        raise ValidationError("num_regions must be >= 1")
    space = 1 << (8 * width)
    return [
        encode_int(space * i // num_regions, width)
        for i in range(1, num_regions)
    ]


def salt_for(identifier: int, width: int = 2) -> bytes:
    """Deterministic key salt spreading an id uniformly over regions.

    A Fibonacci-hash of the id, truncated to ``width`` bytes.  Salting
    the row key's first bytes is how the Visits table keeps every region
    busy during a multi-friend query (paper Section 2.2).
    """
    h = (identifier * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    return encode_int(h >> (64 - 8 * width), width)
