"""Immutable sorted store files — the on-disk half of the LSM tree.

Store files carry per-block CRC32 checksums (blocks of
:data:`BLOCK_CELLS` cells, as HFile checksums 64 KB chunks): every scan
verifies the blocks it touches before serving a single cell, so a
rotted block raises :class:`~repro.errors.ChecksumError` instead of
silently returning wrong bytes.  The scheduled scrubber uses
:meth:`StoreFile.verify` to find corrupt blocks proactively and either
rebuilds them from the WAL archive (:meth:`StoreFile.rebuild_block`,
accepted only when the rebuilt bytes reproduce the original checksum)
or quarantines them (:meth:`StoreFile.quarantine_block`) so reads
degrade loudly rather than lie.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass

import bisect
import heapq
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ChecksumError, StorageError
from .cell import Cell

#: Cells per checksummed block.  Small enough that a single flipped bit
#: quarantines little data, large enough that checksum bookkeeping is
#: negligible next to the cells themselves.
BLOCK_CELLS = 64


def _cell_payload(cell: Cell) -> bytes:
    return b"|".join(
        (
            cell.row,
            cell.family.encode("utf-8"),
            cell.qualifier,
            str(cell.timestamp).encode("ascii"),
            cell.value,
            b"1" if cell.is_delete else b"0",
        )
    )


def _block_crc(cells: Sequence[Cell]) -> int:
    crc = 0
    for cell in cells:
        crc = zlib.crc32(_cell_payload(cell), crc)
    return crc


@dataclass
class _Block:
    """Checksum metadata for one run of cells inside a store file."""

    lo: int            # index of the block's first cell in _cells
    count: int         # cells in the block
    crc: int           # CRC32 over the cells' payloads at write time
    first_key: tuple   # sort_key of the first cell
    last_key: tuple    # sort_key of the last cell
    verified: bool = False     # lazily set by the first read that checks
    quarantined: bool = False  # scrubber gave up: serve loud errors


class _BloomFilter:
    """A small row-key Bloom filter, as HFiles carry.

    Sized for ~1% false positives at the construction cardinality; lets
    point gets skip files that cannot contain the row.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes")

    def __init__(self, expected_items: int) -> None:
        expected_items = max(1, expected_items)
        # ~9.6 bits/key gives ~1% FP with 7 hash functions.
        self._num_bits = max(64, expected_items * 10)
        self._num_hashes = 7
        self._bits = bytearray((self._num_bits + 7) // 8)

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = hash(key)
        h2 = hash(key + b"\x00salt")
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )


class StoreFile:
    """An immutable, sorted run of cells produced by a memstore flush.

    Carries a row-key Bloom filter and first/last row metadata so the
    read path can skip irrelevant files, exactly as HFile does.
    """

    _next_id = 0

    def __init__(self, cells: Sequence[Cell],
                 block_cells: int = BLOCK_CELLS) -> None:
        if block_cells < 1:
            raise StorageError("block_cells must be >= 1")
        cells = list(cells)
        keys = [c.sort_key() for c in cells]
        if keys != sorted(keys):
            raise StorageError("store file cells must arrive sorted")
        self._cells: List[Cell] = cells
        self._keys = keys
        self._bloom = _BloomFilter(len(cells))
        for cell in cells:
            self._bloom.add(cell.row)
        self.first_row: Optional[bytes] = cells[0].row if cells else None
        self.last_row: Optional[bytes] = cells[-1].row if cells else None
        self._block_cells = block_cells
        self._blocks: List[_Block] = []
        for lo in range(0, len(cells), block_cells):
            chunk = cells[lo : lo + block_cells]
            self._blocks.append(
                _Block(lo=lo, count=len(chunk), crc=_block_crc(chunk),
                       first_key=keys[lo], last_key=keys[lo + len(chunk) - 1])
            )
        StoreFile._next_id += 1
        self.file_id = StoreFile._next_id

    # -- checksum machinery ----------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def block_ranges(self) -> List[Tuple[tuple, tuple]]:
        """``(first_key, last_key)`` of every block, in file order."""
        return [(b.first_key, b.last_key) for b in self._blocks]

    def _block_ok(self, block: _Block) -> bool:
        cells = self._cells[block.lo : block.lo + block.count]
        return len(cells) == block.count and _block_crc(cells) == block.crc

    def _check_block(self, block: _Block) -> None:
        """Verify one block before its cells are served (memoized)."""
        if block.quarantined:
            raise ChecksumError(
                "store file %d: block at cell %d is quarantined"
                % (self.file_id, block.lo)
            )
        if block.verified:
            return
        if not self._block_ok(block):
            raise ChecksumError(
                "store file %d: block at cell %d failed checksum"
                % (self.file_id, block.lo)
            )
        block.verified = True

    def _check_span(self, lo: int, hi: int) -> None:
        """Verify every block overlapping the cell index span [lo, hi).

        A span reaching the current end of the file also verifies the
        final block even when its cells are gone — a torn tail shrinks
        ``_cells``, and an end-of-file scan must fail loudly rather than
        silently return a shortened file.
        """
        if lo >= hi:
            return
        first = lo // self._block_cells
        if hi >= len(self._cells):
            last = len(self._blocks) - 1
        else:
            last = (hi - 1) // self._block_cells
        for block in self._blocks[first : last + 1]:
            self._check_block(block)

    def verify(self) -> List[int]:
        """Scrub pass: re-checksum every block, returning corrupt indices.

        Unlike the read path this never raises — the scrubber wants the
        full damage report, not the first failure.  Quarantined blocks
        are reported too (they are still corrupt; they are just already
        known to be).  Intact blocks are memoized as verified so later
        reads skip the re-hash.
        """
        corrupt = []
        for i, block in enumerate(self._blocks):
            if block.quarantined or not self._block_ok(block):
                block.verified = False
                corrupt.append(i)
            else:
                block.verified = True
        return corrupt

    def rebuild_block(self, index: int, cells: Sequence[Cell]) -> bool:
        """Replace a corrupt block with ``cells`` rebuilt from the WAL.

        The repair is accepted only when the rebuilt run reproduces the
        checksum recorded at write time — a wrong or partial candidate
        set can therefore never be installed as a \"repair\".  Returns
        ``True`` on success.
        """
        block = self._blocks[index]
        cells = list(cells)
        if len(cells) != block.count or _block_crc(cells) != block.crc:
            return False
        self._cells[block.lo : block.lo + block.count] = cells
        self._keys[block.lo : block.lo + block.count] = [
            c.sort_key() for c in cells
        ]
        block.verified = True
        block.quarantined = False
        return True

    def quarantine_block(self, index: int) -> None:
        """Mark an unrepairable block: reads touching it fail loudly."""
        block = self._blocks[index]
        block.quarantined = True
        block.verified = False

    # -- corruption injection (testing / fault injector) ------------------

    def corrupt_block(self, index: int) -> None:
        """Flip bits in one cell of a block, leaving the checksum stale.

        The damaged cell is a *copy* with its value bit-flipped — the
        original ``Cell`` object is never mutated, because WAL records
        may hold the same object and the WAL must stay an intact repair
        source.
        """
        block = self._blocks[index]
        victim = self._cells[block.lo]
        flipped = bytes(b ^ 0xFF for b in victim.value) or b"\xff"
        self._cells[block.lo] = dataclasses.replace(victim, value=flipped)
        block.verified = False

    def tear_tail(self, drop: int = 1) -> int:
        """Truncate the file mid-block (a torn write): drop final cells.

        The last block's recorded count/CRC no longer match, so reads
        of that block fail checksum until the scrubber repairs it from
        the WAL.  Returns how many cells were dropped.
        """
        if not self._cells:
            return 0
        drop = min(drop, len(self._cells))
        del self._cells[len(self._cells) - drop :]
        del self._keys[len(self._keys) - drop :]
        if self._blocks:
            self._blocks[-1].verified = False
        return drop

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return sum(c.approx_size() for c in self._cells)

    def may_contain_row(self, row: bytes) -> bool:
        """Cheap pre-check combining key-range and Bloom filter."""
        if self.first_row is None:
            return False
        if row < self.first_row or (self.last_row is not None and row > self.last_row):
            return False
        return self._bloom.might_contain(row)

    def overlaps_range(
        self, start_row: Optional[bytes], stop_row: Optional[bytes]
    ) -> bool:
        if self.first_row is None:
            return False
        if stop_row is not None and self.first_row >= stop_row:
            return False
        if start_row is not None and self.last_row is not None:
            if self.last_row < start_row:
                return False
        return True

    def scan(
        self,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in order.

        Both range ends resolve by binary search on the precomputed key
        list, so the inner loop carries no per-cell stop comparison.
        Every block the range touches is checksum-verified (memoized)
        before the first cell is yielded; a corrupt or quarantined block
        raises :class:`~repro.errors.ChecksumError` up front rather than
        serving damaged bytes.
        """
        if not self.overlaps_range(start_row, stop_row):
            return iter(())
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._keys, (start_row,))
        hi = len(self._cells)
        if stop_row is not None:
            hi = bisect.bisect_left(self._keys, (stop_row,), lo)
        self._check_span(lo, hi)
        if lo == 0 and hi == len(self._cells):
            return iter(self._cells)
        return iter(self._cells[lo:hi])

    def cells(self) -> List[Cell]:
        self._check_span(0, len(self._cells))
        return list(self._cells)


def iter_merge_sorted_runs(runs: Sequence[Iterable[Cell]]) -> Iterator[Cell]:
    """Lazy k-way merge of sorted cell runs into one sorted stream.

    Duplicate coordinates+timestamp collapse to the cell from the
    *latest* run (later runs are newer).  Sort keys are computed once
    per cell and carried through the heap; the last emitted key is kept
    instead of re-derived, so each cell costs exactly one ``sort_key()``
    call regardless of how often it is compared.
    """
    iters = [iter(run) for run in runs]
    live = []
    for run_idx, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            live.append((first, run_idx, it))

    if not live:
        return
    if len(live) == 1:
        # Single-run fast path (the common case for a freshly-ingested
        # region: memstore only, nothing flushed yet).  No dedup needed:
        # same-key rewrites collapse inside the memstore and inside
        # compaction output, so duplicates only arise *across* runs.
        cell, _run_idx, it = live[0]
        yield cell
        yield from it
        return

    heap = []
    for cell, run_idx, it in live:
        # Later runs win ties -> use negative run index in the key.
        heap.append((cell.sort_key(), -run_idx, cell, it))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    last_key = None
    while heap:
        key, tie, cell, it = pop(heap)
        if key != last_key:
            yield cell
            last_key = key
        # else: same coordinates+version — the earlier-popped (newer
        # run, because of the tie-break) cell already won.
        nxt = next(it, None)
        if nxt is not None:
            push(heap, (nxt.sort_key(), tie, nxt, it))


def merge_sorted_runs(runs: Sequence[Sequence[Cell]]) -> List[Cell]:
    """Materialized k-way merge (compaction's contract); see
    :func:`iter_merge_sorted_runs` for the streaming form."""
    return list(iter_merge_sorted_runs(runs))
