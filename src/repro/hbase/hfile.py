"""Immutable sorted store files — the on-disk half of the LSM tree."""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence

from ..errors import StorageError
from .cell import Cell


class _BloomFilter:
    """A small row-key Bloom filter, as HFiles carry.

    Sized for ~1% false positives at the construction cardinality; lets
    point gets skip files that cannot contain the row.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes")

    def __init__(self, expected_items: int) -> None:
        expected_items = max(1, expected_items)
        # ~9.6 bits/key gives ~1% FP with 7 hash functions.
        self._num_bits = max(64, expected_items * 10)
        self._num_hashes = 7
        self._bits = bytearray((self._num_bits + 7) // 8)

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = hash(key)
        h2 = hash(key + b"\x00salt")
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )


class StoreFile:
    """An immutable, sorted run of cells produced by a memstore flush.

    Carries a row-key Bloom filter and first/last row metadata so the
    read path can skip irrelevant files, exactly as HFile does.
    """

    _next_id = 0

    def __init__(self, cells: Sequence[Cell]) -> None:
        cells = list(cells)
        keys = [c.sort_key() for c in cells]
        if keys != sorted(keys):
            raise StorageError("store file cells must arrive sorted")
        self._cells: List[Cell] = cells
        self._keys = keys
        self._bloom = _BloomFilter(len(cells))
        for cell in cells:
            self._bloom.add(cell.row)
        self.first_row: Optional[bytes] = cells[0].row if cells else None
        self.last_row: Optional[bytes] = cells[-1].row if cells else None
        StoreFile._next_id += 1
        self.file_id = StoreFile._next_id

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return sum(c.approx_size() for c in self._cells)

    def may_contain_row(self, row: bytes) -> bool:
        """Cheap pre-check combining key-range and Bloom filter."""
        if self.first_row is None:
            return False
        if row < self.first_row or (self.last_row is not None and row > self.last_row):
            return False
        return self._bloom.might_contain(row)

    def overlaps_range(
        self, start_row: Optional[bytes], stop_row: Optional[bytes]
    ) -> bool:
        if self.first_row is None:
            return False
        if stop_row is not None and self.first_row >= stop_row:
            return False
        if start_row is not None and self.last_row is not None:
            if self.last_row < start_row:
                return False
        return True

    def scan(
        self,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in order."""
        if not self.overlaps_range(start_row, stop_row):
            return
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._keys, (start_row,))
        for i in range(lo, len(self._cells)):
            cell = self._cells[i]
            if stop_row is not None and cell.row >= stop_row:
                break
            yield cell

    def cells(self) -> List[Cell]:
        return list(self._cells)


def merge_sorted_runs(runs: Sequence[Sequence[Cell]]) -> List[Cell]:
    """K-way merge of sorted cell runs into one sorted run.

    Used by compaction and by the region read path.  Duplicate
    coordinates+timestamp collapse to the cell from the *latest* run
    (later runs are newer).
    """
    import heapq

    merged: List[Cell] = []
    heap = []
    iters = [iter(run) for run in runs]
    for run_idx, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            # Later runs win ties -> use negative run index in the key.
            heapq.heappush(heap, (first.sort_key(), -run_idx, first, run_idx))
    while heap:
        _key, _tie, cell, run_idx = heapq.heappop(heap)
        if merged and merged[-1].sort_key() == cell.sort_key():
            # Same coordinates+version: the earlier-popped (newer run,
            # because of the tie-break) cell already won.
            pass
        else:
            merged.append(cell)
        nxt = next(iters[run_idx], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.sort_key(), -run_idx, nxt, run_idx))
    return merged
