"""Immutable sorted store files — the on-disk half of the LSM tree."""

from __future__ import annotations

import bisect
import heapq
from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import StorageError
from .cell import Cell


class _BloomFilter:
    """A small row-key Bloom filter, as HFiles carry.

    Sized for ~1% false positives at the construction cardinality; lets
    point gets skip files that cannot contain the row.
    """

    __slots__ = ("_bits", "_num_bits", "_num_hashes")

    def __init__(self, expected_items: int) -> None:
        expected_items = max(1, expected_items)
        # ~9.6 bits/key gives ~1% FP with 7 hash functions.
        self._num_bits = max(64, expected_items * 10)
        self._num_hashes = 7
        self._bits = bytearray((self._num_bits + 7) // 8)

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = hash(key)
        h2 = hash(key + b"\x00salt")
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)

    def might_contain(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )


class StoreFile:
    """An immutable, sorted run of cells produced by a memstore flush.

    Carries a row-key Bloom filter and first/last row metadata so the
    read path can skip irrelevant files, exactly as HFile does.
    """

    _next_id = 0

    def __init__(self, cells: Sequence[Cell]) -> None:
        cells = list(cells)
        keys = [c.sort_key() for c in cells]
        if keys != sorted(keys):
            raise StorageError("store file cells must arrive sorted")
        self._cells: List[Cell] = cells
        self._keys = keys
        self._bloom = _BloomFilter(len(cells))
        for cell in cells:
            self._bloom.add(cell.row)
        self.first_row: Optional[bytes] = cells[0].row if cells else None
        self.last_row: Optional[bytes] = cells[-1].row if cells else None
        StoreFile._next_id += 1
        self.file_id = StoreFile._next_id

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        return sum(c.approx_size() for c in self._cells)

    def may_contain_row(self, row: bytes) -> bool:
        """Cheap pre-check combining key-range and Bloom filter."""
        if self.first_row is None:
            return False
        if row < self.first_row or (self.last_row is not None and row > self.last_row):
            return False
        return self._bloom.might_contain(row)

    def overlaps_range(
        self, start_row: Optional[bytes], stop_row: Optional[bytes]
    ) -> bool:
        if self.first_row is None:
            return False
        if stop_row is not None and self.first_row >= stop_row:
            return False
        if start_row is not None and self.last_row is not None:
            if self.last_row < start_row:
                return False
        return True

    def scan(
        self,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> Iterator[Cell]:
        """Yield cells with ``start_row <= row < stop_row`` in order.

        Both range ends resolve by binary search on the precomputed key
        list, so the inner loop carries no per-cell stop comparison.
        """
        if not self.overlaps_range(start_row, stop_row):
            return iter(())
        lo = 0
        if start_row is not None:
            lo = bisect.bisect_left(self._keys, (start_row,))
        hi = len(self._cells)
        if stop_row is not None:
            hi = bisect.bisect_left(self._keys, (stop_row,), lo)
        if lo == 0 and hi == len(self._cells):
            return iter(self._cells)
        return iter(self._cells[lo:hi])

    def cells(self) -> List[Cell]:
        return list(self._cells)


def iter_merge_sorted_runs(runs: Sequence[Iterable[Cell]]) -> Iterator[Cell]:
    """Lazy k-way merge of sorted cell runs into one sorted stream.

    Duplicate coordinates+timestamp collapse to the cell from the
    *latest* run (later runs are newer).  Sort keys are computed once
    per cell and carried through the heap; the last emitted key is kept
    instead of re-derived, so each cell costs exactly one ``sort_key()``
    call regardless of how often it is compared.
    """
    iters = [iter(run) for run in runs]
    live = []
    for run_idx, it in enumerate(iters):
        first = next(it, None)
        if first is not None:
            live.append((first, run_idx, it))

    if not live:
        return
    if len(live) == 1:
        # Single-run fast path (the common case for a freshly-ingested
        # region: memstore only, nothing flushed yet).  No dedup needed:
        # same-key rewrites collapse inside the memstore and inside
        # compaction output, so duplicates only arise *across* runs.
        cell, _run_idx, it = live[0]
        yield cell
        yield from it
        return

    heap = []
    for cell, run_idx, it in live:
        # Later runs win ties -> use negative run index in the key.
        heap.append((cell.sort_key(), -run_idx, cell, it))
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    last_key = None
    while heap:
        key, tie, cell, it = pop(heap)
        if key != last_key:
            yield cell
            last_key = key
        # else: same coordinates+version — the earlier-popped (newer
        # run, because of the tie-break) cell already won.
        nxt = next(it, None)
        if nxt is not None:
            push(heap, (nxt.sort_key(), tie, nxt, it))


def merge_sorted_runs(runs: Sequence[Sequence[Cell]]) -> List[Cell]:
    """Materialized k-way merge (compaction's contract); see
    :func:`iter_merge_sorted_runs` for the streaming form."""
    return list(iter_merge_sorted_runs(runs))
