"""Cooperative cancellation for region-side scan work.

A :class:`CancellationToken` is created per query by the fan-out client
(or handed in by the caller, e.g. the REST tier holding it for an
abandoned connection) and threaded into every region invocation's
:class:`~repro.hbase.coprocessor.CoprocessorContext`.  Scan loops call
:meth:`CancellationToken.checkpoint` every few dozen cells; a tripped
token raises :class:`~repro.errors.QueryCancelled` *mid-scan*, so a
blown deadline or an abandoned query stops burning CPU instead of
finishing work nobody can use.

Deadline enforcement is **deterministic**: the budget is measured in
*simulated* cost (setup + cells x per-record cost against the cluster's
calibrated cost model), not wall time, so the same query over the same
data always cancels at the same cell regardless of host speed or
thread interleaving.  ``cancel()`` is the wall-clock escape hatch for
abandonment — it trips the token for every region of the query.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import QueryCancelled

#: Cells between checkpoint probes inside region scan loops.  Small
#: enough that a cancelled scan stops within a sub-millisecond of
#: simulated work, large enough that the per-cell overhead is one
#: integer modulo.
CHECK_EVERY_CELLS = 64

#: Cancel reason stamped when a query deadline (simulated budget) blew.
#: A deadline abort degrades the answer: the region lands in
#: ``missing_regions`` and lowers coverage.
REASON_DEADLINE = "deadline"

#: Cancel reason stamped by the top-k merger when it *proves* a region's
#: remaining emission cannot enter the top k (threshold algorithm).  A
#: proof abort is complete-by-proof: the answer stays exact, coverage is
#: untouched, and the region must never appear in ``missing_regions``.
#: Traces distinguish the two via this reason string.
REASON_TOPK_PROOF = "topk_proof"


class CancellationToken:
    """Shared per-query cancellation state.

    Parameters
    ----------
    deadline_ms:
        The query's whole-query deadline in simulated milliseconds;
        None makes the token abandonment-only (checkpoints then cost a
        single flag read).
    cost_per_record_ms / setup_ms:
        The cost-model terms a region invocation's simulated spend is
        computed from at each checkpoint.
    strict:
        In strict mode one region blowing its budget trips the *shared*
        token, so sibling regions of the same query abort at their next
        checkpoint (the whole query fails anyway).  Non-strict keeps the
        trip region-local: survivors still contribute partials and the
        query degrades instead of dying.
    """

    __slots__ = (
        "deadline_ms",
        "cost_per_record_ms",
        "setup_ms",
        "strict",
        "check_every",
        "_cancelled",
        "_reason",
        "_lock",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        cost_per_record_ms: float = 0.0,
        setup_ms: float = 0.0,
        strict: bool = False,
        check_every: int = CHECK_EVERY_CELLS,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.cost_per_record_ms = cost_per_record_ms
        self.setup_ms = setup_ms
        self.strict = strict
        self.check_every = max(1, int(check_every))
        self._cancelled = False
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------ state

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    def cancel(self, reason: str = "cancelled") -> bool:
        """Trip the token for every holder.  First cancel wins; returns
        True when this call flipped the state."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            return True

    # ------------------------------------------------------- checkpoints

    def remaining_ms(self, spent_ms: float) -> float:
        """Budget left after ``spent_ms`` of simulated work; +inf when
        the token carries no deadline."""
        if self.deadline_ms is None:
            return float("inf")
        return self.deadline_ms - spent_ms

    def checkpoint(self, records: int, extra_ms: float = 0.0) -> None:
        """Raise :class:`QueryCancelled` when the token is tripped or
        this invocation's simulated spend has blown the deadline.

        ``records`` is the calling invocation's cells-touched-so-far;
        ``extra_ms`` any additional simulated spend it accumulated
        (retry backoff, injected stalls).  Cheap on the clean path: one
        flag read plus a multiply-compare.
        """
        if self._cancelled:
            raise QueryCancelled(
                "scan cancelled (%s)" % (self._reason or "cancelled")
            )
        if self.deadline_ms is None:
            return
        spent_ms = (
            self.setup_ms + records * self.cost_per_record_ms + extra_ms
        )
        if spent_ms >= self.deadline_ms:
            if self.strict:
                # The whole query is dead: siblings should stop too.
                self.cancel("deadline")
            raise QueryCancelled(
                "region budget exhausted mid-scan: %.2fms spent of the "
                "%.2fms query deadline" % (spent_ms, self.deadline_ms)
            )
