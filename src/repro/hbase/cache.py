"""Write-aware region scan cache for the personalized query path.

One personalized query scans each queried friend's salted key range
inside the region owning it.  Overlapping friend sets across concurrent
queries re-scan (and re-decode) the same ranges; :class:`RegionScanCache`
memoizes the *per-friend* aggregation so a friend's visits are scanned
once per (region, time-window) until the region mutates.

Consistency is seqid-driven, not message-driven: every entry is stamped
with the owning region's :attr:`~repro.hbase.region.Region.data_seqid`
captured **before** the scan that produced it.  Any MemStore write,
flush, compaction or TTL change bumps the region's seqid, so a lookup
against the region's *current* seqid rejects the entry — including
entries racing with a concurrent write (the write lands after the
capture, so the stored stamp is already stale by store time).  Cached
answers are therefore byte-identical to a cache-off run by construction:
a hit can only serve data whose region is untouched since the scan.

Cached values are immutable tuples; callers must fold them without
mutation.  The cache never caches under an injected fault and is
explicitly invalidated for regions a failed node owned (see
``HBaseCluster.fail_node``).

Thread-safe: one lock guards the LRU map and the stats counters.  Like
the rest of ``hbase``, this module never imports ``core`` — the metrics
sink is duck-typed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Labels every metric emission carries, so the scan cache's series
#: stay distinct from the hot-POI cache's.
_METRIC_LABELS = {"cache": "scan"}


class _Entry:
    """One cached per-friend region partial."""

    __slots__ = ("seqid", "partial", "attrs", "cells", "stored_at")

    def __init__(self, seqid, partial, attrs, cells, stored_at):
        self.seqid = seqid
        self.partial = partial
        self.attrs = attrs
        self.cells = cells
        self.stored_at = stored_at


class RegionScanCache:
    """Seqid-stamped LRU over per-friend region scan aggregates.

    Keys are ``(region_id, friend_id, since, until)``; values carry the
    friend's unfiltered per-POI aggregates — ``((poi_id, grade_sum,
    count), ...)`` in first-encounter order — plus the attribute rows
    (name, lat, lon, keywords) of every POI in the partial, so a later
    query with *different* spatial/textual filters can still reuse the
    entry and apply its own filter at fold time.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used entry is evicted on
        overflow.
    ttl_s:
        Optional wall-clock lifetime; expired entries are treated as
        misses and reaped by :meth:`sweep`.
    metrics:
        Optional duck-typed ``PlatformMetrics``: evictions and
        invalidations are reported as ``cache.evictions`` /
        ``cache.invalidations`` with ``{"cache": "scan"}`` labels.
        Hits/misses are *not* emitted per lookup (the friend loop is
        the hot path); they flow through the coprocessor's counters
        into per-query results and are aggregated by the monitoring
        wrapper.
    clock:
        Injectable time source for tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        max_entries: int = 65536,
        ttl_s: Optional[float] = None,
        metrics: Optional[Any] = None,
        clock=time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive or None")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        #: region_id -> set of live keys, for O(region's entries)
        #: invalidation instead of a full-map sweep.
        self._by_region: Dict[int, set] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------ lookup

    def lookup(
        self,
        region_id: int,
        friend_id: int,
        window: Tuple,
        current_seqid: int,
    ) -> Optional[_Entry]:
        """The entry for ``(region, friend, window)`` if still valid.

        Validity means the stored seqid equals the region's *current*
        data seqid (any mutation since the producing scan rejects) and
        the entry is within TTL.  Stale entries are dropped eagerly.
        """
        key = (region_id, friend_id, window[0], window[1])
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.seqid != current_seqid or (
                self.ttl_s is not None
                and self._clock() - entry.stored_at >= self.ttl_s
            ):
                self._drop(key)
                self._invalidations += 1
                self._misses += 1
                self._emit("cache.invalidations")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def store(
        self,
        region_id: int,
        friend_id: int,
        window: Tuple,
        seqid: int,
        partial: Tuple,
        attrs: Mapping[int, tuple],
        cells: int = 0,
    ) -> None:
        """Insert one per-friend partial, stamped with ``seqid``
        (the region's data seqid captured *before* the scan ran)."""
        key = (region_id, friend_id, window[0], window[1])
        entry = _Entry(seqid, partial, dict(attrs), cells, self._clock())
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            self._by_region.setdefault(region_id, set()).add(key)
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                keys = self._by_region.get(old_key[0])
                if keys is not None:
                    keys.discard(old_key)
                    if not keys:
                        del self._by_region[old_key[0]]
                self._evictions += 1
                self._emit("cache.evictions")

    # ------------------------------------------------------ invalidation

    def invalidate_regions(self, region_ids: Iterable[int]) -> int:
        """Drop every entry of the given regions (node failure path).
        Returns the number of entries removed."""
        removed = 0
        with self._lock:
            for region_id in region_ids:
                keys = self._by_region.pop(region_id, None)
                if not keys:
                    continue
                for key in keys:
                    self._entries.pop(key, None)
                    removed += 1
            if removed:
                self._invalidations += removed
                self._emit("cache.invalidations", removed)
        return removed

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._by_region.clear()
            if removed:
                self._invalidations += removed
                self._emit("cache.invalidations", removed)
        return removed

    def sweep(
        self,
        current_seqids: Optional[Mapping[int, int]] = None,
        now: Optional[float] = None,
    ) -> int:
        """Reap dead entries: TTL-expired ones, plus — when the caller
        supplies the regions' current seqids — seqid-stale ones.  The
        scheduler's ``cache_maintenance`` job calls this so memory is
        not held by entries no lookup will ever accept again."""
        if now is None:
            now = self._clock()
        dead = []
        with self._lock:
            for key, entry in self._entries.items():
                if self.ttl_s is not None and now - entry.stored_at >= self.ttl_s:
                    dead.append(key)
                elif (
                    current_seqids is not None
                    and entry.seqid != current_seqids.get(key[0], entry.seqid)
                ):
                    dead.append(key)
            for key in dead:
                self._drop(key)
            if dead:
                self._invalidations += len(dead)
                self._emit("cache.invalidations", len(dead))
        return len(dead)

    def _drop(self, key: Tuple) -> None:
        """Remove one key; caller holds the lock."""
        self._entries.pop(key, None)
        keys = self._by_region.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_region[key[0]]

    def _emit(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.increment(name, amount, labels=_METRIC_LABELS)

    # ------------------------------------------------------------- stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Counters + occupancy for the admin endpoint and tests."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }
