"""Cluster-level HBase client.

Owns every table, places regions on simulated nodes, and executes
coprocessor calls: the *work* runs for real on a thread pool (one task
per region, as HBase does), while the *latency* is produced by the
cluster simulation's scheduler and cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..cluster import ClusterSimulation, ParallelExecutor, QueryTimeline, Task
from ..config import ClusterConfig
from ..errors import TableExistsError, TableNotFoundError
from .coprocessor import Coprocessor, CoprocessorContext
from .region import Region
from .table import HTable, TableDescriptor


@dataclass
class CoprocessorCallResult:
    """Outcome of one coprocessor invocation across a table's regions."""

    result: Any
    timeline: QueryTimeline
    per_region_records: Dict[int, int] = field(default_factory=dict)
    #: Size of each region's partial result (items shipped to the
    #: client for merging).
    per_region_results: Dict[int, int] = field(default_factory=dict)
    #: Regions of the table the client never invoked because routing
    #: proved they own none of the queried keys.
    regions_pruned: int = 0
    #: Endpoint-reported counters, summed across invoked regions
    #: (e.g. ``cells_decoded`` from the lazy visit-decode path).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        """Simulated end-to-end latency of the call in milliseconds."""
        return self.timeline.latency_ms

    @property
    def records_scanned(self) -> int:
        return self.timeline.records_scanned


class HBaseCluster:
    """The facade the platform's repositories talk to.

    Parameters
    ----------
    config:
        Cluster shape and cost model; defaults to the paper's 16-node
        setup.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.simulation = ClusterSimulation(self.config)
        self._executor = ParallelExecutor(max_workers=self.config.total_cores)
        self._tables: Dict[str, HTable] = {}

    # -------------------------------------------------------------- DDL

    def create_table(self, descriptor: TableDescriptor) -> HTable:
        if descriptor.name in self._tables:
            raise TableExistsError("table %r already exists" % descriptor.name)
        table = HTable(descriptor)
        self._tables[descriptor.name] = table
        self._replace_regions()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError("table %r does not exist" % name)
        del self._tables[name]
        self._replace_regions()

    def table(self, name: str) -> HTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError("table %r does not exist" % name) from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def _replace_regions(self) -> None:
        """Re-run region placement after any region-set change."""
        all_regions: List[int] = []
        for table in self._tables.values():
            all_regions.extend(table.region_ids())
        self.simulation.place_regions(all_regions)

    def rebalance(self) -> None:
        """Public hook: re-place regions (needed after region splits)."""
        self._replace_regions()

    # ----------------------------------------------------- coprocessors

    def coprocessor_exec(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        request: Any,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> CoprocessorCallResult:
        """Invoke an endpoint on every region intersecting the row range.

        Returns the merged result plus the simulated timeline of the
        fan-out (used by the benchmarks).
        """
        timelines = self.coprocessor_exec_many(
            table_name, coprocessor, [request], start_row, stop_row
        )
        return timelines[0]

    def coprocessor_exec_many(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        requests: Sequence[Any],
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> List[CoprocessorCallResult]:
        """Invoke the endpoint for several *concurrent* requests.

        All requests share the cluster: their region tasks contend for
        the same simulated cores, which is exactly the paper's Figure 3
        experiment.  This is the *broadcast* fan-out: every region in
        the row range receives every request.  Key-aware callers should
        prefer :meth:`coprocessor_exec_routed`.
        """
        table = self.table(table_name)
        regions = table.regions_for_range(start_row, stop_row)
        routed = [[(region, request) for region in regions] for request in requests]
        return self._exec_region_requests(table, coprocessor, routed)

    def coprocessor_exec_routed(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        routed_requests: Sequence[Mapping[Region, Any]],
        route_items: Optional[Sequence[int]] = None,
        tracer: Optional[Any] = None,
        trace_parents: Optional[Sequence[Any]] = None,
    ) -> List[CoprocessorCallResult]:
        """Route-then-stream fan-out: each request already partitioned
        per region.

        ``routed_requests[qi]`` maps each region to the region-local
        request it should run; regions absent from the mapping are never
        invoked (they are reported via ``regions_pruned``).  This is the
        personalized-query fast path: the client partitions the friend
        list by salted key prefix, so the O(friends x regions) per-region
        membership probing of the broadcast path disappears.

        ``route_items[qi]`` is the number of keys the client routed for
        request ``qi`` (e.g. the friend count); the simulation charges
        the routing term for them, keeping latencies honest about the
        client-side work.

        ``tracer``/``trace_parents`` propagate trace context into the
        fan-out: with a tracer, every region invocation opens a
        ``region.scan`` span under ``trace_parents[qi]`` and the parent
        is tagged with straggler attribution (which region dominated
        the simulated fan-out and by how much).
        """
        table = self.table(table_name)
        routed = [
            sorted(mapping.items(), key=lambda item: item[0].region_id)
            for mapping in routed_requests
        ]
        client_setup = None
        if route_items is not None:
            cm = self.simulation.cost_model
            client_setup = [cm.routing_cost_s(n) for n in route_items]
        return self._exec_region_requests(
            table,
            coprocessor,
            routed,
            client_setup_s=client_setup,
            tracer=tracer,
            trace_parents=trace_parents,
        )

    def _exec_region_requests(
        self,
        table: HTable,
        coprocessor: Coprocessor,
        per_request_regions: Sequence[Sequence[tuple]],
        client_setup_s: Optional[Sequence[float]] = None,
        tracer: Optional[Any] = None,
        trace_parents: Optional[Sequence[Any]] = None,
    ) -> List[CoprocessorCallResult]:
        """Shared fan-out engine: run ``(region, request)`` pairs per
        query on the thread pool, account the simulated timeline, merge."""
        total_regions = len(table.regions)
        traced = tracer is not None and getattr(tracer, "enabled", False)
        placement = self.simulation.region_placement if traced else {}
        per_request_partials: List[List[Any]] = []
        per_request_tasks: List[List[Task]] = []
        per_request_records: List[Dict[int, int]] = []
        per_request_results: List[Dict[int, int]] = []
        per_request_counters: List[Dict[str, int]] = []
        per_request_spans: List[Dict[int, Any]] = []

        for qi, region_requests in enumerate(per_request_regions):
            parent_span = (
                trace_parents[qi]
                if traced and trace_parents is not None
                else None
            )

            def run_one(pair):
                region, request = pair
                if traced:
                    span = tracer.span(
                        "region.scan",
                        parent=parent_span,
                        region_id=region.region_id,
                        node=placement.get(region.region_id),
                    )
                    context = CoprocessorContext(region, tracer=tracer, span=span)
                else:
                    span = None
                    context = CoprocessorContext(region)
                partial = coprocessor.run(context, request)
                if span is not None:
                    span.tag("records_scanned", context.records_scanned)
                    span.tag("region_scans_served", region.scans_served)
                    for name, value in context.counters.items():
                        span.tag(name, value)
                    span.finish()
                return (
                    region.region_id,
                    context.records_scanned,
                    partial,
                    context.counters,
                    span,
                )

            outcomes = self._executor.map_ordered(run_one, region_requests)
            partials = []
            tasks = []
            records: Dict[int, int] = {}
            result_sizes: Dict[int, int] = {}
            counters: Dict[str, int] = {}
            spans: Dict[int, Any] = {}
            for region_id, scanned, partial, region_counters, span in outcomes:
                partials.append(partial)
                records[region_id] = scanned
                if span is not None:
                    spans[region_id] = span
                try:
                    result_sizes[region_id] = len(partial)
                except TypeError:
                    result_sizes[region_id] = 1  # scalar partial result
                for name, value in region_counters.items():
                    counters[name] = counters.get(name, 0) + value
                tasks.append(
                    Task(
                        region_id=region_id,
                        records_scanned=scanned,
                        results_returned=result_sizes[region_id],
                        query_id=qi,
                    )
                )
            per_request_partials.append(partials)
            per_request_tasks.append(tasks)
            per_request_records.append(records)
            per_request_results.append(result_sizes)
            per_request_counters.append(counters)
            per_request_spans.append(spans)

        timelines = self.simulation.run_queries(
            per_request_tasks, client_setup_s=client_setup_s
        )
        results = []
        for qi in range(len(per_request_regions)):
            merged = coprocessor.merge(per_request_partials[qi])
            regions_pruned = total_regions - len(per_request_regions[qi])
            if traced:
                self._attribute_fanout(
                    per_request_spans[qi],
                    per_request_records[qi],
                    trace_parents[qi] if trace_parents is not None else None,
                    timelines[qi],
                    regions_pruned,
                )
            results.append(
                CoprocessorCallResult(
                    result=merged,
                    timeline=timelines[qi],
                    per_region_records=per_request_records[qi],
                    per_region_results=per_request_results[qi],
                    regions_pruned=regions_pruned,
                    counters=per_request_counters[qi],
                )
            )
        return results

    def _attribute_fanout(
        self,
        region_spans: Dict[int, Any],
        region_records: Dict[int, int],
        parent_span: Optional[Any],
        timeline: Any,
        regions_pruned: int,
    ) -> None:
        """Per-region cost + straggler tags for one traced fan-out.

        Each region span gains ``sim_cost_ms`` (its invocation's cost
        under the calibrated model); the fan-out parent is tagged with
        the straggler region — the single invocation that dominated the
        simulated fan-out — and the total/max region costs, which is the
        p99 attribution an operator needs (one hot region explains a
        slow query even when the mean region was cheap)."""
        cm = self.simulation.cost_model
        total_cost_ms = 0.0
        straggler_region = None
        straggler_cost_ms = 0.0
        for region_id, records in region_records.items():
            cost_ms = cm.coprocessor_cost_s(records) * 1e3
            total_cost_ms += cost_ms
            span = region_spans.get(region_id)
            if span is not None:
                span.tag("sim_cost_ms", cost_ms)
            if straggler_region is None or cost_ms > straggler_cost_ms:
                straggler_region = region_id
                straggler_cost_ms = cost_ms
        if parent_span is None:
            return
        parent_span.tag("regions_used", len(region_records))
        parent_span.tag("regions_pruned", regions_pruned)
        parent_span.tag("sim_region_cost_ms_total", total_cost_ms)
        parent_span.tag("sim_latency_ms", timeline.latency_ms)
        if straggler_region is not None:
            parent_span.tag("straggler_region", straggler_region)
            parent_span.tag("straggler_cost_ms", straggler_cost_ms)
            parent_span.tag(
                "straggler_node",
                self.simulation.region_placement.get(straggler_region),
            )

    # ------------------------------------------------------------ admin

    def flush_all(self) -> None:
        for table in self._tables.values():
            table.flush()

    def compact_all(self) -> None:
        for table in self._tables.values():
            table.compact()

    def fail_node(self, node_id: int) -> List[int]:
        """Simulate a region-server death: the node's regions move to
        the survivors and subsequent queries run at reduced capacity
        (results stay exact — only latency degrades)."""
        return self.simulation.fail_node(node_id)

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back and rebalance regions onto it."""
        self.simulation.recover_node(node_id)

    def shutdown(self) -> None:
        """Release the fan-out thread pool.  Idempotent; the cluster
        remains usable afterwards (a new pool is created lazily)."""
        self._executor.shutdown()

    close = shutdown

    def __enter__(self) -> "HBaseCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def describe(self) -> dict:
        return {
            "tables": {
                name: len(table.regions) for name, table in self._tables.items()
            },
            "cluster": self.simulation.describe(),
        }
