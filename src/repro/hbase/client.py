"""Cluster-level HBase client.

Owns every table, places regions on simulated nodes, and executes
coprocessor calls: the *work* runs for real on a thread pool (one task
per region, as HBase does), while the *latency* is produced by the
cluster simulation's scheduler and cost model.

The fan-out is **resilient**: a region invocation that raises (a real
coprocessor bug or an injected fault) is retried with exponential
backoff + deterministic jitter, hedged once against a surviving node,
and — only when every avenue is exhausted — dropped, with the query
completing from the surviving partials (``degraded=True``, the missing
region list and a coverage fraction on the call result).  A per-node
circuit breaker short-circuits requests to repeatedly failing nodes.
With no faults the recovery machinery never engages and results,
timelines and traces are byte-identical to the non-resilient path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..cluster import ClusterSimulation, ParallelExecutor, QueryTimeline, Task
from ..config import ClusterConfig, FaultsConfig
from ..errors import (
    ConfigError,
    CoprocessorError,
    QueryCancelled,
    QueryDeadlineExceeded,
    RegionUnavailableError,
    TableExistsError,
    TableNotFoundError,
)
from .cache import RegionScanCache
from .cancellation import CancellationToken
from .coprocessor import Coprocessor, CoprocessorContext, StreamingPartial
from .region import Region
from .table import HTable, TableDescriptor

#: Fault-kind strings shared with :mod:`repro.core.faults` (duplicated
#: as literals so ``hbase`` never imports ``core``).
_FAULT_ERROR = "error"
_FAULT_HANG = "hang"
_FAULT_CORRUPT = "corrupt"
#: Attempt index hedged re-executions present to the fault injector.
_HEDGE_ATTEMPT = -1


@dataclass
class CoprocessorCallResult:
    """Outcome of one coprocessor invocation across a table's regions."""

    result: Any
    timeline: QueryTimeline
    per_region_records: Dict[int, int] = field(default_factory=dict)
    #: Size of each region's partial result (items shipped to the
    #: client for merging).
    per_region_results: Dict[int, int] = field(default_factory=dict)
    #: Regions of the table the client never invoked because routing
    #: proved they own none of the queried keys.
    regions_pruned: int = 0
    #: Endpoint-reported counters, summed across invoked regions
    #: (e.g. ``cells_decoded`` from the lazy visit-decode path).
    counters: Dict[str, int] = field(default_factory=dict)
    #: True when one or more invoked regions never answered within the
    #: retry/hedge budget and the merge ran on the surviving partials.
    degraded: bool = False
    #: Region ids whose partials are missing from ``result``.
    missing_regions: List[int] = field(default_factory=list)
    #: Fraction of invoked regions that contributed a partial (1.0 on
    #: the clean path; 0 < coverage < 1 on a degraded result).
    coverage: float = 1.0
    #: Recovery work this call performed (0 on the clean path).
    retries: int = 0
    hedges: int = 0
    #: Region scans that aborted mid-scan on a tripped cancellation
    #: token (deadline blown or caller abandoned the query); their
    #: regions are also in ``missing_regions``.
    cancelled_regions: int = 0

    @property
    def latency_ms(self) -> float:
        """Simulated end-to-end latency of the call in milliseconds."""
        return self.timeline.latency_ms

    @property
    def records_scanned(self) -> int:
        return self.timeline.records_scanned


class _RegionOutcome:
    """One region invocation's fate after retries/hedging."""

    __slots__ = (
        "region_id",
        "ok",
        "partial",
        "records",
        "counters",
        "span",
        "retries",
        "hedged",
        "extra_cost_s",
        "reason",
        "error",
    )

    def __init__(self, region_id: int) -> None:
        self.region_id = region_id
        self.ok = False
        self.partial = None
        self.records = 0
        self.counters: Dict[str, int] = {}
        self.span = None
        self.retries = 0
        self.hedged = False
        self.extra_cost_s = 0.0
        self.reason: Optional[str] = None
        self.error: Optional[BaseException] = None


class _BreakerState:
    """Per-node circuit-breaker bookkeeping."""

    __slots__ = ("failures", "open_until")

    def __init__(self) -> None:
        self.failures = 0
        #: Fan-out epoch at which a probe request is admitted; -1 closed.
        self.open_until = -1


class HBaseCluster:
    """The facade the platform's repositories talk to.

    Parameters
    ----------
    config:
        Cluster shape and cost model; defaults to the paper's 16-node
        setup.
    faults_config:
        Retry/hedge/breaker/deadline knobs for the resilient fan-out
        (and injection rates, consumed by an attached injector);
        defaults to :class:`~repro.config.FaultsConfig` — injection off,
        recovery armed.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        faults_config: Optional[FaultsConfig] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.faults_config = faults_config or FaultsConfig()
        self.simulation = ClusterSimulation(self.config)
        self._executor = ParallelExecutor(
            max_workers=self.config.total_cores, component="fanout"
        )
        self._tables: Dict[str, HTable] = {}
        #: Fault injector (see :class:`repro.core.faults.FaultInjector`);
        #: None (the default) keeps the clean path injection-free.
        self.fault_injector: Optional[Any] = None
        #: Optional metrics sink (duck-typed ``PlatformMetrics``).
        self._metrics: Optional[Any] = None
        #: Optional region scan cache (see :mod:`repro.hbase.cache`);
        #: None (the default) keeps the fan-out cache-free.
        self.scan_cache: Optional[RegionScanCache] = None
        #: Optional wide-event log; breaker flips and node fail/recover
        #: become structured events (always kept — they are rare and
        #: load-bearing for incident timelines).
        self.event_log: Optional[Any] = None
        #: Cluster supervisor (see :class:`repro.core.supervisor.
        #: ClusterSupervisor`); None (the default) keeps failure
        #: handling manual — fail_node/recover_node — exactly as before.
        self.supervisor: Optional[Any] = None
        #: Global retry budget (duck-typed ``repro.core.admission.
        #: RetryBudget``); None (the default) leaves retries/hedges
        #: bounded only by the per-region knobs, exactly as before.
        self.retry_budget: Optional[Any] = None
        self._fanout_lock = threading.Lock()
        self._fanout_epoch = 0
        self._breaker_lock = threading.Lock()
        self._breakers: Dict[int, _BreakerState] = {}

    # ------------------------------------------------------ observability

    def attach_metrics(self, metrics: Any) -> None:
        """Report fan-out resilience counters (retries, hedges, missing
        regions, breaker trips) into ``metrics``."""
        self._metrics = metrics

    def attach_fault_injector(self, injector: Any) -> None:
        """Arm a :class:`repro.core.faults.FaultInjector` on the query
        fan-out.  Detach by passing None."""
        self.fault_injector = injector

    def attach_event_log(self, event_log: Optional[Any]) -> None:
        """Emit breaker and node lifecycle events into ``event_log``
        (a :class:`repro.core.telemetry.WideEventLog`).  Detach with
        None."""
        self.event_log = event_log

    def _emit_event(self, event: Mapping, keep: bool = True) -> None:
        if self.event_log is not None:
            self.event_log.emit(dict(event), keep=keep)

    def attach_supervisor(self, supervisor: Optional[Any]) -> None:
        """Hand failure handling to a ClusterSupervisor: heartbeat-lease
        death detection, WAL-split recovery, and storage scrubbing.
        Also routes injected ``fail`` schedule entries through
        :meth:`crash_node` instead of :meth:`fail_node`, so injected
        deaths become *real* crashes the supervisor must heal.  Detach
        by passing None."""
        self.supervisor = supervisor

    def attach_retry_budget(self, budget: Optional[Any]) -> None:
        """Gate the fan-out's retry and hedge paths behind a global
        sliding-window budget, so recovery machinery cannot amplify an
        overload into a retry storm.  Detach by passing None — the
        per-region retry/hedge knobs then bound recovery alone."""
        self.retry_budget = budget

    def attach_scan_cache(self, cache: Optional[RegionScanCache]) -> None:
        """Hand every *clean* coprocessor invocation a scan cache to
        consult.  Detach by passing None; invocations the fault injector
        touched never see the cache either way."""
        self.scan_cache = cache

    def scan_cache_sweep(self, now: Optional[float] = None) -> int:
        """Reap dead scan-cache entries (TTL-expired or stamped with a
        superseded region seqid).  Returns the number dropped; 0 when no
        cache is attached."""
        if self.scan_cache is None:
            return 0
        seqids: Dict[int, int] = {}
        for table in self._tables.values():
            for region in table.regions:
                seqids[region.region_id] = region.data_seqid
        return self.scan_cache.sweep(current_seqids=seqids, now=now)

    def _count(
        self, name: str, amount: int = 1, labels: Optional[Mapping] = None
    ) -> None:
        if self._metrics is not None:
            self._metrics.increment(name, amount, labels=labels)

    # -------------------------------------------------------------- DDL

    def create_table(self, descriptor: TableDescriptor) -> HTable:
        if descriptor.name in self._tables:
            raise TableExistsError("table %r already exists" % descriptor.name)
        table = HTable(descriptor)
        self._tables[descriptor.name] = table
        self._replace_regions()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError("table %r does not exist" % name)
        del self._tables[name]
        self._replace_regions()

    def table(self, name: str) -> HTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError("table %r does not exist" % name) from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def _replace_regions(self) -> None:
        """Re-run region placement after any region-set change."""
        all_regions: List[int] = []
        for table in self._tables.values():
            all_regions.extend(table.region_ids())
        self.simulation.place_regions(all_regions)

    def rebalance(self) -> None:
        """Public hook: re-place regions (needed after region splits)."""
        self._replace_regions()

    # ----------------------------------------------------- coprocessors

    def coprocessor_exec(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        request: Any,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> CoprocessorCallResult:
        """Invoke an endpoint on every region intersecting the row range.

        Returns the merged result plus the simulated timeline of the
        fan-out (used by the benchmarks).
        """
        timelines = self.coprocessor_exec_many(
            table_name, coprocessor, [request], start_row, stop_row
        )
        return timelines[0]

    def coprocessor_exec_many(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        requests: Sequence[Any],
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> List[CoprocessorCallResult]:
        """Invoke the endpoint for several *concurrent* requests.

        All requests share the cluster: their region tasks contend for
        the same simulated cores, which is exactly the paper's Figure 3
        experiment.  This is the *broadcast* fan-out: every region in
        the row range receives every request.  Key-aware callers should
        prefer :meth:`coprocessor_exec_routed`.
        """
        table = self.table(table_name)
        regions = table.regions_for_range(start_row, stop_row)
        routed = [[(region, request) for region in regions] for request in requests]
        return self._exec_region_requests(table, coprocessor, routed)

    def coprocessor_exec_routed(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        routed_requests: Sequence[Mapping[Region, Any]],
        route_items: Optional[Sequence[int]] = None,
        tracer: Optional[Any] = None,
        trace_parents: Optional[Sequence[Any]] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        cancel_tokens: Optional[Sequence[Optional[CancellationToken]]] = None,
    ) -> List[CoprocessorCallResult]:
        """Route-then-stream fan-out: each request already partitioned
        per region.

        ``routed_requests[qi]`` maps each region to the region-local
        request it should run; regions absent from the mapping are never
        invoked (they are reported via ``regions_pruned``).  This is the
        personalized-query fast path: the client partitions the friend
        list by salted key prefix, so the O(friends x regions) per-region
        membership probing of the broadcast path disappears.

        ``route_items[qi]`` is the number of keys the client routed for
        request ``qi`` (e.g. the friend count); the simulation charges
        the routing term for them, keeping latencies honest about the
        client-side work.

        ``tracer``/``trace_parents`` propagate trace context into the
        fan-out: with a tracer, every region invocation opens a
        ``region.scan`` span under ``trace_parents[qi]`` and the parent
        is tagged with straggler attribution (which region dominated
        the simulated fan-out and by how much).

        ``deadlines[qi]`` is request ``qi``'s client-supplied deadline
        (ms); it tightens the config's ``query_deadline_ms`` and arms a
        per-query cancellation token so region scans abort mid-scan
        once their simulated spend blows the budget.  ``cancel_tokens``
        lets the caller hand in its own tokens (e.g. the REST tier
        cancelling an abandoned query from another thread).
        """
        table = self.table(table_name)
        routed = [
            sorted(mapping.items(), key=lambda item: item[0].region_id)
            for mapping in routed_requests
        ]
        client_setup = None
        if route_items is not None:
            cm = self.simulation.cost_model
            client_setup = [cm.routing_cost_s(n) for n in route_items]
        return self._exec_region_requests(
            table,
            coprocessor,
            routed,
            client_setup_s=client_setup,
            tracer=tracer,
            trace_parents=trace_parents,
            deadlines=deadlines,
            cancel_tokens=cancel_tokens,
        )

    def _exec_region_requests(
        self,
        table: HTable,
        coprocessor: Coprocessor,
        per_request_regions: Sequence[Sequence[tuple]],
        client_setup_s: Optional[Sequence[float]] = None,
        tracer: Optional[Any] = None,
        trace_parents: Optional[Sequence[Any]] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
        cancel_tokens: Optional[Sequence[Optional[CancellationToken]]] = None,
    ) -> List[CoprocessorCallResult]:
        """Shared fan-out engine: run ``(region, request)`` pairs per
        query on the thread pool with retries/hedging, account the
        simulated timeline, merge whatever survived."""
        fcfg = self.faults_config
        injector = self.fault_injector
        active = injector is not None and getattr(injector, "enabled", False)
        if active:
            # Applies any due node fail/recover schedule entries, so the
            # placement snapshot below sees the post-event cluster.
            injector.on_fanout_start(self)
        with self._fanout_lock:
            self._fanout_epoch += 1
            epoch = self._fanout_epoch

        total_regions = len(table.regions)
        traced = tracer is not None and getattr(tracer, "enabled", False)
        placement = self.simulation.region_placement
        cm = self.simulation.cost_model
        budget = self.retry_budget

        per_request_partials: List[List[Any]] = []
        per_request_deadline: List[Optional[float]] = []
        per_request_tasks: List[List[Task]] = []
        per_request_records: List[Dict[int, int]] = []
        per_request_results: List[Dict[int, int]] = []
        per_request_counters: List[Dict[str, int]] = []
        per_request_spans: List[Dict[int, Any]] = []
        per_request_missing: List[List[int]] = []
        per_request_recovery: List[Dict[str, int]] = []

        for qi, region_requests in enumerate(per_request_regions):
            # Effective per-query deadline: a client-supplied deadline
            # tightens the config default.
            q_deadline = deadlines[qi] if deadlines is not None else None
            deadline_ms = fcfg.query_deadline_ms
            if q_deadline is not None:
                deadline_ms = (
                    q_deadline if deadline_ms is None
                    else min(deadline_ms, q_deadline)
                )
            per_request_deadline.append(deadline_ms)
            token = cancel_tokens[qi] if cancel_tokens is not None else None
            if token is None and deadline_ms is not None and (
                fcfg.strict_deadline or q_deadline is not None
            ):
                # Cooperative cancellation engages only in strict mode
                # or under an explicit client deadline; the default
                # graceful path stays byte-identical to the token-free
                # build.
                token = CancellationToken(
                    deadline_ms=deadline_ms,
                    strict=fcfg.strict_deadline,
                )
            if token is not None:
                # Stamp the cost-model terms so checkpoints translate
                # cells-touched into simulated spend deterministically.
                token.cost_per_record_ms = cm.cost_per_record_s * 1e3
                token.setup_ms = (
                    (cm.rpc_latency_s + cm.coprocessor_setup_s) * 1e3
                )
            parent_span = (
                trace_parents[qi]
                if traced and trace_parents is not None
                else None
            )

            def run_one(pair):
                region, request = pair
                rid = region.region_id
                node_id = placement.get(rid)
                out = _RegionOutcome(rid)
                backoff_ms = fcfg.retry_backoff_ms
                attempt = 0
                if budget is not None:
                    budget.record_request()
                if active and not injector.region_available(rid):
                    # The region's data died with its node: no retry or
                    # hedge can answer, and the (healthy) serving node's
                    # breaker must not be charged for it.
                    out.reason = "region_lost"
                    return out
                if node_id is not None and not self.simulation.is_live(node_id):
                    # Placement still points at a crashed server (the
                    # supervisor has not reassigned yet): nobody is home,
                    # and a hedge must not "answer" from the corpse's
                    # region object — its memstore died with the node.
                    out.reason = "node_down"
                    return out
                if not self._breaker_allow(node_id, epoch):
                    # Node known-bad: skip the primary, go straight to
                    # the hedge against a healthier node.
                    out.reason = "breaker_open"
                else:
                    while True:
                        fault = (
                            injector.decide(rid, node_id, attempt)
                            if active
                            else None
                        )
                        if fault is not None and fault.kind == _FAULT_HANG:
                            # A straggler: charge the stall; abandon the
                            # primary only once the region's recovery
                            # budget (derived from the whole-query
                            # deadline) is blown.
                            out.extra_cost_s += fault.latency_ms / 1e3
                            if (
                                deadline_ms is not None
                                and out.extra_cost_s * 1e3 >= deadline_ms
                            ):
                                out.reason = "deadline"
                                break
                            fault = None
                        try:
                            if fault is not None and fault.kind == _FAULT_ERROR:
                                raise RegionUnavailableError(
                                    "injected fault: region %d attempt %d"
                                    % (rid, attempt)
                                )
                            out.partial = self._invoke_region(
                                coprocessor,
                                region,
                                request,
                                out,
                                tracer if traced else None,
                                parent_span,
                                node_id,
                                attempt=attempt,
                                fault=fault,
                                token=token,
                            )
                            out.ok = True
                            self._breaker_record(node_id, True, epoch)
                            return out
                        except QueryCancelled as exc:
                            # A tripped token is shed work, not a node
                            # failure: no breaker charge, no retry, no
                            # hedge.  The aborted scan's cells are still
                            # charged via ``out.records``.
                            out.error = exc
                            out.reason = "cancelled"
                            return out
                        except Exception as exc:  # noqa: BLE001 - resilience boundary
                            out.error = exc
                            self._breaker_record(node_id, False, epoch)
                            attempt += 1
                            if attempt > fcfg.max_retries:
                                out.reason = type(exc).__name__
                                break
                            if budget is not None and not budget.try_spend():
                                # Global retry budget exhausted: degrade
                                # now rather than amplify the overload.
                                out.reason = "retry_budget"
                                self._count("fanout.retries_denied")
                                break
                            out.retries += 1
                            jitter_ms = (
                                injector.backoff_jitter_ms(rid, attempt)
                                if active
                                else 0.0
                            )
                            # A failed attempt costs the backoff plus a
                            # fresh RPC + coprocessor setup; its scanned
                            # records are charged via ``out.records``.
                            out.extra_cost_s += (
                                (backoff_ms + jitter_ms) / 1e3
                                + cm.rpc_latency_s
                                + cm.coprocessor_setup_s
                            )
                            backoff_ms *= fcfg.retry_backoff_multiplier
                            if (
                                deadline_ms is not None
                                and out.extra_cost_s * 1e3 >= deadline_ms
                            ):
                                out.reason = "deadline"
                                break

                if fcfg.hedge_enabled and not out.ok and (
                    out.reason != "cancelled"
                ):
                    if budget is not None and not budget.try_spend():
                        # Hedges draw from the same global budget.
                        self._count("fanout.hedges_denied")
                        return out
                    if (
                        token is not None
                        and token.remaining_ms(out.extra_cost_s * 1e3) <= 0
                    ):
                        # No deadline budget left for the hedge to spend.
                        return out
                    self._hedge_region(
                        coprocessor,
                        region,
                        request,
                        out,
                        tracer if traced else None,
                        parent_span,
                        node_id,
                        active,
                        token=token,
                    )
                return out

            outcomes = self._executor.map_ordered(run_one, region_requests)
            partials: List[Any] = []
            records: Dict[int, int] = {}
            result_sizes: Dict[int, int] = {}
            counters: Dict[str, int] = {}
            spans: Dict[int, Any] = {}
            missing: List[int] = []
            #: Deferred Task construction in outcome order: streaming
            #: partials only learn their shipped-item count after the
            #: incremental merge below, and the merge cost the timeline
            #: charges must reflect what actually crossed the wire.
            task_inputs: List[tuple] = []
            retries = 0
            hedges = 0
            breaker_skips = 0
            cancelled = 0
            for out in outcomes:
                rid = out.region_id
                records[rid] = out.records
                retries += out.retries
                if out.ok:
                    partials.append(out.partial)
                    if out.hedged:
                        hedges += 1
                    if out.span is not None:
                        spans[rid] = out.span
                    try:
                        result_sizes[rid] = len(out.partial)
                    except TypeError:
                        result_sizes[rid] = 1  # scalar partial result
                    for name, value in out.counters.items():
                        counters[name] = counters.get(name, 0) + value
                else:
                    missing.append(rid)
                    result_sizes[rid] = 0
                    if out.reason == "cancelled":
                        cancelled += 1
                    if out.reason == "breaker_open":
                        breaker_skips += 1
                task_inputs.append((rid, out.records, out.extra_cost_s))
            if partials and all(
                isinstance(p, StreamingPartial) for p in partials
            ):
                # Threshold-algorithm path: the endpoint returned
                # score-sorted streams, merged *here* — before the
                # timeline is simulated — so ``results_returned`` (and
                # with it the web tier's per-item merge cost) counts
                # only the items each region actually emitted or
                # answered probes for, not its whole partial.
                merged_stream, topk_stats = coprocessor.stream_merge(
                    partials, deadline_token=token
                )
                for stream in partials:
                    result_sizes[stream.region_id] = stream.shipped
                counters["cells_decoded"] = (
                    counters.get("cells_decoded", 0)
                    + topk_stats["cells_decoded"]
                )
                for key in (
                    "rounds",
                    "probes",
                    "candidates",
                    "cells_avoided",
                    "pruned_regions",
                ):
                    counters["topk." + key] = (
                        counters.get("topk." + key, 0) + topk_stats[key]
                    )
                self._count("topk.queries")
                self._count("topk.rounds", topk_stats["rounds"])
                self._count(
                    "topk.cells_avoided", topk_stats["cells_avoided"]
                )
                if topk_stats["pruned_regions"]:
                    self._count(
                        "topk.regions_pruned_early",
                        topk_stats["pruned_regions"],
                    )
                aborted = topk_stats["aborted_regions"]
                if aborted:
                    # Deadline hit mid-merge: emission from these
                    # regions never finished, so undiscovered candidates
                    # may be missing — honest degraded semantics, unlike
                    # proof-pruned regions which stay fully covered.
                    missing.extend(
                        rid for rid in aborted if rid not in missing
                    )
                    cancelled += len(aborted)
                partials = [merged_stream]
            tasks = [
                Task(
                    region_id=rid,
                    records_scanned=out_records,
                    results_returned=result_sizes[rid],
                    query_id=qi,
                    extra_cost_s=extra_cost_s,
                )
                for rid, out_records, extra_cost_s in task_inputs
            ]
            if retries:
                self._count("fanout.retries", retries)
            if hedges:
                self._count("fanout.hedges", hedges)
            if missing:
                self._count("fanout.regions_missing", len(missing))
                self._count("fanout.degraded_queries")
            if breaker_skips:
                self._count("fanout.breaker_skips", breaker_skips)
            if cancelled:
                self._count("fanout.cancelled", cancelled)
            if fcfg.strict_deadline and cancelled:
                # Strict mode aborts the query the moment scans tripped
                # the deadline token — before the timeline is even
                # simulated, rather than detecting the overrun post-hoc.
                raise QueryDeadlineExceeded(
                    "query %d aborted mid-scan: %d region scan(s) "
                    "cancelled at the %.1fms deadline"
                    % (qi, cancelled, deadline_ms)
                )
            per_request_partials.append(partials)
            per_request_tasks.append(tasks)
            per_request_records.append(records)
            per_request_results.append(result_sizes)
            per_request_counters.append(counters)
            per_request_spans.append(spans)
            per_request_missing.append(sorted(missing))
            per_request_recovery.append(
                {"retries": retries, "hedges": hedges, "cancelled": cancelled}
            )

        timelines = self.simulation.run_queries(
            per_request_tasks, client_setup_s=client_setup_s
        )
        results = []
        for qi in range(len(per_request_regions)):
            merged = coprocessor.merge(per_request_partials[qi])
            regions_pruned = total_regions - len(per_request_regions[qi])
            missing = per_request_missing[qi]
            invoked = len(per_request_regions[qi])
            coverage = (
                1.0 if invoked == 0 else (invoked - len(missing)) / invoked
            )
            recovery = per_request_recovery[qi]
            if traced:
                self._attribute_fanout(
                    per_request_spans[qi],
                    per_request_records[qi],
                    trace_parents[qi] if trace_parents is not None else None,
                    timelines[qi],
                    regions_pruned,
                    missing_regions=missing,
                    retries=recovery["retries"],
                    hedges=recovery["hedges"],
                )
            q_deadline_ms = per_request_deadline[qi]
            if (
                fcfg.strict_deadline
                and q_deadline_ms is not None
                and timelines[qi].latency_ms > q_deadline_ms
            ):
                raise QueryDeadlineExceeded(
                    "query %d finished at %.1fms, over the %.1fms deadline"
                    % (qi, timelines[qi].latency_ms, q_deadline_ms)
                )
            results.append(
                CoprocessorCallResult(
                    result=merged,
                    timeline=timelines[qi],
                    per_region_records=per_request_records[qi],
                    per_region_results=per_request_results[qi],
                    regions_pruned=regions_pruned,
                    counters=per_request_counters[qi],
                    degraded=bool(missing),
                    missing_regions=missing,
                    coverage=coverage,
                    retries=recovery["retries"],
                    hedges=recovery["hedges"],
                    cancelled_regions=recovery["cancelled"],
                )
            )
        return results

    def _invoke_region(
        self,
        coprocessor: Coprocessor,
        region: Region,
        request: Any,
        out: _RegionOutcome,
        tracer: Optional[Any],
        parent_span: Optional[Any],
        node_id: Optional[int],
        attempt: int = 0,
        fault: Optional[Any] = None,
        hedged: bool = False,
        token: Optional[CancellationToken] = None,
    ) -> Any:
        """One region invocation with span bookkeeping.

        The ``region.scan`` span is finished in a ``finally`` — an
        endpoint that raises can no longer orphan its span — and failed
        attempts are tagged ``error=<exception class>``.
        """
        # A faulted invocation must neither serve nor populate the scan
        # cache: its partial may be corrupted in flight, and a degraded
        # answer must never become a future query's "clean" data.
        cache = self.scan_cache if fault is None else None
        span = None
        if tracer is not None:
            tags: Dict[str, Any] = {"region_id": region.region_id, "node": node_id}
            if attempt:
                tags["attempt"] = attempt
            if hedged:
                tags["hedged"] = True
            span = tracer.span("region.scan", parent=parent_span, **tags)
            context = CoprocessorContext(
                region, tracer=tracer, span=span, cache=cache,
                cancellation=token,
            )
        else:
            context = CoprocessorContext(region, cache=cache, cancellation=token)
        try:
            partial = coprocessor.run(context, request)
            if fault is not None and fault.kind == _FAULT_CORRUPT:
                partial = self.fault_injector.corrupt(partial)
            if (
                self.fault_injector is not None
                and getattr(self.fault_injector, "enabled", False)
                and not coprocessor.validate_partial(partial)
            ):
                raise CoprocessorError(
                    "corrupt partial from region %d" % region.region_id
                )
            out.span = span
            out.counters = context.counters
            return partial
        except Exception as exc:
            if span is not None:
                span.tag("error", type(exc).__name__)
            raise
        finally:
            out.records += context.records_scanned
            if span is not None:
                span.tag("records_scanned", context.records_scanned)
                span.tag("region_scans_served", region.scans_served)
                for name, value in context.counters.items():
                    span.tag(name, value)
                span.finish()

    def _hedge_region(
        self,
        coprocessor: Coprocessor,
        region: Region,
        request: Any,
        out: _RegionOutcome,
        tracer: Optional[Any],
        parent_span: Optional[Any],
        primary_node: Optional[int],
        active: bool,
        token: Optional[CancellationToken] = None,
    ) -> None:
        """Last-resort re-execution against the replica on a surviving
        node.  Mutates ``out`` in place; a hedge that fails leaves the
        region missing."""
        injector = self.fault_injector
        rid = region.region_id
        if active and not injector.region_available(rid):
            return  # the data itself is gone until the node recovers
        hedge_node = self._hedge_target(primary_node)
        if hedge_node is None:
            return
        fault = (
            injector.decide(rid, hedge_node, _HEDGE_ATTEMPT) if active else None
        )
        if fault is not None and fault.kind == _FAULT_HANG:
            out.extra_cost_s += fault.latency_ms / 1e3
            fault = None  # a slow hedge still answers
        if fault is not None and fault.kind == _FAULT_ERROR:
            return
        cm = self.simulation.cost_model
        out.extra_cost_s += cm.rpc_latency_s + cm.coprocessor_setup_s
        try:
            out.partial = self._invoke_region(
                coprocessor,
                region,
                request,
                out,
                tracer,
                parent_span,
                hedge_node,
                fault=fault,
                hedged=True,
                token=token,
            )
            out.ok = True
            out.hedged = True
            out.reason = None
        except QueryCancelled as exc:
            out.error = exc
            out.reason = "cancelled"
        except Exception as exc:  # noqa: BLE001 - resilience boundary
            out.error = exc
            out.reason = out.reason or type(exc).__name__

    def _hedge_target(self, primary_node: Optional[int]) -> Optional[int]:
        """The surviving node a hedge runs against (deterministic: the
        lowest-numbered live node other than the primary)."""
        live = self.simulation.live_nodes()
        for candidate in live:
            if candidate != primary_node:
                return candidate
        return live[0] if live else None

    # -------------------------------------------------- circuit breaker

    def _breaker_allow(self, node_id: Optional[int], epoch: int) -> bool:
        if node_id is None:
            return True
        with self._breaker_lock:
            state = self._breakers.get(node_id)
            if state is None or state.open_until < 0:
                return True
            if epoch >= state.open_until:
                # Half-open: admit a probe; one more failure re-opens.
                state.open_until = -1
                state.failures = self.faults_config.breaker_threshold - 1
                half_open = True
            else:
                return False
        if half_open:
            self._emit_event(
                {
                    "type": "breaker.half_open",
                    "node": node_id,
                    "epoch": epoch,
                }
            )
        return True

    def _breaker_record(
        self, node_id: Optional[int], ok: bool, epoch: int
    ) -> None:
        if node_id is None:
            return
        opened = False
        closed = False
        with self._breaker_lock:
            state = self._breakers.setdefault(node_id, _BreakerState())
            if ok:
                # A success after accumulated failures closes the
                # breaker (half-open probe succeeding is the usual way).
                closed = state.failures > 0
                state.failures = 0
                state.open_until = -1
            else:
                state.failures += 1
                if (
                    state.failures >= self.faults_config.breaker_threshold
                    and state.open_until < 0
                ):
                    state.open_until = (
                        epoch + self.faults_config.breaker_cooldown_fanouts
                    )
                    opened = True
        if opened:
            self._count("fanout.breaker_opened", labels={"node": node_id})
            self._emit_event(
                {
                    "type": "breaker.opened",
                    "node": node_id,
                    "epoch": epoch,
                    "cooldown_fanouts": (
                        self.faults_config.breaker_cooldown_fanouts
                    ),
                }
            )
        elif closed:
            self._emit_event(
                {"type": "breaker.closed", "node": node_id, "epoch": epoch}
            )

    def _breaker_reset(self, node_id: int) -> None:
        with self._breaker_lock:
            self._breakers.pop(node_id, None)

    def breaker_states(self) -> Dict[int, Dict[str, int]]:
        """Circuit-breaker snapshot for admin surfaces and tests."""
        with self._breaker_lock:
            return {
                node_id: {
                    "failures": state.failures,
                    "open_until": state.open_until,
                }
                for node_id, state in sorted(self._breakers.items())
            }

    def _attribute_fanout(
        self,
        region_spans: Dict[int, Any],
        region_records: Dict[int, int],
        parent_span: Optional[Any],
        timeline: Any,
        regions_pruned: int,
        missing_regions: Optional[List[int]] = None,
        retries: int = 0,
        hedges: int = 0,
    ) -> None:
        """Per-region cost + straggler tags for one traced fan-out.

        Each region span gains ``sim_cost_ms`` (its invocation's cost
        under the calibrated model); the fan-out parent is tagged with
        the straggler region — the single invocation that dominated the
        simulated fan-out — and the total/max region costs, which is the
        p99 attribution an operator needs (one hot region explains a
        slow query even when the mean region was cheap).  Degraded
        fan-outs additionally carry ``degraded``/``missing_regions``,
        and any recovery work shows up as ``retries``/``hedges`` tags
        (all omitted on the clean path, keeping zero-fault traces
        unchanged)."""
        cm = self.simulation.cost_model
        total_cost_ms = 0.0
        straggler_region = None
        straggler_cost_ms = 0.0
        for region_id, records in region_records.items():
            cost_ms = cm.coprocessor_cost_s(records) * 1e3
            total_cost_ms += cost_ms
            span = region_spans.get(region_id)
            if span is not None:
                span.tag("sim_cost_ms", cost_ms)
            if straggler_region is None or cost_ms > straggler_cost_ms:
                straggler_region = region_id
                straggler_cost_ms = cost_ms
        if parent_span is None:
            return
        parent_span.tag("regions_used", len(region_records))
        parent_span.tag("regions_pruned", regions_pruned)
        parent_span.tag("sim_region_cost_ms_total", total_cost_ms)
        parent_span.tag("sim_latency_ms", timeline.latency_ms)
        if missing_regions:
            parent_span.tag("degraded", True)
            parent_span.tag("missing_regions", list(missing_regions))
        if retries:
            parent_span.tag("retries", retries)
        if hedges:
            parent_span.tag("hedges", hedges)
        if straggler_region is not None:
            parent_span.tag("straggler_region", straggler_region)
            parent_span.tag("straggler_cost_ms", straggler_cost_ms)
            parent_span.tag(
                "straggler_node",
                self.simulation.region_placement.get(straggler_region),
            )

    # ------------------------------------------------------------ admin

    def flush_all(self) -> None:
        for table in self._tables.values():
            table.flush()

    def compact_all(self) -> None:
        for table in self._tables.values():
            table.compact()

    def fail_node(self, node_id: int) -> List[int]:
        """Simulate a region-server death: the node's regions move to
        the survivors and subsequent queries run at reduced capacity.

        Without a fault injector, results stay exact (only latency
        degrades).  With one attached, the injector is notified so it
        can model stale region locations and lost replicas — the
        degraded-result path."""
        moved = self.simulation.fail_node(node_id)
        self._breaker_reset(node_id)
        if self.scan_cache is not None and moved:
            # The dead node's regions reopen elsewhere: drop their
            # cached partials rather than trust entries produced on a
            # server that just disappeared mid-write.
            self.scan_cache.invalidate_regions(moved)
        if self.fault_injector is not None and moved:
            self.fault_injector.on_node_failed(node_id, moved)
        self._emit_event(
            {
                "type": "node.failed",
                "node": node_id,
                "regions_moved": list(moved),
            }
        )
        return moved

    def crash_node(self, node_id: int) -> List[int]:
        """Kill a region server WITHOUT failover: placement still points
        at the corpse, its memstores are lost, and nothing recovers
        until the supervisor's heartbeat lease expires and it runs
        WAL-split recovery.  This is the honest crash the self-healing
        loop exists for; requires a supervisor, because without one the
        stranded regions would stay dark forever."""
        if self.supervisor is None:
            raise ConfigError(
                "crash_node requires an attached ClusterSupervisor; "
                "use fail_node for instantaneous-failover simulation"
            )
        downed = self.simulation.crash_node(node_id)
        self._breaker_reset(node_id)
        if self.scan_cache is not None and downed:
            self.scan_cache.invalidate_regions(downed)
        dropped_cells = 0
        regions_by_id = {
            r.region_id: r
            for table in self._tables.values()
            for r in table.regions
        }
        for rid in downed:
            region = regions_by_id.get(rid)
            if region is not None:
                dropped_cells += region.crash()
        self._emit_event(
            {
                "type": "node.crashed",
                "node": node_id,
                "regions_stranded": list(downed),
                "memstore_cells_lost": dropped_cells,
            }
        )
        return downed

    def reassign_regions(self, mapping: Dict[int, int]) -> None:
        """Supervisor-driven placement change: point regions at new
        nodes and drop their cached partials (they will be served by a
        different server, possibly after WAL replay)."""
        if not mapping:
            return
        self.simulation.reassign_regions(mapping)
        if self.scan_cache is not None:
            self.scan_cache.invalidate_regions(list(mapping))
        self._emit_event(
            {
                "type": "regions.reassigned",
                "mapping": {str(k): v for k, v in mapping.items()},
            }
        )

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back and rebalance regions onto it."""
        before = self.simulation.region_placement
        self.simulation.recover_node(node_id)
        self._breaker_reset(node_id)
        if self.scan_cache is not None:
            # Rebalance moves regions onto the returning node; their
            # cached partials were produced under the old placement and
            # must go, exactly as fail_node drops the dead node's — the
            # two paths are symmetric.
            after = self.simulation.region_placement
            moved = [rid for rid, node in after.items() if before.get(rid) != node]
            if moved:
                self.scan_cache.invalidate_regions(moved)
        if self.fault_injector is not None:
            self.fault_injector.on_node_recovered(node_id)
        self._emit_event({"type": "node.recovered", "node": node_id})

    def shutdown(self) -> None:
        """Release the fan-out thread pool.  Idempotent; the cluster
        remains usable afterwards (a new pool is created lazily)."""
        self._executor.shutdown()

    close = shutdown

    def __enter__(self) -> "HBaseCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def describe(self) -> dict:
        out = {
            "tables": {
                name: len(table.regions) for name, table in self._tables.items()
            },
            "cluster": self.simulation.describe(),
        }
        if self.fault_injector is not None:
            out["faults"] = self.fault_injector.describe()
        return out
