"""Cluster-level HBase client.

Owns every table, places regions on simulated nodes, and executes
coprocessor calls: the *work* runs for real on a thread pool (one task
per region, as HBase does), while the *latency* is produced by the
cluster simulation's scheduler and cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..cluster import ClusterSimulation, ParallelExecutor, QueryTimeline, Task
from ..config import ClusterConfig
from ..errors import TableExistsError, TableNotFoundError
from .coprocessor import Coprocessor, CoprocessorContext
from .table import HTable, TableDescriptor


@dataclass
class CoprocessorCallResult:
    """Outcome of one coprocessor invocation across a table's regions."""

    result: Any
    timeline: QueryTimeline
    per_region_records: Dict[int, int] = field(default_factory=dict)
    #: Size of each region's partial result (items shipped to the
    #: client for merging).
    per_region_results: Dict[int, int] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        """Simulated end-to-end latency of the call in milliseconds."""
        return self.timeline.latency_ms

    @property
    def records_scanned(self) -> int:
        return self.timeline.records_scanned


class HBaseCluster:
    """The facade the platform's repositories talk to.

    Parameters
    ----------
    config:
        Cluster shape and cost model; defaults to the paper's 16-node
        setup.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.simulation = ClusterSimulation(self.config)
        self._executor = ParallelExecutor(max_workers=self.config.total_cores)
        self._tables: Dict[str, HTable] = {}

    # -------------------------------------------------------------- DDL

    def create_table(self, descriptor: TableDescriptor) -> HTable:
        if descriptor.name in self._tables:
            raise TableExistsError("table %r already exists" % descriptor.name)
        table = HTable(descriptor)
        self._tables[descriptor.name] = table
        self._replace_regions()
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError("table %r does not exist" % name)
        del self._tables[name]
        self._replace_regions()

    def table(self, name: str) -> HTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError("table %r does not exist" % name) from None

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def _replace_regions(self) -> None:
        """Re-run region placement after any region-set change."""
        all_regions: List[int] = []
        for table in self._tables.values():
            all_regions.extend(table.region_ids())
        self.simulation.place_regions(all_regions)

    def rebalance(self) -> None:
        """Public hook: re-place regions (needed after region splits)."""
        self._replace_regions()

    # ----------------------------------------------------- coprocessors

    def coprocessor_exec(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        request: Any,
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> CoprocessorCallResult:
        """Invoke an endpooint on every region intersecting the row range.

        Returns the merged result plus the simulated timeline of the
        fan-out (used by the benchmarks).
        """
        timelines = self.coprocessor_exec_many(
            table_name, coprocessor, [request], start_row, stop_row
        )
        return timelines[0]

    def coprocessor_exec_many(
        self,
        table_name: str,
        coprocessor: Coprocessor,
        requests: Sequence[Any],
        start_row: Optional[bytes] = None,
        stop_row: Optional[bytes] = None,
    ) -> List[CoprocessorCallResult]:
        """Invoke the endpoint for several *concurrent* requests.

        All requests share the cluster: their region tasks contend for
        the same simulated cores, which is exactly the paper's Figure 3
        experiment.
        """
        table = self.table(table_name)
        regions = table.regions_for_range(start_row, stop_row)

        per_request_partials: List[List[Any]] = []
        per_request_tasks: List[List[Task]] = []
        per_request_records: List[Dict[int, int]] = []
        per_request_results: List[Dict[int, int]] = []

        for qi, request in enumerate(requests):
            def run_one(region, _request=request):
                context = CoprocessorContext(region)
                partial = coprocessor.run(context, _request)
                return (region.region_id, context.records_scanned, partial)

            outcomes = self._executor.map_ordered(run_one, regions)
            partials = []
            tasks = []
            records: Dict[int, int] = {}
            result_sizes: Dict[int, int] = {}
            for region_id, scanned, partial in outcomes:
                partials.append(partial)
                records[region_id] = scanned
                try:
                    result_sizes[region_id] = len(partial)
                except TypeError:
                    result_sizes[region_id] = 1  # scalar partial result
                tasks.append(
                    Task(
                        region_id=region_id,
                        records_scanned=scanned,
                        results_returned=result_sizes[region_id],
                        query_id=qi,
                    )
                )
            per_request_partials.append(partials)
            per_request_tasks.append(tasks)
            per_request_records.append(records)
            per_request_results.append(result_sizes)

        timelines = self.simulation.run_queries(per_request_tasks)
        results = []
        for qi in range(len(requests)):
            merged = coprocessor.merge(per_request_partials[qi])
            results.append(
                CoprocessorCallResult(
                    result=merged,
                    timeline=timelines[qi],
                    per_region_records=per_request_records[qi],
                    per_region_results=per_request_results[qi],
                )
            )
        return results

    # ------------------------------------------------------------ admin

    def flush_all(self) -> None:
        for table in self._tables.values():
            table.flush()

    def compact_all(self) -> None:
        for table in self._tables.values():
            table.compact()

    def fail_node(self, node_id: int) -> List[int]:
        """Simulate a region-server death: the node's regions move to
        the survivors and subsequent queries run at reduced capacity
        (results stay exact — only latency degrades)."""
        return self.simulation.fail_node(node_id)

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back and rebalance regions onto it."""
        self.simulation.recover_node(node_id)

    def shutdown(self) -> None:
        self._executor.shutdown()

    def describe(self) -> dict:
        return {
            "tables": {
                name: len(table.regions) for name, table in self._tables.items()
            },
            "cluster": self.simulation.describe(),
        }
