"""Relational schemas: typed columns with nullability and defaults."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """The small type system the platform's tables need."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    #: A list of strings, like PostgreSQL's ``text[]`` (POI keywords).
    TEXT_ARRAY = "text[]"
    #: Arbitrary JSON-serializable payload, like ``jsonb``.
    JSON = "json"

    def validate(self, value: Any) -> Any:
        """Check (and lightly coerce) a value for this type."""
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError("expected integer, got %r" % (value,))
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError("expected float, got %r" % (value,))
            return float(value)
        if self is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError("expected text, got %r" % (value,))
            return value
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError("expected boolean, got %r" % (value,))
            return value
        if self is ColumnType.TEXT_ARRAY:
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(v, str) for v in value
            ):
                raise SchemaError("expected list of strings, got %r" % (value,))
            return list(value)
        if self is ColumnType.JSON:
            return value
        raise SchemaError("unknown column type %r" % self)


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType
    nullable: bool = False
    default: Any = None


@dataclass
class TableSchema:
    """A named, ordered collection of columns with a primary key."""

    name: str
    columns: List[Column]
    primary_key: str

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate column names in %r" % self.name)
        if self.primary_key not in names:
            raise SchemaError(
                "primary key %r is not a column of %r"
                % (self.primary_key, self.name)
            )
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                "table %r has no column %r" % (self.name, name)
            ) from None

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def validate_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Return a complete, validated row dict.

        Unknown keys are rejected; missing keys take defaults or, when
        nullable, ``None``.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(
                "unknown columns %s for table %r" % (sorted(unknown), self.name)
            )
        out: Dict[str, Any] = {}
        for col in self.columns:
            if col.name in row and row[col.name] is not None:
                out[col.name] = col.type.validate(row[col.name])
            elif col.default is not None:
                out[col.name] = col.type.validate(col.default)
            elif col.nullable:
                out[col.name] = None
            else:
                raise SchemaError(
                    "column %r of %r is not nullable and has no default"
                    % (col.name, self.name)
                )
        return out
