"""Rule-based query planner.

PostgreSQL's planner costs alternative paths; this reproduction uses the
rule hierarchy that matters for the platform's query mix:

1. a spatial index for a bounding-box predicate (the dominant shape);
2. a hash/ordered index for an equality or IN predicate;
3. an ordered index for a range predicate;
4. sequential scan.

The chosen access path produces a candidate row-id set; remaining
predicates run as a filter on the heap rows — exactly an index scan with
a recheck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import PlannerError
from .index import HashIndex, OrderedIndex, SpatialIndex
from .query import (
    And,
    BBoxContains,
    Eq,
    In,
    Predicate,
    Query,
    Range,
)
from .table import HeapTable


@dataclass
class QueryPlan:
    """EXPLAIN output: the chosen access path and residual filters."""

    access_path: str
    index_column: Optional[str]
    driving_predicate: Optional[Predicate]
    residual_predicates: List[Predicate]
    estimated_candidates: Optional[int] = None

    def describe(self) -> str:
        parts = [self.access_path]
        if self.index_column:
            parts.append("on %s" % self.index_column)
        if self.residual_predicates:
            parts.append("filter x%d" % len(self.residual_predicates))
        return " ".join(parts)


class Planner:
    """Chooses an access path for a query against one table."""

    def plan(self, table: HeapTable, query: Query) -> QueryPlan:
        predicates = query.where.flatten() if query.where is not None else []

        # Rule 1: bounding box via spatial index.
        for pred in predicates:
            if isinstance(pred, BBoxContains):
                spatial = table.spatial_index()
                if spatial is not None and (
                    spatial.lat_column == pred.lat_column
                    and spatial.lon_column == pred.lon_column
                ):
                    rest = [p for p in predicates if p is not pred]
                    return QueryPlan(
                        access_path="spatial index scan",
                        index_column=spatial.column,
                        driving_predicate=pred,
                        residual_predicates=rest,
                    )

        # Rule 2: equality / IN via hash or ordered index.
        for pred in predicates:
            if isinstance(pred, (Eq, In)):
                index = table.index_for_column(pred.column)
                if index is not None and isinstance(
                    index, (HashIndex, OrderedIndex)
                ):
                    rest = [p for p in predicates if p is not pred]
                    return QueryPlan(
                        access_path="index scan",
                        index_column=pred.column,
                        driving_predicate=pred,
                        residual_predicates=rest,
                    )

        # Rule 3: range via ordered index.
        for pred in predicates:
            if isinstance(pred, Range):
                index = table.index_for_column(pred.column)
                if isinstance(index, OrderedIndex):
                    rest = [p for p in predicates if p is not pred]
                    return QueryPlan(
                        access_path="index range scan",
                        index_column=pred.column,
                        driving_predicate=pred,
                        residual_predicates=rest,
                    )

        return QueryPlan(
            access_path="seq scan",
            index_column=None,
            driving_predicate=None,
            residual_predicates=predicates,
        )

    def candidate_rids(self, table: HeapTable, plan: QueryPlan) -> Set[int]:
        """Row ids produced by the plan's driving access path."""
        pred = plan.driving_predicate
        if pred is None:
            return {rid for rid, _row in table.scan()}

        if isinstance(pred, BBoxContains):
            spatial = table.spatial_index()
            if spatial is None:
                raise PlannerError("plan expects a spatial index")
            return spatial.search_bbox(pred.bbox)

        index = table.index_for_column(getattr(pred, "column", ""))
        if index is None:
            raise PlannerError("plan expects an index on %r" % pred)
        if isinstance(pred, Eq):
            return index.lookup(pred.value)
        if isinstance(pred, In):
            if isinstance(index, HashIndex):
                return index.lookup_many(pred.values)
            out: Set[int] = set()
            for value in pred.values:
                out |= index.lookup(value)
            return out
        if isinstance(pred, Range):
            if not isinstance(index, OrderedIndex):
                raise PlannerError("range scan needs an ordered index")
            return index.range(
                pred.low, pred.high, pred.include_low, pred.include_high
            )
        raise PlannerError("unsupported driving predicate %r" % (pred,))
