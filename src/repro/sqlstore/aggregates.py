"""Aggregate queries: COUNT / SUM / AVG / MIN / MAX with GROUP BY.

PostgreSQL answers MoDisSENSE's reporting-style questions ("how many
POIs per category", "average interest by city") with plain aggregates;
this module adds the same capability to the engine, reusing the planner
for the WHERE clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import QueryError
from .query import Predicate

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate expression, e.g. ``avg(interest)``.

    ``column`` is ignored for ``count`` (it counts rows).
    """

    function: str
    column: Optional[str] = None
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                "aggregate must be one of %s, got %r"
                % (AGGREGATE_FUNCTIONS, self.function)
            )
        if self.function != "count" and self.column is None:
            raise QueryError("%s() needs a column" % self.function)

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.function == "count":
            return "count"
        return "%s_%s" % (self.function, self.column)


@dataclass
class AggregateQuery:
    """``SELECT <aggregates> FROM table [WHERE ...] [GROUP BY ...]``."""

    table: str
    aggregates: List[Aggregate]
    where: Optional[Predicate] = None
    group_by: Optional[List[str]] = None
    having: Optional[Any] = None  # callable(result_row) -> bool

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("an aggregate query needs at least one aggregate")


class _Accumulator:
    """Streaming state for one group's aggregates."""

    __slots__ = ("count", "sums", "mins", "maxs", "value_counts")

    def __init__(self, aggregates: List[Aggregate]) -> None:
        self.count = 0
        self.sums: Dict[str, float] = {}
        self.mins: Dict[str, Any] = {}
        self.maxs: Dict[str, Any] = {}
        self.value_counts: Dict[str, int] = {}

    def add(self, row: Dict[str, Any], aggregates: List[Aggregate]) -> None:
        self.count += 1
        for agg in aggregates:
            if agg.function == "count" or agg.column is None:
                continue
            value = row.get(agg.column)
            if value is None:
                continue  # SQL semantics: NULLs are skipped
            col = agg.column
            self.value_counts[col] = self.value_counts.get(col, 0) + 1
            if agg.function in ("sum", "avg"):
                self.sums[col] = self.sums.get(col, 0) + value
            if agg.function == "min":
                if col not in self.mins or value < self.mins[col]:
                    self.mins[col] = value
            if agg.function == "max":
                if col not in self.maxs or value > self.maxs[col]:
                    self.maxs[col] = value

    def finalize(self, aggregates: List[Aggregate]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for agg in aggregates:
            name = agg.output_name
            if agg.function == "count":
                out[name] = self.count
            elif agg.function == "sum":
                out[name] = self.sums.get(agg.column, 0)
            elif agg.function == "avg":
                n = self.value_counts.get(agg.column, 0)
                out[name] = (
                    self.sums.get(agg.column, 0) / n if n else None
                )
            elif agg.function == "min":
                out[name] = self.mins.get(agg.column)
            elif agg.function == "max":
                out[name] = self.maxs.get(agg.column)
        return out


def execute_aggregate(engine, query: AggregateQuery) -> List[Dict[str, Any]]:
    """Run an aggregate query against an engine's table.

    Returns one row per group (one row total without GROUP BY), each
    carrying the group-by columns plus every aggregate's output.
    """
    from .query import Query

    rows = engine.select(Query(table=query.table, where=query.where))

    groups: Dict[Tuple, _Accumulator] = {}
    group_cols = query.group_by or []
    for row in rows:
        key = tuple(row.get(c) for c in group_cols)
        acc = groups.get(key)
        if acc is None:
            acc = groups[key] = _Accumulator(query.aggregates)
        acc.add(row, query.aggregates)

    if not groups and not group_cols:
        groups[()] = _Accumulator(query.aggregates)

    out: List[Dict[str, Any]] = []
    for key in sorted(groups, key=repr):
        result = dict(zip(group_cols, key))
        result.update(groups[key].finalize(query.aggregates))
        if query.having is not None and not query.having(result):
            continue
        out.append(result)
    return out
