"""Heap tables with index maintenance."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Union

from ..errors import IndexError_, SchemaError, StorageError
from .index import HashIndex, OrderedIndex, SpatialIndex
from .schema import TableSchema

IndexType = Union[HashIndex, OrderedIndex, SpatialIndex]


class HeapTable:
    """Rows in insertion order, addressed by a surrogate row id.

    Every declared index is maintained synchronously on insert, update
    and delete, so reads never see a stale index — the property the
    planner's correctness rests on.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_rid = 1
        self._pk_index = HashIndex(schema.primary_key)
        self._indexes: Dict[str, IndexType] = {}

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------- DDL

    def create_index(self, index: IndexType) -> None:
        """Register an index and backfill it from existing rows."""
        if index.column in self._indexes:
            raise StorageError(
                "index on %r already exists for table %r"
                % (index.column, self.schema.name)
            )
        self._indexes[index.column] = index
        for rid, row in self._rows.items():
            self._index_insert(index, row, rid)

    def indexes(self) -> Dict[str, IndexType]:
        return dict(self._indexes)

    # ------------------------------------------------------------ writes

    def insert(self, row: Dict[str, Any]) -> int:
        """Validate and insert; returns the new row id.

        Enforces primary-key uniqueness, as PostgreSQL would.
        """
        validated = self.schema.validate_row(row)
        pk_value = validated[self.schema.primary_key]
        if self._pk_index.lookup(pk_value):
            raise SchemaError(
                "duplicate primary key %r in table %r"
                % (pk_value, self.schema.name)
            )
        rid = self._next_rid
        self._next_rid += 1
        self._rows[rid] = validated
        self._pk_index.insert(pk_value, rid)
        for index in self._indexes.values():
            self._index_insert(index, validated, rid)
        return rid

    def update(self, rid: int, changes: Dict[str, Any]) -> None:
        """Apply column changes to one row, keeping indexes in sync."""
        old = self._rows.get(rid)
        if old is None:
            raise StorageError("no row %r in table %r" % (rid, self.schema.name))
        merged = dict(old)
        merged.update(changes)
        validated = self.schema.validate_row(merged)
        new_pk = validated[self.schema.primary_key]
        old_pk = old[self.schema.primary_key]
        if new_pk != old_pk and self._pk_index.lookup(new_pk):
            raise SchemaError(
                "duplicate primary key %r in table %r" % (new_pk, self.schema.name)
            )
        # Only touch indexes whose keyed columns actually changed (the
        # moral equivalent of PostgreSQL's HOT update): a hotness bump
        # must not delete and re-insert the row in the spatial R-tree.
        touched = [
            index
            for index in self._indexes.values()
            if self._index_key(index, old) != self._index_key(index, validated)
        ]
        for index in touched:
            self._index_remove(index, old, rid)
        if new_pk != old_pk:
            self._pk_index.remove(old_pk, rid)
            self._pk_index.insert(new_pk, rid)
        self._rows[rid] = validated
        for index in touched:
            self._index_insert(index, validated, rid)

    def delete(self, rid: int) -> None:
        row = self._rows.pop(rid, None)
        if row is None:
            raise StorageError("no row %r in table %r" % (rid, self.schema.name))
        self._pk_index.remove(row[self.schema.primary_key], rid)
        for index in self._indexes.values():
            self._index_remove(index, row, rid)

    def upsert(self, row: Dict[str, Any]) -> int:
        """Insert, or update the existing row with the same primary key."""
        validated = self.schema.validate_row(row)
        pk_value = validated[self.schema.primary_key]
        existing = self._pk_index.lookup(pk_value)
        if existing:
            rid = next(iter(existing))
            self.update(rid, validated)
            return rid
        return self.insert(validated)

    # ------------------------------------------------------------- reads

    def get(self, rid: int) -> Optional[Dict[str, Any]]:
        row = self._rows.get(rid)
        return dict(row) if row is not None else None

    def get_by_pk(self, pk_value: Any) -> Optional[Dict[str, Any]]:
        rids = self._pk_index.lookup(pk_value)
        if not rids:
            return None
        return self.get(next(iter(rids)))

    def rids_by_pk(self, pk_value: Any) -> Set[int]:
        return self._pk_index.lookup(pk_value)

    def scan(self) -> Iterator[tuple]:
        """All ``(rid, row)`` pairs; rows are copies."""
        for rid, row in self._rows.items():
            yield rid, dict(row)

    def rows_for_rids(self, rids) -> List[Dict[str, Any]]:
        out = []
        for rid in rids:
            row = self._rows.get(rid)
            if row is not None:
                out.append(dict(row))
        return out

    # ---------------------------------------------------- index plumbing

    @staticmethod
    def _index_key(index: IndexType, row: Dict[str, Any]):
        if isinstance(index, SpatialIndex):
            return (row[index.lat_column], row[index.lon_column])
        return row.get(index.column)

    def _index_insert(self, index: IndexType, row: Dict[str, Any], rid: int) -> None:
        key = self._index_key(index, row)
        if isinstance(index, SpatialIndex):
            if key[0] is None or key[1] is None:
                return
            index.insert(key, rid)
        elif key is not None:
            index.insert(key, rid)

    def _index_remove(self, index: IndexType, row: Dict[str, Any], rid: int) -> None:
        key = self._index_key(index, row)
        if isinstance(index, SpatialIndex):
            if key[0] is None or key[1] is None:
                return
            index.remove(key, rid)
        elif key is not None:
            index.remove(key, rid)

    def index_for_column(self, column: str) -> Optional[IndexType]:
        return self._indexes.get(column)

    def spatial_index(self) -> Optional[SpatialIndex]:
        for index in self._indexes.values():
            if isinstance(index, SpatialIndex):
                return index
        return None
