"""A small relational engine standing in for PostgreSQL.

MoDisSENSE keeps its read-heavy, index-friendly repositories — POIs and
blogs — in PostgreSQL and answers non-personalized queries with plain
SQL selects over them (paper Sections 2.1–2.2).  This package rebuilds
the access paths those queries use:

- typed schemas with constraint checks (:mod:`schema`);
- heap tables with hash, ordered (B-tree-like) and R-tree spatial
  indexes kept in sync on every mutation (:mod:`table`, :mod:`index`);
- a predicate/query layer and a rule-based planner that picks the most
  selective index, falling back to a sequential scan (:mod:`query`,
  :mod:`planner`);
- :class:`SqlEngine`, the multi-table facade with EXPLAIN-style plan
  inspection (:mod:`engine`).
"""

from .schema import Column, ColumnType, TableSchema
from .index import HashIndex, OrderedIndex, SpatialIndex
from .table import HeapTable
from .query import (
    Predicate,
    Eq,
    In,
    Range,
    BBoxContains,
    KeywordsAny,
    And,
    Query,
)
from .planner import Planner, QueryPlan
from .aggregates import Aggregate, AggregateQuery, execute_aggregate
from .join import JoinSpec, hash_join, JOIN_INNER, JOIN_LEFT
from .engine import SqlEngine

__all__ = [
    "Column",
    "ColumnType",
    "TableSchema",
    "HashIndex",
    "OrderedIndex",
    "SpatialIndex",
    "HeapTable",
    "Predicate",
    "Eq",
    "In",
    "Range",
    "BBoxContains",
    "KeywordsAny",
    "And",
    "Query",
    "Planner",
    "QueryPlan",
    "Aggregate",
    "AggregateQuery",
    "execute_aggregate",
    "JoinSpec",
    "hash_join",
    "JOIN_INNER",
    "JOIN_LEFT",
    "SqlEngine",
]
