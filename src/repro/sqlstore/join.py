"""Equi-joins between tables (hash join).

The paper's schema discussion (Section 2.1) weighs "joining POI
information with visit information at query time" against replication.
This module implements the join side of that trade for the relational
store: a classic build/probe hash join over two queries' outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import QueryError
from .query import Query

JOIN_INNER = "inner"
JOIN_LEFT = "left"


@dataclass
class JoinSpec:
    """One equi-join: ``left.left_key = right.right_key``.

    Column-name collisions are resolved by prefixing the right side's
    columns with ``<right table>.``; the join keys keep the left name.
    """

    left: Query
    right: Query
    left_key: str
    right_key: str
    kind: str = JOIN_INNER

    def __post_init__(self) -> None:
        if self.kind not in (JOIN_INNER, JOIN_LEFT):
            raise QueryError("join kind must be inner or left")


def hash_join(engine, spec: JoinSpec) -> List[Dict[str, Any]]:
    """Execute a hash join: build on the right input, probe with the left.

    NULL keys never match (SQL semantics).  For a LEFT join, unmatched
    left rows appear once with the right side's columns set to None.
    """
    left_rows = engine.select(spec.left)
    right_rows = engine.select(spec.right)

    # ---- build phase
    build: Dict[Any, List[Dict[str, Any]]] = {}
    for row in right_rows:
        key = row.get(spec.right_key)
        if key is None:
            continue
        if isinstance(key, list):
            key = tuple(key)
        build.setdefault(key, []).append(row)

    right_prefix = "%s." % spec.right.table
    right_columns: List[str] = []
    if right_rows:
        right_columns = list(right_rows[0])

    def merge(left_row: Dict, right_row: Optional[Dict]) -> Dict[str, Any]:
        out = dict(left_row)
        for column in right_columns or (
            list(right_row) if right_row else []
        ):
            name = (
                right_prefix + column if column in left_row else column
            )
            out[name] = right_row.get(column) if right_row else None
        return out

    # ---- probe phase
    joined: List[Dict[str, Any]] = []
    for left_row in left_rows:
        key = left_row.get(spec.left_key)
        if isinstance(key, list):
            key = tuple(key)
        matches = build.get(key, []) if key is not None else []
        if matches:
            for right_row in matches:
                joined.append(merge(left_row, right_row))
        elif spec.kind == JOIN_LEFT:
            joined.append(merge(left_row, None))
    return joined
