"""Predicates and query descriptions.

Rather than parsing SQL text, queries are built from predicate objects —
the same information a parsed WHERE clause carries, minus the parser.
The planner pattern-matches on predicate types to choose indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..geo import BoundingBox


class Predicate:
    """Base predicate; subclasses implement :meth:`matches`."""

    def matches(self, row: Dict[str, Any]) -> bool:
        raise QueryError("%s does not implement matches()" % type(self).__name__)

    def flatten(self) -> List["Predicate"]:
        """The conjunction's leaves (self, unless an :class:`And`)."""
        return [self]


@dataclass(frozen=True)
class Eq(Predicate):
    """``column = value``."""

    column: str
    value: Any

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) == self.value


@dataclass(frozen=True)
class In(Predicate):
    """``column IN (values)``."""

    column: str
    values: Tuple

    def __init__(self, column: str, values) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) in self.values


@dataclass(frozen=True)
class Range(Predicate):
    """``low <= column < high`` with configurable inclusivity."""

    column: str
    low: Optional[Any] = None
    high: Optional[Any] = None
    include_low: bool = True
    include_high: bool = False

    def matches(self, row: Dict[str, Any]) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self.low is not None:
            if self.include_low:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.include_high:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True


@dataclass(frozen=True)
class BBoxContains(Predicate):
    """``(lat_column, lon_column)`` inside a bounding box."""

    lat_column: str
    lon_column: str
    bbox: BoundingBox

    def matches(self, row: Dict[str, Any]) -> bool:
        lat = row.get(self.lat_column)
        lon = row.get(self.lon_column)
        if lat is None or lon is None:
            return False
        return self.bbox.contains_coords(lat, lon)


@dataclass(frozen=True)
class KeywordsAny(Predicate):
    """A ``text[]`` column shares at least one keyword with the query.

    PostgreSQL's ``keywords && ARRAY[...]`` overlap operator.
    """

    column: str
    keywords: Tuple

    def __init__(self, column: str, keywords) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(
            self, "keywords", tuple(k.lower() for k in keywords)
        )

    def matches(self, row: Dict[str, Any]) -> bool:
        values = row.get(self.column)
        if not values:
            return False
        wanted = set(self.keywords)
        return any(v.lower() in wanted for v in values)


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *predicates: Predicate) -> None:
        leaves: List[Predicate] = []
        for p in predicates:
            leaves.extend(p.flatten())
        self.predicates = leaves

    def matches(self, row: Dict[str, Any]) -> bool:
        return all(p.matches(row) for p in self.predicates)

    def flatten(self) -> List[Predicate]:
        return list(self.predicates)


@dataclass
class Query:
    """A SELECT over one table.

    ``order_by`` is ``(column, descending)``; ``limit`` of ``None`` means
    all rows.
    """

    table: str
    where: Optional[Predicate] = None
    order_by: Optional[Tuple[str, bool]] = None
    limit: Optional[int] = None
    columns: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be >= 0, got %r" % self.limit)
