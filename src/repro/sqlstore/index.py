"""Secondary indexes: hash, ordered, and spatial.

The ordered index plays PostgreSQL's B-tree role (equality + range), the
hash index serves pure equality, and the spatial index wraps the R-tree
from :mod:`repro.geo` for bounding-box containment — the GiST stand-in.
All indexes map key values to heap row ids.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import IndexError_
from ..geo import BoundingBox, GeoPoint, RTree


class HashIndex:
    """Equality-only index: value -> set of row ids."""

    kind = "hash"

    def __init__(self, column: str) -> None:
        self.column = column
        self._map: Dict[Any, Set[int]] = {}

    def insert(self, key: Any, rid: int) -> None:
        self._map.setdefault(self._hashable(key), set()).add(rid)

    def remove(self, key: Any, rid: int) -> None:
        key = self._hashable(key)
        rids = self._map.get(key)
        if rids is not None:
            rids.discard(rid)
            if not rids:
                del self._map[key]

    def lookup(self, key: Any) -> Set[int]:
        return set(self._map.get(self._hashable(key), ()))

    def lookup_many(self, keys) -> Set[int]:
        out: Set[int] = set()
        for key in keys:
            out |= self.lookup(key)
        return out

    @staticmethod
    def _hashable(key: Any) -> Any:
        if isinstance(key, list):
            return tuple(key)
        return key

    def __len__(self) -> int:
        return sum(len(v) for v in self._map.values())


class OrderedIndex:
    """Sorted (key, rid) pairs: equality *and* range lookups.

    Implemented over ``bisect`` rather than a hand-rolled B-tree: the
    asymptotics match (O(log n) search), inserts are O(n) shifts but the
    POI/blog tables this index serves have "low insert/update rates"
    (paper Section 2.1), so the simpler structure is the honest choice.
    """

    kind = "ordered"

    def __init__(self, column: str) -> None:
        self.column = column
        self._pairs: List[Tuple[Any, int]] = []

    def insert(self, key: Any, rid: int) -> None:
        if key is None:
            return  # NULLs are not indexed, as in PostgreSQL b-trees
        bisect.insort(self._pairs, (key, rid))

    def remove(self, key: Any, rid: int) -> None:
        if key is None:
            return
        idx = bisect.bisect_left(self._pairs, (key, rid))
        if idx < len(self._pairs) and self._pairs[idx] == (key, rid):
            del self._pairs[idx]

    def lookup(self, key: Any) -> Set[int]:
        lo = bisect.bisect_left(self._pairs, (key,))
        out: Set[int] = set()
        for i in range(lo, len(self._pairs)):
            k, rid = self._pairs[i]
            if k != key:
                break
            out.add(rid)
        return out

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Set[int]:
        """Row ids with keys in the given (half-open by default) range."""
        if low is None:
            lo = 0
        else:
            lo = (
                bisect.bisect_left(self._pairs, (low,))
                if include_low
                else bisect.bisect_right(self._pairs, (low, float("inf")))
            )
        out: Set[int] = set()
        for i in range(lo, len(self._pairs)):
            k, rid = self._pairs[i]
            if high is not None:
                if include_high:
                    if k > high:
                        break
                elif k >= high:
                    break
            out.add(rid)
        return out

    def iter_sorted(self, reverse: bool = False) -> Iterator[Tuple[Any, int]]:
        """(key, rid) pairs in key order — supports ORDER BY pushdown."""
        return iter(reversed(self._pairs)) if reverse else iter(self._pairs)

    def min_key(self) -> Any:
        if not self._pairs:
            raise IndexError_("index on %r is empty" % self.column)
        return self._pairs[0][0]

    def max_key(self) -> Any:
        if not self._pairs:
            raise IndexError_("index on %r is empty" % self.column)
        return self._pairs[-1][0]

    def __len__(self) -> int:
        return len(self._pairs)


class SpatialIndex:
    """R-tree over a (lat_column, lon_column) point pair."""

    kind = "spatial"

    def __init__(self, lat_column: str, lon_column: str) -> None:
        self.lat_column = lat_column
        self.lon_column = lon_column
        self.column = "%s,%s" % (lat_column, lon_column)
        self._tree = RTree(max_entries=16)

    def insert(self, key: Tuple[float, float], rid: int) -> None:
        lat, lon = key
        self._tree.insert_point(GeoPoint(lat, lon), rid)

    def remove(self, key: Tuple[float, float], rid: int) -> None:
        lat, lon = key
        self._tree.delete(BoundingBox(lat, lon, lat, lon), rid)

    def search_bbox(self, bbox: BoundingBox) -> Set[int]:
        return set(self._tree.search(bbox))

    def __len__(self) -> int:
        return len(self._tree)
