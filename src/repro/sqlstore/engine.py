"""The multi-table SQL engine facade."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import TableExistsError, TableNotFoundError
from .index import HashIndex, OrderedIndex, SpatialIndex
from .planner import Planner, QueryPlan
from .query import Query
from .schema import TableSchema
from .table import HeapTable


class SqlEngine:
    """The PostgreSQL stand-in: tables, indexes, SELECT with a planner.

    Usage::

        engine = SqlEngine()
        engine.create_table(schema)
        engine.create_index("pois", OrderedIndex("hotness"))
        rows = engine.select(Query(table="pois", where=..., limit=10))
    """

    def __init__(self) -> None:
        self._tables: Dict[str, HeapTable] = {}
        self._planner = Planner()
        #: Running counters exposed for tests and benchmarks.
        self.stats: Dict[str, int] = {
            "selects": 0,
            "inserts": 0,
            "updates": 0,
            "deletes": 0,
            "seq_scans": 0,
            "index_scans": 0,
            "index_order_scans": 0,
        }

    # --------------------------------------------------------------- DDL

    def create_table(self, schema: TableSchema) -> HeapTable:
        if schema.name in self._tables:
            raise TableExistsError("table %r already exists" % schema.name)
        table = HeapTable(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError("table %r does not exist" % name)
        del self._tables[name]

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError("table %r does not exist" % name) from None

    def create_index(self, table_name: str, index) -> None:
        self.table(table_name).create_index(index)

    # --------------------------------------------------------------- DML

    def insert(self, table_name: str, row: Dict[str, Any]) -> int:
        self.stats["inserts"] += 1
        return self.table(table_name).insert(row)

    def upsert(self, table_name: str, row: Dict[str, Any]) -> int:
        self.stats["inserts"] += 1
        return self.table(table_name).upsert(row)

    def update(self, table_name: str, rid: int, changes: Dict[str, Any]) -> None:
        self.stats["updates"] += 1
        self.table(table_name).update(rid, changes)

    def delete(self, table_name: str, rid: int) -> None:
        self.stats["deletes"] += 1
        self.table(table_name).delete(rid)

    # ------------------------------------------------------------ SELECT

    def explain(self, query: Query) -> QueryPlan:
        """The plan that :meth:`select` would execute."""
        return self._planner.plan(self.table(query.table), query)

    def select(self, query: Query) -> List[Dict[str, Any]]:
        """Run a query: plan, fetch candidates, filter, sort, project."""
        self.stats["selects"] += 1
        table = self.table(query.table)

        pushed = self._try_order_by_pushdown(table, query)
        if pushed is not None:
            return pushed

        plan = self._planner.plan(table, query)
        if plan.access_path == "seq scan":
            self.stats["seq_scans"] += 1
        else:
            self.stats["index_scans"] += 1

        rids = self._planner.candidate_rids(table, plan)
        rows = table.rows_for_rids(rids)

        for pred in plan.residual_predicates:
            rows = [row for row in rows if pred.matches(row)]
        # Recheck the driving predicate too: spatial index search returns
        # intersecting rectangles, the predicate wants containment.
        if plan.driving_predicate is not None:
            rows = [row for row in rows if plan.driving_predicate.matches(row)]

        if query.order_by is not None:
            column, descending = query.order_by
            rows.sort(
                key=lambda r: (r.get(column) is None, r.get(column)),
                reverse=descending,
            )
        if query.limit is not None:
            rows = rows[: query.limit]
        if query.columns is not None:
            rows = [{c: row.get(c) for c in query.columns} for row in rows]
        return rows

    def _try_order_by_pushdown(self, table: HeapTable, query: Query):
        """Top-k without a full sort: an unfiltered ORDER BY + LIMIT over
        an ordered-indexed column streams directly from the index (the
        PostgreSQL "index scan backward ... limit" plan).

        Returns None when the pushdown does not apply — the caller falls
        back to the general plan.  Requires the index to cover every row
        (NULLs are not indexed, and a missing row would break top-k).
        """
        if query.where is not None or query.order_by is None:
            return None
        if query.limit is None:
            return None
        column, descending = query.order_by
        index = table.index_for_column(column)
        from .index import OrderedIndex

        if not isinstance(index, OrderedIndex) or len(index) != len(table):
            return None
        self.stats["index_order_scans"] += 1
        rids = []
        for _key, rid in index.iter_sorted(reverse=descending):
            rids.append(rid)
            if len(rids) == query.limit:
                break
        rows = table.rows_for_rids(rids)
        if query.columns is not None:
            rows = [{c: row.get(c) for c in query.columns} for row in rows]
        return rows

    def count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def table_names(self) -> List[str]:
        return sorted(self._tables)
