"""Sequential DBSCAN over geographic points.

The reference implementation against which MR-DBSCAN is validated.
Neighborhood queries run against a uniform spatial grid of cell size
``eps``, making the overall complexity near-linear for the GPS-trace
densities the platform sees.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..geo import GeoPoint
from ..geo.distance import METERS_PER_DEG_LAT, euclidean_approx_m, meters_per_deg_lon

#: Cluster label for noise points.
NOISE = -1


@dataclass
class ClusteringResult:
    """Labels aligned with the input points, plus cluster summaries."""

    labels: List[int]
    num_clusters: int

    def cluster_members(self) -> Dict[int, List[int]]:
        """Cluster id -> indexes of member points (noise excluded)."""
        members: Dict[int, List[int]] = {}
        for idx, label in enumerate(self.labels):
            if label != NOISE:
                members.setdefault(label, []).append(idx)
        return members

    def noise_indexes(self) -> List[int]:
        return [i for i, label in enumerate(self.labels) if label == NOISE]


class _NeighborGrid:
    """Uniform grid with cell size eps: neighbor search touches at most
    the 3x3 cells around a point."""

    def __init__(self, points: Sequence[GeoPoint], eps_m: float) -> None:
        self._points = points
        self._eps = eps_m
        if points:
            mean_lat = sum(p.lat for p in points) / len(points)
        else:
            mean_lat = 0.0
        self._lat_step = eps_m / METERS_PER_DEG_LAT
        self._lon_step = eps_m / max(meters_per_deg_lon(mean_lat), 1e-9)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for idx, p in enumerate(points):
            self._cells.setdefault(self._cell_of(p), []).append(idx)

    def _cell_of(self, p: GeoPoint) -> Tuple[int, int]:
        return (
            int(math.floor(p.lat / self._lat_step)),
            int(math.floor(p.lon / self._lon_step)),
        )

    def neighbors(self, idx: int) -> List[int]:
        """Indexes within eps of point ``idx`` (including itself)."""
        p = self._points[idx]
        ci, cj = self._cell_of(p)
        out: List[int] = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                bucket = self._cells.get((ci + di, cj + dj))
                if not bucket:
                    continue
                for j in bucket:
                    q = self._points[j]
                    if euclidean_approx_m(p.lat, p.lon, q.lat, q.lon) <= self._eps:
                        out.append(j)
        return out


def dbscan(
    points: Sequence[GeoPoint],
    eps_m: float,
    min_points: int,
) -> ClusteringResult:
    """Classic DBSCAN (Ester et al., 1996).

    Parameters
    ----------
    points:
        The GPS points to cluster.
    eps_m:
        Neighborhood radius in meters.
    min_points:
        Minimum neighborhood size (including the point itself) for a
        point to be *core*.
    """
    if eps_m <= 0:
        raise ValidationError("eps_m must be positive")
    if min_points < 1:
        raise ValidationError("min_points must be >= 1")

    points = list(points)
    n = len(points)
    labels = [NOISE] * n
    if n == 0:
        return ClusteringResult(labels=labels, num_clusters=0)

    grid = _NeighborGrid(points, eps_m)
    visited = [False] * n
    cluster_id = -1

    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        neighbors = grid.neighbors(i)
        if len(neighbors) < min_points:
            continue  # stays noise unless pulled in as a border point
        cluster_id += 1
        labels[i] = cluster_id
        queue = deque(neighbors)
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border or reachable point
            if visited[j]:
                continue
            visited[j] = True
            j_neighbors = grid.neighbors(j)
            if len(j_neighbors) >= min_points:
                queue.extend(j_neighbors)

    return ClusteringResult(labels=labels, num_clusters=cluster_id + 1)


def cluster_centroid(
    points: Sequence[GeoPoint], member_indexes: Sequence[int]
) -> GeoPoint:
    """Arithmetic centroid of a cluster's members.

    Fine at city scale; the platform registers it as the detected POI's
    location.
    """
    if not member_indexes:
        raise ValidationError("cannot take the centroid of no points")
    lat = sum(points[i].lat for i in member_indexes) / len(member_indexes)
    lon = sum(points[i].lon for i in member_indexes) / len(member_indexes)
    return GeoPoint(lat, lon)
