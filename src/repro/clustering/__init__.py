"""Density-based clustering for event/POI detection.

The Event Detection Module applies "a distributed, Hadoop-based
implementation of the DBSCAN clustering algorithm" (MR-DBSCAN, He et
al., ICPADS 2011) to GPS traces: dense concentrations of traces signify
new POIs or trending events.  This package provides the sequential
baseline and the distributed version, which must agree (property-tested).
"""

from .dbscan import dbscan, ClusteringResult, NOISE
from .grid import GridPartitioner, GridCell
from .mr_dbscan import mr_dbscan

__all__ = [
    "dbscan",
    "ClusteringResult",
    "NOISE",
    "GridPartitioner",
    "GridCell",
    "mr_dbscan",
]
