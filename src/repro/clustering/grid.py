"""Spatial grid partitioning with eps-halos for MR-DBSCAN."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ValidationError
from ..geo import BoundingBox, GeoPoint


@dataclass
class GridCell:
    """One MR-DBSCAN partition.

    ``inner`` holds indexes of points the cell *owns*; ``halo`` holds
    indexes of points within eps of the cell border, replicated from
    neighbouring cells so local DBSCAN sees full neighborhoods.
    """

    cell_id: Tuple[int, int]
    box: BoundingBox
    inner: List[int] = field(default_factory=list)
    halo: List[int] = field(default_factory=list)

    @property
    def all_indexes(self) -> List[int]:
        return self.inner + self.halo


class GridPartitioner:
    """Cuts space into cells of at least ``2*eps`` on a side.

    The 2*eps lower bound guarantees a point's whole eps-neighborhood is
    contained in its own cell plus the halo — the correctness condition
    of MR-DBSCAN's local step.
    """

    def __init__(self, eps_m: float, target_cells: int = 16) -> None:
        if eps_m <= 0:
            raise ValidationError("eps_m must be positive")
        if target_cells < 1:
            raise ValidationError("target_cells must be >= 1")
        self.eps_m = eps_m
        self.target_cells = target_cells

    def partition(self, points: Sequence[GeoPoint]) -> List[GridCell]:
        """Assign points to grid cells and build each cell's halo."""
        points = list(points)
        if not points:
            return []
        bbox = BoundingBox.from_points(points)
        # Degenerate boxes (all points identical) become a single cell.
        span = bbox.expand_m(self.eps_m)

        side = max(1, int(math.sqrt(self.target_cells)))
        rows = cols = side
        # Enforce the 2*eps minimum cell dimension.
        from ..geo.distance import METERS_PER_DEG_LAT, meters_per_deg_lon

        lat_extent_m = (span.max_lat - span.min_lat) * METERS_PER_DEG_LAT
        mid_lat = (span.min_lat + span.max_lat) / 2.0
        lon_extent_m = (span.max_lon - span.min_lon) * meters_per_deg_lon(mid_lat)
        max_rows = max(1, int(lat_extent_m / (2.0 * self.eps_m)))
        max_cols = max(1, int(lon_extent_m / (2.0 * self.eps_m)))
        rows = min(rows, max_rows)
        cols = min(cols, max_cols)

        boxes = span.split_grid(rows, cols)
        cells: Dict[Tuple[int, int], GridCell] = {}
        for r in range(rows):
            for c in range(cols):
                cells[(r, c)] = GridCell(cell_id=(r, c), box=boxes[r * cols + c])

        dlat = (span.max_lat - span.min_lat) / rows
        dlon = (span.max_lon - span.min_lon) / cols

        def owner_of(p: GeoPoint) -> Tuple[int, int]:
            r = min(rows - 1, max(0, int((p.lat - span.min_lat) / max(dlat, 1e-12))))
            c = min(cols - 1, max(0, int((p.lon - span.min_lon) / max(dlon, 1e-12))))
            return (r, c)

        for idx, p in enumerate(points):
            cells[owner_of(p)].inner.append(idx)

        # Halo replication: a point joins the halo of every *other* cell
        # whose eps-expanded box contains it.
        expanded = {
            cid: cell.box.expand_m(self.eps_m) for cid, cell in cells.items()
        }
        for idx, p in enumerate(points):
            owner = owner_of(p)
            r0, c0 = owner
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    cid = (r0 + dr, c0 + dc)
                    if cid == owner or cid not in cells:
                        continue
                    if expanded[cid].contains(p):
                        cells[cid].halo.append(idx)

        return [cell for cell in cells.values() if cell.inner or cell.halo]
