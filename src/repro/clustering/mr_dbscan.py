"""MR-DBSCAN: distributed density-based clustering (He et al., 2011).

The structure follows the paper the platform cites [7]:

1. **Partition**: the space is cut into grid cells; each cell holds the
   points it owns plus an *eps-halo* of replicated border points, so a
   cell-local neighborhood query is exact for owned points.
2. **Local clustering (map)**: every cell runs sequential DBSCAN on its
   own + halo points and emits, per point, its local cluster membership
   and whether the point is core (exact for owned points).
3. **Merge (reduce)**: local clusters that share a *globally core* point
   are the same global cluster; a union-find stitches them together and
   points are relabeled.

Equivalence with sequential DBSCAN on core-point structure is guaranteed
(and property-tested): border-point assignment is order-dependent in
DBSCAN itself, so only core membership is comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..geo import GeoPoint
from ..mapreduce import JobRunner, MapReduceJob
from .dbscan import NOISE, ClusteringResult, _NeighborGrid, dbscan
from .grid import GridCell, GridPartitioner


class _UnionFind:
    """Disjoint sets over hashable keys with path compression."""

    def __init__(self) -> None:
        self._parent: Dict = {}

    def find(self, key):
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def _local_cluster(cell: GridCell, points, eps_m: float, min_points: int):
    """Map task: DBSCAN inside one cell.

    Returns ``(point_index, local_cluster_key, is_core, is_inner)``
    tuples; ``local_cluster_key`` is globally unique via the cell id.
    """
    subset_indexes = cell.all_indexes
    subset_points = [points[i] for i in subset_indexes]
    result = dbscan(subset_points, eps_m, min_points)

    # Exact core status for owned points: DBSCAN's labels don't expose
    # coreness, so recompute neighborhood sizes on the local grid.
    local_grid = _NeighborGrid(subset_points, eps_m)
    inner_set = set(range(len(cell.inner)))  # inner points come first
    records = []
    for local_idx, global_idx in enumerate(subset_indexes):
        label = result.labels[local_idx]
        if label == NOISE:
            continue
        is_core = len(local_grid.neighbors(local_idx)) >= min_points
        is_inner = local_idx in inner_set
        records.append(
            (global_idx, (cell.cell_id, label), is_core, is_inner)
        )
    return records


def mr_dbscan(
    points: Sequence[GeoPoint],
    eps_m: float,
    min_points: int,
    target_partitions: int = 16,
    runner: Optional[JobRunner] = None,
) -> ClusteringResult:
    """Distributed DBSCAN over ``points``.

    Parameters mirror :func:`~repro.clustering.dbscan.dbscan`, plus the
    number of grid partitions (map tasks).
    """
    if eps_m <= 0:
        raise ValidationError("eps_m must be positive")
    if min_points < 1:
        raise ValidationError("min_points must be >= 1")

    points = list(points)
    n = len(points)
    if n == 0:
        return ClusteringResult(labels=[], num_clusters=0)

    partitioner = GridPartitioner(eps_m=eps_m, target_cells=target_partitions)
    cells = partitioner.partition(points)

    own_runner = runner is None
    runner = runner or JobRunner(max_workers=min(8, max(1, len(cells))))

    def mapper(cell, emit, counters):
        for global_idx, cluster_key, is_core, is_inner in _local_cluster(
            cell, points, eps_m, min_points
        ):
            emit(global_idx, (cluster_key, is_core, is_inner))
        counters.increment("cells_processed")

    def reducer(point_idx, memberships, emit, counters):
        emit(point_idx, list(memberships))

    job = MapReduceJob(
        name="mr-dbscan",
        mapper=mapper,
        reducer=reducer,
        num_mappers=max(1, len(cells)),
        num_reducers=4,
    )
    try:
        result = runner.run(job, cells)
    finally:
        if own_runner:
            runner.shutdown()

    # ---- merge phase: union local clusters through globally-core points
    uf = _UnionFind()
    memberships_by_point: Dict[int, List[Tuple]] = {}
    for point_idx, memberships in result.pairs:
        memberships_by_point[point_idx] = memberships
        # Globally core = core in the owner cell (exact neighborhoods).
        globally_core = any(
            is_core for (_key, is_core, is_inner) in memberships if is_inner
        )
        if globally_core:
            keys = [key for (key, _c, _i) in memberships]
            for other in keys[1:]:
                uf.union(keys[0], other)

    # ---- relabel: owned membership decides each point's cluster
    labels = [NOISE] * n
    root_to_id: Dict = {}
    for point_idx, memberships in memberships_by_point.items():
        chosen = None
        for key, _is_core, is_inner in memberships:
            if is_inner:
                chosen = key
                break
        if chosen is None:
            chosen = memberships[0][0]
        root = uf.find(chosen)
        if root not in root_to_id:
            root_to_id[root] = len(root_to_id)
        labels[point_idx] = root_to_id[root]

    return ClusteringResult(labels=labels, num_clusters=len(root_to_id))
