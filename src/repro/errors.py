"""Exception hierarchy for the MoDisSENSE reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch platform failures with a single ``except`` clause while
still being able to discriminate between storage, query, and processing
failures when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """Base class for errors raised by the storage substrates."""


class TableNotFoundError(StorageError):
    """A referenced table does not exist."""


class TableExistsError(StorageError):
    """Attempted to create a table that already exists."""


class ColumnFamilyNotFoundError(StorageError):
    """A mutation or read referenced an undeclared HBase column family."""


class RegionNotFoundError(StorageError):
    """No region of a table covers the requested row key."""


class SchemaError(StorageError):
    """A row violates the declared relational schema."""


class IndexError_(StorageError):
    """An index lookup referenced a column without an index.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has unrelated semantics.
    """


class QueryError(ReproError):
    """A query was malformed or referenced unknown entities."""


class PlannerError(QueryError):
    """The relational planner could not produce a plan for a query."""


class CoprocessorError(ReproError):
    """A region coprocessor raised during region-local execution."""


class ChecksumError(StorageError):
    """A store-file block or WAL record failed checksum verification.

    Raised on the read path the moment corrupt bytes would otherwise be
    served — a corrupt block is *never* silently decoded.  The scheduled
    scrubber repairs such blocks from the WAL (live tail + archive) or
    quarantines them when no intact source remains."""


class RegionUnavailableError(StorageError):
    """A region could not serve a request (server down, data unavailable,
    or an injected fault).  The resilient fan-out retries/hedges these;
    callers only see one when every recovery avenue is exhausted."""


class QueryDeadlineExceeded(QueryError):
    """A query's whole-query deadline budget was exhausted before every
    region answered (raised only in strict-deadline mode; the default is
    graceful degradation to the surviving partial results)."""


class QueryCancelled(QueryError):
    """A region scan observed its cancellation token tripped — the
    query's deadline budget is blown or the caller abandoned it — and
    aborted mid-scan rather than keep burning CPU on an answer nobody
    can use.  In strict-deadline mode the fan-out surfaces this as
    :class:`QueryDeadlineExceeded`; otherwise the query degrades to the
    partials that completed before the trip."""


class OverloadedError(ReproError):
    """Admission control rejected the request: the platform is shedding
    load to protect goodput (HTTP 429 at the REST boundary).

    ``retry_after_s`` is the client's backoff hint — the ``Retry-After``
    header value an HTTP gateway should attach."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DegradedResultWarning(UserWarning):
    """A query completed from partial results: one or more regions never
    answered within the retry/hedge budget.  Carries no data — inspect
    ``SearchResult.missing_regions`` / ``coverage`` for the specifics."""


class BackpressureError(StorageError):
    """The streaming ingest tier refused a write because its bounded
    queue stayed full: either the partition's applier cannot keep up
    (``shed`` policy rejects immediately) or a blocking producer's wait
    budget expired.  No delta is lost — the rejected visit was never
    enqueued, so the producer can retry or divert to a spill path."""


class MapReduceError(ReproError):
    """A MapReduce job failed."""


class AuthenticationError(ReproError):
    """OAuth-style authentication with a social network failed."""


class PluginError(ReproError):
    """A social-network plugin is missing or misbehaved."""


class NotTrainedError(ReproError):
    """A classifier was used before :meth:`train` was called."""


class ValidationError(ReproError):
    """A user-supplied request failed validation at the API boundary."""
