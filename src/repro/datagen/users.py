"""Synthetic social-network user population."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..config import PAPER_NUM_USERS
from ..errors import ValidationError

_FIRST_NAMES = (
    "Yannis", "Maria", "Nikos", "Eleni", "Kostas", "Sofia", "Dimitris",
    "Katerina", "Giorgos", "Anna", "Petros", "Ioanna", "Christos",
    "Despina", "Alexis", "Zoe",
)
#: Canonical short prefixes for the supported networks.
_NETWORK_PREFIXES = {
    "facebook": "fb",
    "twitter": "tw",
    "foursquare": "fq",
}

_LAST_NAMES = (
    "Papadopoulos", "Nikolaou", "Georgiou", "Dimitriou", "Ioannou",
    "Konstantinou", "Vasileiou", "Christou", "Antoniou", "Makris",
    "Economou", "Alexiou",
)


@dataclass(frozen=True)
class UserRecord:
    """One social-network user.

    ``network_user_id`` follows the ``<network>_<numeric>`` convention
    the simulated networks expect.
    """

    user_id: int
    name: str
    network: str
    network_user_id: str
    picture_url: str


def generate_users(
    count: int = PAPER_NUM_USERS,
    network: str = "facebook",
    seed: int = 2015,
) -> List[UserRecord]:
    """Generate ``count`` users on one network."""
    if count < 1:
        raise ValidationError("count must be >= 1")
    rng = random.Random(seed)
    prefix = _NETWORK_PREFIXES.get(network, network[:2])
    users: List[UserRecord] = []
    for user_id in range(1, count + 1):
        name = "%s %s" % (rng.choice(_FIRST_NAMES), rng.choice(_LAST_NAMES))
        users.append(
            UserRecord(
                user_id=user_id,
                name=name,
                network=network,
                network_user_id="%s_%d" % (prefix, user_id),
                picture_url="https://img.example/%s/%d.jpg" % (network, user_id),
            )
        )
    return users
