"""Synthetic visit histories.

Paper Section 3.1: "we emulated the activity of 150k different social
network users, each of whom has visited a number of POIs and assigned a
grade to it ... The number of visits for each social network friend
follows the Normal Distribution with mu = 170 and sigma = 101."  The
footnote adds that the vast majority performed 140–200 visits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..config import PAPER_VISITS_MEAN, PAPER_VISITS_STD
from ..errors import ValidationError
from .pois import POIRecord


@dataclass(frozen=True)
class VisitRecord:
    """One user's visit to a POI, with the comment-classification grade.

    ``grade`` in [0, 1] "corresponds to the classification grade of the
    comment of the user for this visit".
    """

    user_id: int
    poi_id: int
    timestamp: int
    grade: float
    #: Denormalized POI attributes, mirroring the paper's replicated
    #: visit struct ("the whole POI information", Section 2.1).
    poi_name: str
    lat: float
    lon: float
    keywords: tuple


def visits_per_user(
    rng: random.Random,
    mean: float = PAPER_VISITS_MEAN,
    std: float = PAPER_VISITS_STD,
) -> int:
    """Sample one user's visit count: Normal(170, 101), floored at 0."""
    return max(0, int(round(rng.gauss(mean, std))))


def generate_visits(
    user_ids: Sequence[int],
    pois: Sequence[POIRecord],
    seed: int = 2015,
    mean: float = PAPER_VISITS_MEAN,
    std: float = PAPER_VISITS_STD,
    time_range: tuple = (1_400_000_000, 1_430_000_000),
) -> Iterator[VisitRecord]:
    """Yield visits for every user, lazily (150k users x 170 visits is
    ~25M records at paper scale — callers stream them into HBase).

    Each user frequents a personal subset of POIs with a per-(user, poi)
    taste bias, so friend sets share preferences the way the demo's
    "fast-food friends vs luxury friends" scenario assumes.
    """
    if not pois:
        raise ValidationError("need at least one POI")
    rng = random.Random(seed)
    t0, t1 = time_range
    if t0 >= t1:
        raise ValidationError("time_range must be increasing")

    for user_id in user_ids:
        count = visits_per_user(rng, mean, std)
        if count == 0:
            continue
        # Personal POI repertoire: ~10-40 favourite places.
        repertoire_size = min(len(pois), rng.randint(10, 40))
        repertoire = rng.sample(range(len(pois)), repertoire_size)
        # Per-user disposition: some users are cheerful reviewers.
        disposition = rng.betavariate(4, 3)
        for _ in range(count):
            poi = pois[rng.choice(repertoire)]
            grade = min(1.0, max(0.0, rng.gauss(disposition, 0.18)))
            yield VisitRecord(
                user_id=user_id,
                poi_id=poi.poi_id,
                timestamp=rng.randint(t0, t1 - 1),
                grade=grade,
                poi_name=poi.name,
                lat=poi.lat,
                lon=poi.lon,
                keywords=poi.keywords,
            )
