"""Synthetic Tripadvisor-like review corpus.

Substitutes the paper's crawled Tripadvisor corpus (Section 3.2): hotel /
restaurant / attraction reviews carrying a 1–5 star rating used as the
classification label.

The generator is engineered so that each of the paper's classifier
optimizations has a *mechanical* reason to help, and so the Figure 4
accuracy-vs-size curve keeps its shape.  Documents come in three modes:

- **explicit** (~50%): unambiguous polar vocabulary — any classifier
  gets these right;
- **collocation** (~26%): polarity is carried *only* by modifier+head
  word pairs whose component unigrams are class-balanced (each modifier
  and head appears equally often in positive and negative reviews) — a
  2-gram feature separates them, presence-unigrams cannot;
- **intensity** (~24%): polarity is carried *only* by repetition — both
  classes mention the same opinion words, but the matching class repeats
  them 3–5x while the other mentions them once — tf weighting separates
  them, 0/1 presence cannot.

A long tail of rare, spuriously class-correlated noise words rewards
BNS feature selection and rare-word pruning, and documents past
``noise_onset * capacity`` carry growing label noise (vocabulary drift
in the crawl's tail), so *training* accuracy degrades once the training
set crosses the knee — the paper's "500k documents form a threshold ...
after this point accuracy degrades".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ValidationError

POSITIVE_WORDS = (
    "excellent", "amazing", "wonderful", "delicious", "fantastic",
    "lovely", "perfect", "friendly", "charming", "superb", "delightful",
    "gorgeous", "tasty", "cozy", "impeccable", "stunning",
)
NEGATIVE_WORDS = (
    "terrible", "awful", "horrible", "disgusting", "rude", "dirty",
    "bland", "overpriced", "noisy", "disappointing", "stale", "shabby",
    "cramped", "greasy", "dreadful", "filthy",
)

#: Collocation vocabulary: every modifier and head occurs in both
#: classes; only the *pair* is diagnostic (assigned below by hash).
COLLOCATION_MODIFIERS = (
    "surprisingly", "remarkably", "notably", "oddly", "distinctly",
    "plainly", "utterly", "weirdly",
)
COLLOCATION_HEADS = (
    "clean", "quiet", "service", "portion", "decor", "staff", "location",
    "atmosphere",
)

#: Intensity vocabulary: appears in BOTH classes; positive reviews
#: repeat "warm" words, negative reviews repeat "cold" words.
INTENSITY_WARM = ("pleasant", "enjoyable", "welcoming", "fresh")
INTENSITY_COLD = ("mediocre", "tired", "crowded", "slow")

NEUTRAL_FILLER = (
    "hotel", "room", "restaurant", "menu", "table", "visit", "trip",
    "night", "day", "city", "place", "area", "time", "price", "meal",
    "breakfast", "view", "street", "museum", "beach", "walk", "tour",
    "family", "evening", "lunch", "booking", "window", "door", "plate",
)

#: Rare-noise vocabulary size: each noise word is randomly assigned a
#: class at generation time, creating spurious correlations that only
#: feature selection / pruning can suppress.
NOISE_VOCAB_SIZE = 4000


def _pair_polarity(modifier: str, head: str) -> int:
    """Deterministic polarity of a modifier+head collocation.

    An FNV-1a hash keeps the mapping stable across processes (Python's
    ``hash`` is salted) while looking arbitrary, so unigram marginals
    stay balanced.
    """
    h = 0xCBF29CE484222325
    for byte in ("%s %s" % (modifier, head)).encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 1


@dataclass(frozen=True)
class ReviewRecord:
    """One labelled review document."""

    doc_id: int
    text: str
    rating: int  # 1..5 stars, as Tripadvisor annotates
    label: int  # binarized: 1 positive, 0 negative


class ReviewGenerator:
    """Deterministic, index-addressable review corpus.

    ``document(i)`` always returns the same review for the same seed, so
    growing training sets are *prefixes* of one corpus — exactly how the
    paper sweeps training sizes.

    Parameters
    ----------
    capacity:
        The notional full-corpus size the noise schedule spans.
    noise_onset:
        Fraction of ``capacity`` after which label noise ramps up.
    max_noise:
        Label-flip probability reached at index ``capacity``.
    """

    def __init__(
        self,
        seed: int = 2015,
        capacity: int = 100_000,
        noise_onset: float = 0.3,
        max_noise: float = 0.35,
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        if not 0.0 <= noise_onset <= 1.0:
            raise ValidationError("noise_onset must be in [0, 1]")
        if not 0.0 <= max_noise <= 0.5:
            raise ValidationError("max_noise must be in [0, 0.5]")
        self.seed = seed
        self.capacity = capacity
        self.noise_onset = noise_onset
        self.max_noise = max_noise
        vocab_rng = random.Random(seed ^ 0x5EED)
        self._noise_words: List[Tuple[str, int]] = [
            ("zq%04d" % i, vocab_rng.randint(0, 1))
            for i in range(NOISE_VOCAB_SIZE)
        ]
        # Pre-compute collocations per polarity.
        self._collocations = {0: [], 1: []}
        for modifier in COLLOCATION_MODIFIERS:
            for head in COLLOCATION_HEADS:
                self._collocations[_pair_polarity(modifier, head)].append(
                    (modifier, head)
                )

    # -------------------------------------------------------- generation

    def _noise_probability(self, doc_id: int) -> float:
        onset = self.noise_onset * self.capacity
        if doc_id <= onset:
            return 0.04  # crawl-quality floor: mislabeled stars exist
        span = max(1.0, self.capacity - onset)
        ramp = min(1.0, (doc_id - onset) / span)
        return 0.04 + ramp * (self.max_noise - 0.04)

    def _explicit_words(self, rng, label: int, intensity: int) -> List[str]:
        polar = POSITIVE_WORDS if label == 1 else NEGATIVE_WORDS
        words = [rng.choice(polar) for _ in range(rng.randint(1, intensity))]
        # Mild reviews sometimes mention the opposite polarity too
        # ("good food but rude staff").
        if rng.random() < 0.30:
            other = NEGATIVE_WORDS if label == 1 else POSITIVE_WORDS
            words.append(rng.choice(other))
        return words

    def _collocation_words(self, rng, label: int) -> List[str]:
        words: List[str] = []
        for _ in range(2):
            modifier, head = rng.choice(self._collocations[label])
            words.extend((modifier, head))
        # Balance unigram marginals further: a lone modifier and a lone
        # head (not adjacent) from the *other* polarity's pool.
        other_mod, other_head = rng.choice(self._collocations[1 - label])
        words.append(other_mod)
        words.insert(0, other_head)
        return words

    def _intensity_words(self, rng, label: int) -> List[str]:
        warm = rng.choice(INTENSITY_WARM)
        cold = rng.choice(INTENSITY_COLD)
        if label == 1:
            return [warm] * rng.randint(3, 5) + [cold]
        return [cold] * rng.randint(3, 5) + [warm]

    def document(self, doc_id: int) -> ReviewRecord:
        """The ``doc_id``-th review (deterministic)."""
        rng = random.Random((self.seed << 20) ^ doc_id)
        # Ratings 3 are dropped by binarization; skew toward the poles
        # so "both sets have almost the same cardinality" (Section 3.2).
        rating = rng.choices((1, 2, 4, 5), weights=(22, 28, 28, 22))[0]
        true_label = 1 if rating >= 4 else 0
        intensity = {1: 3, 2: 2, 4: 2, 5: 3}[rating]

        mode = rng.random()
        if mode < 0.50:
            signal = self._explicit_words(rng, true_label, intensity)
        elif mode < 0.76:
            signal = self._collocation_words(rng, true_label)
        else:
            signal = self._intensity_words(rng, true_label)

        # Neutral filler dominates volume, as in real reviews.  Filler is
        # appended *around* the signal so collocations stay adjacent.
        prefix = [rng.choice(NEUTRAL_FILLER) for _ in range(rng.randint(4, 8))]
        suffix = [rng.choice(NEUTRAL_FILLER) for _ in range(rng.randint(4, 8))]
        # Rare noise words with spurious class correlation.
        for _ in range(rng.randint(1, 3)):
            word, noise_class = rng.choice(self._noise_words)
            if noise_class == true_label or rng.random() < 0.35:
                suffix.append(word)

        words = prefix + signal + suffix

        # Label noise per the drift schedule: the *recorded* star rating
        # disagrees with the text's polarity.
        label = true_label
        if rng.random() < self._noise_probability(doc_id):
            label = 1 - true_label
            rating = rng.choice((4, 5)) if label == 1 else rng.choice((1, 2))

        return ReviewRecord(
            doc_id=doc_id,
            text=" ".join(words),
            rating=rating,
            label=label,
        )

    def generate(self, count: int, start: int = 0) -> List[ReviewRecord]:
        """Reviews ``start .. start+count-1``."""
        if count < 0:
            raise ValidationError("count must be >= 0")
        return [self.document(i) for i in range(start, start + count)]

    def labeled_texts(self, count: int, start: int = 0) -> List[Tuple[str, int]]:
        """``(text, label)`` pairs ready for the sentiment pipeline."""
        return [(r.text, r.label) for r in self.generate(count, start)]
