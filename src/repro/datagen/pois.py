"""Synthetic POIs over the Greece bounding box.

Stands in for the paper's OpenStreetMap extract: "information from
OpenStreetMap about 8500 POIs located in Greece" (Section 3.1).  POIs
cluster around real Greek city centers with a density profile that
thins with distance, and each carries a category plus keyword list —
the searchable attributes of the POI Repository.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GREECE_BBOX, PAPER_NUM_POIS
from ..errors import ValidationError

#: (name, lat, lon, weight) — larger weight, more POIs nearby.
GREEK_CITIES: Tuple = (
    ("Athens", 37.9838, 23.7275, 0.42),
    ("Thessaloniki", 40.6401, 22.9444, 0.18),
    ("Patras", 38.2466, 21.7346, 0.08),
    ("Heraklion", 35.3387, 25.1442, 0.08),
    ("Larissa", 39.6390, 22.4191, 0.06),
    ("Volos", 39.3622, 22.9420, 0.05),
    ("Ioannina", 39.6650, 20.8537, 0.05),
    ("Chania", 35.5138, 24.0180, 0.04),
    ("Rhodes", 36.4341, 28.2176, 0.04),
)

#: Category -> keywords a POI of that category may carry.
POI_CATEGORIES: Dict[str, List[str]] = {
    "restaurant": ["restaurant", "food", "dinner", "taverna", "grill"],
    "fastfood": ["fastfood", "burger", "souvlaki", "pizza", "snack"],
    "cafe": ["cafe", "coffee", "espresso", "breakfast"],
    "bar": ["bar", "drinks", "cocktail", "nightlife"],
    "museum": ["museum", "art", "history", "culture"],
    "beach": ["beach", "sea", "swim", "sun"],
    "hotel": ["hotel", "stay", "rooms", "resort"],
    "park": ["park", "green", "walk", "playground"],
    "theater": ["theater", "show", "concert", "stage"],
    "shop": ["shop", "market", "mall", "souvenir"],
}

_NAME_PREFIXES = (
    "Blue", "Golden", "Old", "Royal", "Little", "Grand", "Sunny",
    "Ancient", "Marble", "Olive",
)
_NAME_SUFFIXES = (
    "Corner", "House", "Garden", "Plaza", "Terrace", "Harbor", "View",
    "Square", "Court", "Grove",
)


@dataclass(frozen=True)
class POIRecord:
    """One generated point of interest."""

    poi_id: int
    name: str
    lat: float
    lon: float
    category: str
    keywords: Tuple
    city: str


def generate_pois(
    count: int = PAPER_NUM_POIS,
    seed: int = 2015,
    bbox: Optional[Tuple] = None,
) -> List[POIRecord]:
    """Generate ``count`` POIs with city-clustered spatial distribution."""
    if count < 1:
        raise ValidationError("count must be >= 1")
    rng = random.Random(seed)
    bbox = bbox or GREECE_BBOX
    min_lat, min_lon, max_lat, max_lon = bbox

    cities = list(GREEK_CITIES)
    weights = [c[3] for c in cities]
    categories = list(POI_CATEGORIES)

    pois: List[POIRecord] = []
    for poi_id in range(1, count + 1):
        city_name, city_lat, city_lon, _w = rng.choices(cities, weights)[0]
        # Exponential falloff from the center, ~0.5-5 km typical.
        radius_deg = rng.expovariate(1.0 / 0.02)
        angle = rng.uniform(0.0, 6.283185307)
        lat = city_lat + radius_deg * _cos(angle)
        lon = city_lon + radius_deg * _sin(angle)
        lat = min(max(lat, min_lat), max_lat)
        lon = min(max(lon, min_lon), max_lon)

        category = rng.choice(categories)
        base_keywords = POI_CATEGORIES[category]
        keyword_count = rng.randint(2, len(base_keywords))
        keywords = tuple(rng.sample(base_keywords, keyword_count))
        name = "%s %s %s" % (
            rng.choice(_NAME_PREFIXES),
            category.capitalize(),
            rng.choice(_NAME_SUFFIXES),
        )
        pois.append(
            POIRecord(
                poi_id=poi_id,
                name=name,
                lat=lat,
                lon=lon,
                category=category,
                keywords=keywords,
                city=city_name,
            )
        )
    return pois


def _cos(x: float) -> float:
    import math

    return math.cos(x)


def _sin(x: float) -> float:
    import math

    return math.sin(x)
