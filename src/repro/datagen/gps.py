"""Synthetic GPS traces for event detection and trajectory inference.

The Event Detection Module clusters raw traces: "a dense concentration
of traces signifies a POI existence" (Section 1).  The generator builds
three kinds of points:

- **hotspots**: tight Gaussian clouds of many users' points — the
  spontaneous gatherings (concerts, traffic jams) the module must find;
- **known-POI activity**: points near already-registered POIs, which the
  module filters out before clustering;
- **background wander**: sparse commuting noise that must stay noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..geo import GeoPoint
from ..geo.distance import offset_point_m
from .pois import POIRecord


@dataclass(frozen=True)
class GPSPoint:
    """One trace sample pushed by a mobile device."""

    user_id: int
    lat: float
    lon: float
    timestamp: int


@dataclass
class TraceScenario:
    """Everything a test/bench needs to verify event detection."""

    points: List[GPSPoint]
    #: Ground-truth hotspot centers the detector should recover.
    hotspot_centers: List[GeoPoint]
    #: Points generated around known POIs (should be filtered).
    near_known_poi_count: int
    #: Background noise points (should remain noise).
    background_count: int


def generate_traces(
    user_ids: Sequence[int],
    known_pois: Sequence[POIRecord],
    num_hotspots: int = 5,
    points_per_hotspot: int = 120,
    hotspot_radius_m: float = 25.0,
    near_poi_points: int = 200,
    background_points: int = 400,
    center: Tuple[float, float] = (37.9838, 23.7275),
    area_radius_m: float = 5000.0,
    seed: int = 2015,
    time_range: Tuple[int, int] = (1_420_000_000, 1_420_086_400),
) -> TraceScenario:
    """Build a full trace scenario around one city center."""
    if not user_ids:
        raise ValidationError("need at least one user")
    if num_hotspots < 0:
        raise ValidationError("num_hotspots must be >= 0")
    rng = random.Random(seed)
    t0, t1 = time_range
    center_lat, center_lon = center

    def random_ts() -> int:
        return rng.randint(t0, t1 - 1)

    def pick_user() -> int:
        return rng.choice(list(user_ids))

    points: List[GPSPoint] = []

    # Hotspots: placed far enough apart not to merge under DBSCAN.
    hotspot_centers: List[GeoPoint] = []
    attempts = 0
    while len(hotspot_centers) < num_hotspots and attempts < num_hotspots * 50:
        attempts += 1
        north = rng.uniform(-area_radius_m, area_radius_m)
        east = rng.uniform(-area_radius_m, area_radius_m)
        lat, lon = offset_point_m(center_lat, center_lon, north, east)
        candidate = GeoPoint(lat, lon)
        if any(candidate.distance_m(h) < 400.0 for h in hotspot_centers):
            continue
        if any(
            candidate.distance_m(GeoPoint(p.lat, p.lon)) < 400.0
            for p in known_pois
        ):
            continue
        hotspot_centers.append(candidate)
    for hotspot in hotspot_centers:
        for _ in range(points_per_hotspot):
            north = rng.gauss(0.0, hotspot_radius_m)
            east = rng.gauss(0.0, hotspot_radius_m)
            lat, lon = offset_point_m(hotspot.lat, hotspot.lon, north, east)
            points.append(
                GPSPoint(
                    user_id=pick_user(), lat=lat, lon=lon, timestamp=random_ts()
                )
            )

    # Activity near known POIs (the filter's target).
    near_known = 0
    if known_pois:
        for _ in range(near_poi_points):
            poi = rng.choice(list(known_pois))
            north = rng.gauss(0.0, 15.0)
            east = rng.gauss(0.0, 15.0)
            lat, lon = offset_point_m(poi.lat, poi.lon, north, east)
            points.append(
                GPSPoint(
                    user_id=pick_user(), lat=lat, lon=lon, timestamp=random_ts()
                )
            )
            near_known += 1

    # Background wander: uniform over the area, too sparse to cluster.
    for _ in range(background_points):
        north = rng.uniform(-area_radius_m, area_radius_m)
        east = rng.uniform(-area_radius_m, area_radius_m)
        lat, lon = offset_point_m(center_lat, center_lon, north, east)
        points.append(
            GPSPoint(user_id=pick_user(), lat=lat, lon=lon, timestamp=random_ts())
        )

    rng.shuffle(points)
    return TraceScenario(
        points=points,
        hotspot_centers=hotspot_centers,
        near_known_poi_count=near_known,
        background_count=background_points,
    )
