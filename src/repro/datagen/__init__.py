"""Synthetic workload generators.

The paper's evaluation uses: ~8500 OpenStreetMap POIs in Greece, 150k
social-network users whose visit counts follow Normal(170, 101), and a
crawled Tripadvisor review corpus for classifier training.  None of that
data ships with the paper, so these generators produce statistically
matching substitutes with fixed seeds (substitutions documented in
DESIGN.md Section 2).
"""

from .pois import POIRecord, generate_pois, POI_CATEGORIES
from .users import UserRecord, generate_users
from .visits import VisitRecord, generate_visits, visits_per_user
from .reviews import ReviewRecord, ReviewGenerator
from .gps import GPSPoint, generate_traces, TraceScenario
from .social_setup import TasteProfile, PopulationResult, populate_network

__all__ = [
    "POIRecord",
    "generate_pois",
    "POI_CATEGORIES",
    "UserRecord",
    "generate_users",
    "VisitRecord",
    "generate_visits",
    "visits_per_user",
    "ReviewRecord",
    "ReviewGenerator",
    "GPSPoint",
    "generate_traces",
    "TraceScenario",
    "TasteProfile",
    "PopulationResult",
    "populate_network",
]
