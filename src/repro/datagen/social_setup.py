"""Bulk population of simulated social networks.

Examples, tests and benches all need the same setup: profiles on a
network, an ego's friend circle, and check-ins with opinionated
comments at known POIs.  :func:`populate_network` builds that in one
call with controllable taste profiles, so scenario code stays about the
scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..social import CheckIn, FriendInfo, SimulatedNetwork
from .pois import POIRecord
from .users import generate_users

POSITIVE_COMMENTS = (
    "excellent delicious wonderful evening",
    "superb impeccable lovely dinner",
    "charming cozy fantastic place",
    "gorgeous stunning view, perfect service",
)
NEGATIVE_COMMENTS = (
    "overpriced bland disappointing",
    "rude staff, dirty tables, awful",
    "noisy crowded greasy food",
    "stale dreadful meal, filthy floor",
)


@dataclass
class TasteProfile:
    """What a friend circle likes and dislikes."""

    loves: Sequence[POIRecord]
    hates: Sequence[POIRecord] = ()
    checkins_per_friend: int = 5
    hate_checkins_per_friend: int = 0


@dataclass
class PopulationResult:
    """Everything the caller needs to drive the scenario afterwards."""

    ego_id: str
    friend_ids: List[str]
    #: Numeric ids of the friends (what SearchQuery.friend_ids takes).
    friend_numeric_ids: Tuple
    checkins_added: int


def populate_network(
    network: SimulatedNetwork,
    profile: TasteProfile,
    num_friends: int = 10,
    ego_name: str = "Ego",
    start_user_id: int = 1,
    time_range: Tuple[int, int] = (1_000, 10_000),
    seed: int = 2015,
) -> PopulationResult:
    """Create an ego + friend circle and their opinionated check-ins.

    Friends get ``checkins_per_friend`` loving visits to places in
    ``profile.loves`` and ``hate_checkins_per_friend`` negative ones to
    ``profile.hates``.  User ids are allocated from ``start_user_id`` so
    multiple circles can coexist on one network without collisding.
    """
    if num_friends < 1:
        raise ValidationError("num_friends must be >= 1")
    if not profile.loves:
        raise ValidationError("the taste profile needs loved POIs")
    if profile.hate_checkins_per_friend > 0 and not profile.hates:
        raise ValidationError("hate check-ins need hated POIs")
    t0, t1 = time_range
    if t0 >= t1:
        raise ValidationError("time_range must be increasing")

    rng = random.Random(seed)
    users = generate_users(
        count=num_friends + 1, network=network.name, seed=seed
    )
    # Re-number so circles can stack on one network.
    prefix = users[0].network_user_id.split("_")[0]
    ego_id = "%s_%d" % (prefix, start_user_id)
    friend_ids = [
        "%s_%d" % (prefix, start_user_id + i)
        for i in range(1, num_friends + 1)
    ]

    network.add_profile(FriendInfo(ego_id, ego_name, "pic"))
    for idx, friend_id in enumerate(friend_ids):
        network.add_profile(
            FriendInfo(friend_id, users[idx + 1].name, "pic")
        )
        network.add_friendship(ego_id, friend_id)

    added = 0
    for friend_id in friend_ids:
        for _ in range(profile.checkins_per_friend):
            poi = rng.choice(list(profile.loves))
            network.add_checkin(
                CheckIn(friend_id, poi.poi_id, poi.lat, poi.lon,
                        rng.randint(t0, t1 - 1),
                        rng.choice(POSITIVE_COMMENTS))
            )
            added += 1
        for _ in range(profile.hate_checkins_per_friend):
            poi = rng.choice(list(profile.hates))
            network.add_checkin(
                CheckIn(friend_id, poi.poi_id, poi.lat, poi.lon,
                        rng.randint(t0, t1 - 1),
                        rng.choice(NEGATIVE_COMMENTS))
            )
            added += 1

    return PopulationResult(
        ego_id=ego_id,
        friend_ids=friend_ids,
        friend_numeric_ids=tuple(
            start_user_id + i for i in range(1, num_friends + 1)
        ),
        checkins_added=added,
    )
