"""Geohash encoding/decoding.

Geohashes give the platform a cheap, sortable spatial key: HBase row keys
for GPS traces are prefixed with a geohash so that spatially-near traces
land in the same region, and the MR-DBSCAN partitioner uses geohash cells
as its grid.
"""

from __future__ import annotations

from ..errors import ValidationError

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(_BASE32)}


def geohash_encode(lat: float, lon: float, precision: int = 9) -> str:
    """Encode a lat/lon pair into a geohash of ``precision`` characters."""
    if not -90.0 <= lat <= 90.0:
        raise ValidationError("latitude out of range: %r" % (lat,))
    if not -180.0 <= lon <= 180.0:
        raise ValidationError("longitude out of range: %r" % (lon,))
    if precision < 1:
        raise ValidationError("precision must be >= 1")

    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars = []
    bit = 0
    current = 0
    even = True  # even bits encode longitude
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                current = (current << 1) | 1
                lon_lo = mid
            else:
                current <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                current = (current << 1) | 1
                lat_lo = mid
            else:
                current <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == 5:
            chars.append(_BASE32[current])
            bit = 0
            current = 0
    return "".join(chars)


def geohash_decode(geohash: str) -> tuple:
    """Decode a geohash to ``(lat, lon, lat_err, lon_err)``.

    The returned point is the cell center; the errors are half the cell
    dimensions.
    """
    if not geohash:
        raise ValidationError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for ch in geohash:
        try:
            value = _BASE32_INDEX[ch]
        except KeyError:
            raise ValidationError("invalid geohash character %r" % ch) from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    lat = (lat_lo + lat_hi) / 2.0
    lon = (lon_lo + lon_hi) / 2.0
    return (lat, lon, (lat_hi - lat_lo) / 2.0, (lon_hi - lon_lo) / 2.0)


def geohash_bbox(geohash: str):
    """Bounding box covered by a geohash cell."""
    from .bbox import BoundingBox

    lat, lon, lat_err, lon_err = geohash_decode(geohash)
    return BoundingBox(lat - lat_err, lon - lon_err, lat + lat_err, lon + lon_err)


def geohash_neighbors(geohash: str) -> list:
    """The eight neighbouring cells of a geohash, same precision.

    Computed by decode → offset → re-encode, which sidesteps the classic
    per-character border lookup tables and is exact away from the poles.
    """
    lat, lon, lat_err, lon_err = geohash_decode(geohash)
    precision = len(geohash)
    neighbors = []
    for dlat in (-1, 0, 1):
        for dlon in (-1, 0, 1):
            if dlat == 0 and dlon == 0:
                continue
            nlat = lat + dlat * 2.0 * lat_err
            nlon = lon + dlon * 2.0 * lon_err
            if not -90.0 <= nlat <= 90.0:
                continue
            # Wrap longitude across the antimeridian.
            if nlon > 180.0:
                nlon -= 360.0
            elif nlon < -180.0:
                nlon += 360.0
            code = geohash_encode(nlat, nlon, precision)
            if code != geohash and code not in neighbors:
                neighbors.append(code)
    return neighbors
