"""Axis-aligned geographic bounding boxes.

The platform's primary query shape is "POIs inside a bounding box on the
map" (paper Section 1), so this type appears in every query request.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from .point import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """A ``[min_lat, max_lat] x [min_lon, max_lon]`` rectangle.

    Boxes crossing the antimeridian are rejected; the paper's dataset
    (Greece) makes that simplification safe.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat:
            raise ValidationError(
                "min_lat %r > max_lat %r" % (self.min_lat, self.max_lat)
            )
        if self.min_lon > self.max_lon:
            raise ValidationError(
                "min_lon %r > max_lon %r" % (self.min_lon, self.max_lon)
            )
        for lat in (self.min_lat, self.max_lat):
            if not -90.0 <= lat <= 90.0:
                raise ValidationError("latitude out of range: %r" % (lat,))
        for lon in (self.min_lon, self.max_lon):
            if not -180.0 <= lon <= 180.0:
                raise ValidationError("longitude out of range: %r" % (lon,))

    @classmethod
    def from_points(cls, points) -> "BoundingBox":
        """Smallest box containing every point in ``points``."""
        pts = list(points)
        if not pts:
            raise ValidationError("cannot build a bounding box from no points")
        lats = [p.lat for p in pts]
        lons = [p.lon for p in pts]
        return cls(min(lats), min(lons), max(lats), max(lons))

    @classmethod
    def from_tuple(cls, t) -> "BoundingBox":
        """Build from ``(min_lat, min_lon, max_lat, max_lon)``."""
        return cls(t[0], t[1], t[2], t[3])

    def contains(self, point: GeoPoint) -> bool:
        """True if ``point`` lies inside the box (borders inclusive)."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def contains_coords(self, lat: float, lon: float) -> bool:
        """Coordinate-pair variant of :meth:`contains` for hot paths."""
        return (
            self.min_lat <= lat <= self.max_lat
            and self.min_lon <= lon <= self.max_lon
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share any area (or border)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def expand_m(self, margin_m: float) -> "BoundingBox":
        """Box grown by ``margin_m`` meters on every side.

        Used to build the eps-halo around MR-DBSCAN grid partitions.
        """
        from .distance import METERS_PER_DEG_LAT, meters_per_deg_lon

        dlat = margin_m / METERS_PER_DEG_LAT
        mid_lat = (self.min_lat + self.max_lat) / 2.0
        dlon = margin_m / max(meters_per_deg_lon(mid_lat), 1e-9)
        return BoundingBox(
            max(-90.0, self.min_lat - dlat),
            max(-180.0, self.min_lon - dlon),
            min(90.0, self.max_lat + dlat),
            min(180.0, self.max_lon + dlon),
        )

    @property
    def center(self) -> GeoPoint:
        """The box's midpoint."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    @property
    def area_deg2(self) -> float:
        """Area in square degrees (useful for splitting heuristics)."""
        return (self.max_lat - self.min_lat) * (self.max_lon - self.min_lon)

    def as_tuple(self) -> tuple:
        """Return ``(min_lat, min_lon, max_lat, max_lon)``."""
        return (self.min_lat, self.min_lon, self.max_lat, self.max_lon)

    def split_grid(self, rows: int, cols: int):
        """Split into a ``rows x cols`` grid of boxes, row-major order."""
        if rows < 1 or cols < 1:
            raise ValidationError("grid dimensions must be >= 1")
        dlat = (self.max_lat - self.min_lat) / rows
        dlon = (self.max_lon - self.min_lon) / cols
        cells = []
        for r in range(rows):
            for c in range(cols):
                cells.append(
                    BoundingBox(
                        self.min_lat + r * dlat,
                        self.min_lon + c * dlon,
                        self.min_lat + (r + 1) * dlat,
                        self.min_lon + (c + 1) * dlon,
                    )
                )
        return cells
