"""Geospatial substrate: points, bounding boxes, distances, geohash, R-tree.

Every spatial feature of the platform — POI bounding-box search, GPS-trace
clustering, known-POI filtering, trajectory inference — builds on this
package.
"""

from .point import GeoPoint
from .bbox import BoundingBox
from .distance import haversine_m, euclidean_approx_m, METERS_PER_DEG_LAT
from .geohash import geohash_encode, geohash_decode, geohash_neighbors
from .rtree import RTree
from .simplify import simplify_trace

__all__ = [
    "GeoPoint",
    "BoundingBox",
    "haversine_m",
    "euclidean_approx_m",
    "METERS_PER_DEG_LAT",
    "geohash_encode",
    "geohash_decode",
    "geohash_neighbors",
    "RTree",
    "simplify_trace",
]
