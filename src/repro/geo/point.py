"""Immutable geographic point type."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A WGS-84 latitude/longitude pair.

    The type is frozen so points can be dictionary keys and set members,
    which the clustering code relies on.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValidationError("latitude out of range: %r" % (self.lat,))
        if not -180.0 <= self.lon <= 180.0:
            raise ValidationError("longitude out of range: %r" % (self.lon,))

    def distance_m(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in meters."""
        from .distance import haversine_m

        return haversine_m(self.lat, self.lon, other.lat, other.lon)

    def as_tuple(self) -> tuple:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)

    def __str__(self) -> str:
        return "(%.6f, %.6f)" % (self.lat, self.lon)
