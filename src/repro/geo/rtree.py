"""A quadratic-split R-tree over geographic bounding boxes.

PostgreSQL answers MoDisSENSE's non-personalized POI queries through its
spatial (GiST) indexes; this R-tree plays that role inside
``repro.sqlstore``.  It stores ``(BoundingBox, value)`` pairs — points are
stored as degenerate boxes — and supports box-intersection search and
deletion.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..errors import ValidationError
from .bbox import BoundingBox
from .point import GeoPoint


class _Entry:
    """A leaf payload: a rectangle plus the caller's value."""

    __slots__ = ("box", "value")

    def __init__(self, box: BoundingBox, value: Any) -> None:
        self.box = box
        self.value = value


class _Node:
    """An R-tree node; leaves hold entries, internal nodes hold children."""

    __slots__ = ("leaf", "entries", "children", "box")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List[_Entry] = []
        self.children: List["_Node"] = []
        self.box: Optional[BoundingBox] = None

    def recompute_box(self) -> None:
        boxes = (
            [e.box for e in self.entries]
            if self.leaf
            else [c.box for c in self.children if c.box is not None]
        )
        if not boxes:
            self.box = None
            return
        box = boxes[0]
        for b in boxes[1:]:
            box = box.union(b)
        self.box = box


def _enlargement(box: BoundingBox, add: BoundingBox) -> float:
    """Area growth of ``box`` if it had to cover ``add`` too."""
    merged = box.union(add)
    return merged.area_deg2 - box.area_deg2


class RTree:
    """An in-memory R-tree with quadratic node splitting.

    Parameters
    ----------
    max_entries:
        Node fan-out before a split; the minimum fill is ``max_entries//2``.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 4:
            raise ValidationError("max_entries must be >= 4")
        self._max = max_entries
        self._min = max_entries // 2
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------- insert

    def insert(self, box: BoundingBox, value: Any) -> None:
        """Insert a rectangle/value pair."""
        entry = _Entry(box, value)
        split = self._insert(self._root, entry)
        if split is not None:
            # Root was split: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False)
            new_root.children = [old_root, split]
            new_root.recompute_box()
            self._root = new_root
        self._size += 1

    def insert_point(self, point: GeoPoint, value: Any) -> None:
        """Insert a point as a degenerate rectangle."""
        self.insert(
            BoundingBox(point.lat, point.lon, point.lat, point.lon), value
        )

    def _insert(self, node: _Node, entry: _Entry) -> Optional[_Node]:
        if node.leaf:
            node.entries.append(entry)
            node.recompute_box()
            if len(node.entries) > self._max:
                return self._split_leaf(node)
            return None
        child = self._choose_child(node, entry.box)
        split = self._insert(child, entry)
        if split is not None:
            node.children.append(split)
        node.recompute_box()
        if len(node.children) > self._max:
            return self._split_internal(node)
        return None

    def _choose_child(self, node: _Node, box: BoundingBox) -> _Node:
        best = None
        best_key = None
        for child in node.children:
            if child.box is None:
                key = (0.0, 0.0)
            else:
                key = (_enlargement(child.box, box), child.box.area_deg2)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    # -------------------------------------------------------------- split

    def _split_leaf(self, node: _Node) -> _Node:
        groups = self._quadratic_split([e.box for e in node.entries])
        left_idx, right_idx = groups
        entries = node.entries
        sibling = _Node(leaf=True)
        node.entries = [entries[i] for i in left_idx]
        sibling.entries = [entries[i] for i in right_idx]
        node.recompute_box()
        sibling.recompute_box()
        return sibling

    def _split_internal(self, node: _Node) -> _Node:
        groups = self._quadratic_split(
            [c.box or BoundingBox(0, 0, 0, 0) for c in node.children]
        )
        left_idx, right_idx = groups
        children = node.children
        sibling = _Node(leaf=False)
        node.children = [children[i] for i in left_idx]
        sibling.children = [children[i] for i in right_idx]
        node.recompute_box()
        sibling.recompute_box()
        return sibling

    def _quadratic_split(self, boxes: List[BoundingBox]):
        """Guttman's quadratic split: seed with the worst pair, then assign
        each remaining box to the group whose cover grows least."""
        n = len(boxes)
        worst = -1.0
        seed_a, seed_b = 0, 1
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    boxes[i].union(boxes[j]).area_deg2
                    - boxes[i].area_deg2
                    - boxes[j].area_deg2
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        left = [seed_a]
        right = [seed_b]
        left_box = boxes[seed_a]
        right_box = boxes[seed_b]
        remaining = [i for i in range(n) if i not in (seed_a, seed_b)]
        for i in remaining:
            # Honour the minimum fill so neither group can starve.
            if len(left) + (len(remaining) - len(left) - len(right) + 2) <= self._min:
                left.append(i)
                left_box = left_box.union(boxes[i])
                continue
            if len(right) + (len(remaining) - len(left) - len(right) + 2) <= self._min:
                right.append(i)
                right_box = right_box.union(boxes[i])
                continue
            grow_left = _enlargement(left_box, boxes[i])
            grow_right = _enlargement(right_box, boxes[i])
            if grow_left < grow_right or (
                grow_left == grow_right and len(left) <= len(right)
            ):
                left.append(i)
                left_box = left_box.union(boxes[i])
            else:
                right.append(i)
                right_box = right_box.union(boxes[i])
        return left, right

    # ------------------------------------------------------------- search

    def search(self, box: BoundingBox) -> List[Any]:
        """Values whose rectangles intersect ``box``.

        Iterative traversal: bounding-box queries are the read hot path
        (every non-personalized query runs one), so the per-call
        recursion overhead matters.
        """
        out: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is not None and not node.box.intersects(box):
                continue
            if node.leaf:
                for entry in node.entries:
                    if entry.box.intersects(box):
                        out.append(entry.value)
            else:
                stack.extend(node.children)
        return out

    def search_point(self, point: GeoPoint) -> List[Any]:
        """Values whose rectangles contain ``point``."""
        return self.search(
            BoundingBox(point.lat, point.lon, point.lat, point.lon)
        )

    # ------------------------------------------------------------- delete

    def delete(self, box: BoundingBox, value: Any) -> bool:
        """Remove one entry matching ``(box, value)``; True if found.

        Underfull nodes are not re-balanced — deletions are rare in the
        POI workload (paper: "low insert/update rates") so the simple
        strategy keeps reads fast without measurable tree degradation.
        """
        removed = self._delete(self._root, box, value)
        if removed:
            self._size -= 1
            if not self._root.leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def _delete(self, node: _Node, box: BoundingBox, value: Any) -> bool:
        if node.box is not None and not node.box.intersects(box):
            return False
        if node.leaf:
            for i, entry in enumerate(node.entries):
                if entry.value == value and entry.box == box:
                    del node.entries[i]
                    node.recompute_box()
                    return True
            return False
        for child in node.children:
            if self._delete(child, box, value):
                node.children = [
                    c for c in node.children if c.box is not None or c.leaf
                ]
                node.recompute_box()
                return True
        return False

    def items(self) -> List[tuple]:
        """All ``(box, value)`` pairs, in arbitrary order."""
        out: List[tuple] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend((e.box, e.value) for e in node.entries)
            else:
                stack.extend(node.children)
        return out
