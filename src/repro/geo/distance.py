"""Distance computations on the WGS-84 sphere."""

from __future__ import annotations

import math

#: Mean Earth radius in meters (IUGG).
EARTH_RADIUS_M = 6_371_008.8

#: Meters per degree of latitude (constant on a sphere).
METERS_PER_DEG_LAT = EARTH_RADIUS_M * math.pi / 180.0


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in meters.

    Uses the haversine formulation, which is numerically stable for the
    small distances (tens of meters) that DBSCAN's ``eps`` operates at.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def euclidean_approx_m(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Fast equirectangular approximation of the distance in meters.

    Accurate to well under 1% at city scale; used on hot paths (grid
    clustering) where haversine's trigonometry dominates.
    """
    mean_phi = math.radians((lat1 + lat2) / 2.0)
    dy = (lat2 - lat1) * METERS_PER_DEG_LAT
    dx = (lon2 - lon1) * METERS_PER_DEG_LAT * math.cos(mean_phi)
    return math.hypot(dx, dy)


def meters_per_deg_lon(lat: float) -> float:
    """Meters spanned by one degree of longitude at latitude ``lat``."""
    return METERS_PER_DEG_LAT * math.cos(math.radians(lat))


def offset_point_m(
    lat: float, lon: float, north_m: float, east_m: float
) -> tuple:
    """Return the ``(lat, lon)`` found ``north_m``/``east_m`` meters away.

    A flat-earth approximation, fine for the sub-kilometer offsets used by
    the GPS-trace generator.
    """
    new_lat = lat + north_m / METERS_PER_DEG_LAT
    new_lon = lon + east_m / max(meters_per_deg_lon(lat), 1e-9)
    return (new_lat, new_lon)
