"""Trajectory simplification (Douglas–Peucker).

Mobile devices stream GPS at a rate the platform does not need for
stay-point detection; simplifying a trace before storage cuts the GPS
repository's "high update rate" (paper Section 2.1) without moving any
stay point by more than the tolerance.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ValidationError
from .distance import METERS_PER_DEG_LAT, meters_per_deg_lon
from .point import GeoPoint


def _perpendicular_distance_m(
    point: GeoPoint, start: GeoPoint, end: GeoPoint
) -> float:
    """Distance from ``point`` to the segment ``start → end`` in meters,
    on a local flat projection (exact enough at trace scale)."""
    mid_lat = (start.lat + end.lat) / 2.0
    kx = meters_per_deg_lon(mid_lat)
    ky = METERS_PER_DEG_LAT

    ax, ay = start.lon * kx, start.lat * ky
    bx, by = end.lon * kx, end.lat * ky
    px, py = point.lon * kx, point.lat * ky

    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0:
        return ((px - ax) ** 2 + (py - ay) ** 2) ** 0.5
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return ((px - cx) ** 2 + (py - cy) ** 2) ** 0.5


def simplify_trace(
    points: Sequence[GeoPoint], tolerance_m: float
) -> List[GeoPoint]:
    """Douglas–Peucker simplification.

    Returns a subsequence of ``points`` (endpoints always kept) such
    that no removed point lies farther than ``tolerance_m`` from the
    simplified polyline.  Iterative formulation — GPS day-traces can be
    thousands of points, deeper than Python's recursion limit allows.
    """
    if tolerance_m <= 0:
        raise ValidationError("tolerance_m must be positive")
    pts = list(points)
    if len(pts) <= 2:
        return pts

    keep = [False] * len(pts)
    keep[0] = keep[-1] = True
    stack = [(0, len(pts) - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        worst_idx = -1
        worst_dist = tolerance_m
        for i in range(start + 1, end):
            d = _perpendicular_distance_m(pts[i], pts[start], pts[end])
            if d > worst_dist:
                worst_dist = d
                worst_idx = i
        if worst_idx >= 0:
            keep[worst_idx] = True
            stack.append((start, worst_idx))
            stack.append((worst_idx, end))

    return [p for p, k in zip(pts, keep) if k]
