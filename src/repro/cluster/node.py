"""Simulated cluster node."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigError


@dataclass
class Node:
    """One simulated machine (the paper's dual-core, 2 GB VM).

    ``core_available_at`` holds, per core, the simulated timestamp at
    which the core next becomes free; the scheduler in
    :mod:`repro.cluster.simulation` updates it as it places tasks.
    """

    node_id: int
    cores: int = 2
    core_available_at: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("a node needs at least one core")
        if not self.core_available_at:
            self.core_available_at = [0.0] * self.cores

    def reset(self) -> None:
        """Mark every core idle at simulated time zero."""
        self.core_available_at = [0.0] * self.cores

    def earliest_core(self) -> int:
        """Index of the core that frees up first."""
        best = 0
        best_t = self.core_available_at[0]
        for i in range(1, self.cores):
            if self.core_available_at[i] < best_t:
                best_t = self.core_available_at[i]
                best = i
        return best

    def schedule(self, ready_at: float, duration: float) -> float:
        """Place a task that becomes ready at ``ready_at`` and runs for
        ``duration`` seconds on this node's earliest core.

        Returns the simulated completion time.
        """
        core = self.earliest_core()
        start = max(ready_at, self.core_available_at[core])
        finish = start + duration
        self.core_available_at[core] = finish
        return finish
