"""Deterministic cluster timing simulation.

Why simulate instead of measure?  The paper's Figures 2 and 3 come from a
physical OpenStack cluster; a single Python process cannot reproduce
absolute numbers, but it *can* reproduce the mechanism that shapes them:

- each personalized query fans out into one coprocessor invocation per
  HBase region that holds queried friends' visits;
- an invocation's cost is dominated by the visit records it scans;
- invocations from one or many queries contend for the cluster's cores;
- the web server pays a merge cost proportional to the partial results.

:class:`ClusterSimulation` therefore runs a classic list scheduler over
simulated cores.  Region *results* are computed for real by the HBase
layer; only the clock is simulated.  The default :class:`CostModel`
constants are calibrated so a 5000-friend query on 16 dual-core nodes
lands just under one second, matching the paper's headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..errors import ConfigError
from .node import Node


@dataclass(frozen=True)
class CostModel:
    """Latency constants of the simulated deployment (all in seconds)."""

    rpc_latency_s: float = 0.0012
    cost_per_record_s: float = 9.0e-6
    coprocessor_setup_s: float = 0.00035
    merge_cost_per_item_s: float = 1.5e-6
    route_cost_per_key_s: float = 3.0e-7

    @classmethod
    def from_config(cls, config: ClusterConfig) -> "CostModel":
        return cls(
            rpc_latency_s=config.rpc_latency_ms / 1e3,
            cost_per_record_s=config.cost_per_record_us / 1e6,
            coprocessor_setup_s=config.coprocessor_setup_ms / 1e3,
            merge_cost_per_item_s=config.merge_cost_per_item_us / 1e6,
            route_cost_per_key_s=config.route_cost_per_key_us / 1e6,
        )

    def coprocessor_cost_s(self, records_scanned: int) -> float:
        """Compute time of one coprocessor invocation on a core."""
        return self.coprocessor_setup_s + records_scanned * self.cost_per_record_s

    def merge_cost_s(self, partial_results: int) -> float:
        """Web-server-side merge cost for ``partial_results`` items."""
        return partial_results * self.merge_cost_per_item_s

    def routing_cost_s(self, routed_keys: int) -> float:
        """Client-side cost of partitioning ``routed_keys`` keys across
        regions before the fan-out (the route-then-stream query path)."""
        return routed_keys * self.route_cost_per_key_s


@dataclass
class Task:
    """One unit of region-local work (a coprocessor invocation).

    ``records_scanned`` drives the region-side compute cost;
    ``results_returned`` — the partial aggregates shipped back — drives
    the web-server-side merge cost.  Aggregation inside the region is
    exactly what makes results much smaller than records (the paper's
    rationale for coprocessors).
    """

    region_id: int
    records_scanned: int
    results_returned: int = 0
    #: Query this task belongs to (for concurrent-query accounting).
    query_id: int = 0
    #: Extra simulated seconds this invocation spent on recovery work:
    #: failed attempts, retry backoff, injected hangs, hedge hops.  Zero
    #: on the clean path, so fault-free timelines are unchanged.
    extra_cost_s: float = 0.0


@dataclass
class QueryTimeline:
    """Simulated timing of one query's life."""

    query_id: int
    submit_at: float
    finish_at: float
    tasks: int
    records_scanned: int

    @property
    def latency_s(self) -> float:
        return self.finish_at - self.submit_at

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


class ClusterSimulation:
    """Places regions on nodes and schedules coprocessor work on cores.

    Regions are assigned round-robin, which mirrors HBase's balancer in
    the steady state and gives every node ``regions/nodes`` regions.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.cost_model = cost_model or CostModel.from_config(self.config)
        self.nodes: List[Node] = [
            Node(node_id=i, cores=self.config.cores_per_node)
            for i in range(self.config.num_nodes)
        ]
        self._region_to_node: Dict[int, int] = {}
        self._failed_nodes: set = set()

    # ---------------------------------------------------------- placement

    def place_regions(self, region_ids: Sequence[int]) -> Dict[int, int]:
        """Assign each region to a live node round-robin; returns the map."""
        live = [
            i for i in range(len(self.nodes)) if i not in self._failed_nodes
        ]
        if not live:
            raise ConfigError("no live nodes to place regions on")
        self._region_to_node = {
            region_id: live[i % len(live)]
            for i, region_id in enumerate(sorted(region_ids))
        }
        return dict(self._region_to_node)

    # ------------------------------------------------------ fault handling

    def fail_node(self, node_id: int) -> List[int]:
        """Take a node down; its regions move to the survivors.

        Mirrors HBase's master behavior on region-server death: the dead
        server's regions are reassigned (round-robin here) and service
        continues at reduced capacity.  Returns the moved region ids.
        """
        if not 0 <= node_id < len(self.nodes):
            raise ConfigError("no node %r" % node_id)
        if node_id in self._failed_nodes:
            return []
        # Validate BEFORE mutating: a rejected failure must leave the
        # node live, not marked failed with its regions stranded.
        survivors = [
            i
            for i in range(len(self.nodes))
            if i not in self._failed_nodes and i != node_id
        ]
        if not survivors:
            raise ConfigError("cannot fail the last live node")
        self._failed_nodes.add(node_id)
        moved = sorted(
            region
            for region, node in self._region_to_node.items()
            if node == node_id
        )
        for i, region in enumerate(moved):
            self._region_to_node[region] = survivors[i % len(survivors)]
        return moved

    def crash_node(self, node_id: int) -> List[int]:
        """Take a node down WITHOUT moving its regions (a real crash).

        Unlike :meth:`fail_node` — which models master-driven failover
        as one instantaneous step — a crash leaves the placement map
        still pointing at the dead server: requests to those regions
        find nobody home until the supervisor detects the missed
        heartbeats and reassigns them (see
        :class:`repro.core.supervisor.ClusterSupervisor`).  Returns the
        region ids stranded on the dead node.
        """
        if not 0 <= node_id < len(self.nodes):
            raise ConfigError("no node %r" % node_id)
        if node_id in self._failed_nodes:
            return []
        survivors = [
            i
            for i in range(len(self.nodes))
            if i not in self._failed_nodes and i != node_id
        ]
        if not survivors:
            raise ConfigError("cannot fail the last live node")
        self._failed_nodes.add(node_id)
        return self.regions_on(node_id)

    def reassign_regions(self, mapping: Dict[int, int]) -> None:
        """Point regions at new nodes (supervisor-driven recovery moves).

        Every target must be a live node and every region must already
        be placed; validation happens before any assignment is applied.
        """
        for region_id, node_id in mapping.items():
            if region_id not in self._region_to_node:
                raise ConfigError(
                    "region %r was never placed; call place_regions first"
                    % region_id
                )
            if not 0 <= node_id < len(self.nodes):
                raise ConfigError("no node %r" % node_id)
            if node_id in self._failed_nodes:
                raise ConfigError(
                    "cannot assign region %r to failed node %r"
                    % (region_id, node_id)
                )
        self._region_to_node.update(mapping)

    def recover_node(self, node_id: int, rebalance: bool = True) -> None:
        """Bring a failed node back; optionally re-place all regions."""
        self._failed_nodes.discard(node_id)
        self.nodes[node_id].reset()
        if rebalance and self._region_to_node:
            self.place_regions(list(self._region_to_node))

    def is_live(self, node_id: int) -> bool:
        return 0 <= node_id < len(self.nodes) and node_id not in self._failed_nodes

    def regions_on(self, node_id: int) -> List[int]:
        """Region ids currently placed on ``node_id``, ascending."""
        return sorted(
            region
            for region, node in self._region_to_node.items()
            if node == node_id
        )

    @property
    def live_node_count(self) -> int:
        return len(self.nodes) - len(self._failed_nodes)

    def live_nodes(self) -> List[int]:
        """Ids of nodes currently serving regions, ascending."""
        return [
            i for i in range(len(self.nodes)) if i not in self._failed_nodes
        ]

    def node_for_region(self, region_id: int) -> Node:
        try:
            node_idx = self._region_to_node[region_id]
        except KeyError:
            raise ConfigError(
                "region %r was never placed; call place_regions first"
                % region_id
            ) from None
        return self.nodes[node_idx]

    @property
    def region_placement(self) -> Dict[int, int]:
        return dict(self._region_to_node)

    # --------------------------------------------------------- scheduling

    def reset_clock(self) -> None:
        """Return every core to idle at simulated time zero."""
        for node in self.nodes:
            node.reset()

    def run_query(self, tasks: Sequence[Task], submit_at: float = 0.0) -> QueryTimeline:
        """Simulate one query: fan out ``tasks`` to their regions' nodes,
        wait for the slowest, then pay the client-side merge cost."""
        timelines = self.run_queries([list(tasks)], submit_at=[submit_at])
        return timelines[0]

    def run_queries(
        self,
        per_query_tasks: Sequence[Sequence[Task]],
        submit_at: Optional[Sequence[float]] = None,
        client_setup_s: Optional[Sequence[float]] = None,
    ) -> List[QueryTimeline]:
        """Simulate many (possibly concurrent) queries sharing the cluster.

        Tasks are interleaved across queries in region order, which models
        HBase serving concurrent coprocessor invocations fairly rather
        than running whole queries back-to-back.

        ``client_setup_s`` charges per-query client-side work done
        *before* the fan-out (e.g. friend-to-region routing): it delays
        every task of that query and is part of its end-to-end latency.
        """
        if submit_at is None:
            submit_at = [0.0] * len(per_query_tasks)
        if len(submit_at) != len(per_query_tasks):
            raise ConfigError("submit_at must align with per_query_tasks")
        if client_setup_s is None:
            client_setup_s = [0.0] * len(per_query_tasks)
        if len(client_setup_s) != len(per_query_tasks):
            raise ConfigError("client_setup_s must align with per_query_tasks")

        self.reset_clock()
        cm = self.cost_model
        finish_by_query: Dict[int, float] = {}
        records_by_query: Dict[int, int] = {}
        count_by_query: Dict[int, int] = {}
        results_by_query: Dict[int, int] = {}

        # Fair interleave: round-robin one task per query at a time.
        queues = [list(tasks) for tasks in per_query_tasks]
        order: List[tuple] = []  # (query index, task)
        longest = max((len(q) for q in queues), default=0)
        for position in range(longest):
            for qi, queue in enumerate(queues):
                if position < len(queue):
                    order.append((qi, queue[position]))

        for qi, task in order:
            node = self.node_for_region(task.region_id)
            ready = submit_at[qi] + client_setup_s[qi] + cm.rpc_latency_s
            duration = cm.coprocessor_cost_s(task.records_scanned) + task.extra_cost_s
            done = node.schedule(ready, duration) + cm.rpc_latency_s
            finish_by_query[qi] = max(finish_by_query.get(qi, 0.0), done)
            records_by_query[qi] = records_by_query.get(qi, 0) + task.records_scanned
            count_by_query[qi] = count_by_query.get(qi, 0) + 1
            results_by_query[qi] = (
                results_by_query.get(qi, 0) + task.results_returned
            )

        timelines = []
        for qi, tasks in enumerate(per_query_tasks):
            finish = finish_by_query.get(qi, submit_at[qi] + client_setup_s[qi])
            finish += cm.merge_cost_s(results_by_query.get(qi, 0))
            timelines.append(
                QueryTimeline(
                    query_id=qi,
                    submit_at=submit_at[qi],
                    finish_at=finish,
                    tasks=count_by_query.get(qi, 0),
                    records_scanned=records_by_query.get(qi, 0),
                )
            )
        return timelines

    # ------------------------------------------------------------ summary

    def describe(self) -> dict:
        """Human-readable summary of the simulated deployment."""
        return {
            "nodes": len(self.nodes),
            "cores_per_node": self.config.cores_per_node,
            "total_cores": self.config.total_cores,
            "regions_placed": len(self._region_to_node),
            "rpc_latency_ms": self.cost_model.rpc_latency_s * 1e3,
            "cost_per_record_us": self.cost_model.cost_per_record_s * 1e6,
        }
