"""Simulated distributed cluster.

The paper evaluates MoDisSENSE on OpenStack clusters of 4, 8 and 16
dual-core VMs.  This package reproduces that environment in-process:

- :class:`Node` models one VM with a fixed number of cores;
- :class:`ClusterSimulation` places HBase regions on nodes and schedules
  region-local work (coprocessor invocations) onto cores with a
  deterministic list scheduler and a calibrated cost model, yielding the
  *simulated* latencies the benchmarks report;
- :class:`ParallelExecutor` runs the same region functions for real on a
  thread pool, so results are always computed, never faked — only the
  *timing* is simulated.
"""

from .node import Node
from .simulation import CostModel, Task, QueryTimeline, ClusterSimulation
from .executor import ParallelExecutor
from .webfarm import WebServerFarm, MergeWork

__all__ = [
    "Node",
    "CostModel",
    "Task",
    "QueryTimeline",
    "ClusterSimulation",
    "ParallelExecutor",
    "WebServerFarm",
    "MergeWork",
]
