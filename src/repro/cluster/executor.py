"""Real parallel execution of region-local work.

The simulation in :mod:`repro.cluster.simulation` accounts for *time*;
this executor performs the *work*.  Coprocessor callables run on a shared
thread pool so that a 32-region scan genuinely executes concurrently —
results are computed, never fabricated.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from ..errors import CoprocessorError
from .. import threadreg


class ParallelExecutor:
    """A bounded thread pool with deterministic result ordering.

    ``map_ordered`` preserves input order, which the query-answering
    module relies on to pair region results with region metadata.

    ``component`` names the pool in the :mod:`repro.threadreg` registry:
    every worker registers itself on first use, so the continuous
    profiler attributes its samples to the owning subsystem ("fanout"
    for the HBase fan-out pool, "mapreduce" for the job runner).
    """

    def __init__(
        self, max_workers: int = 8, component: Optional[str] = None
    ) -> None:
        self._max_workers = max(1, max_workers)
        self._component = component
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _register_worker(self) -> None:
        # ThreadPoolExecutor initializer: runs once per worker thread.
        if self._component is not None:
            threadreg.register_current_thread(self._component)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Locked: concurrent first callers (coalesced query herds hit
        # this) must not each create a pool and leak the loser's threads.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    initializer=self._register_worker,
                )
            return self._pool

    def map_ordered(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item in parallel; results keep input order.

        Any exception inside a worker is re-raised wrapped in
        :class:`CoprocessorError` with the failing item attached, so a
        single bad region does not silently drop its partial result.
        """
        if not items:
            return []
        if len(items) == 1 or self._max_workers == 1:
            return [self._call(fn, item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(self._call, fn, item) for item in items]
        return [f.result() for f in futures]

    @staticmethod
    def _call(fn: Callable, item):
        try:
            return fn(item)
        except CoprocessorError:
            raise
        except Exception as exc:  # noqa: BLE001 - rewrapped with context
            raise CoprocessorError(
                "region-local task failed for %r: %s" % (item, exc)
            ) from exc

    def shutdown(self) -> None:
        """Release the pool's threads."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
