"""The web-server tier.

Paper Section 3.1: "since greater number of concurrent queries leads to
more threads in the Web Server ... we can avoid any potential
bottlenecks by replicating the Web Servers while simultaneously, we use
a load balancer to route the traffic to the web servers accordingly.
In our experimental setup, we identified that two 4-cores web servers
with 4 GB of RAM each are more than enough."

:class:`WebServerFarm` models that tier: a load balancer routes each
query's merge work to a server, and servers process merges on their
cores with the same list-scheduling the HBase tier uses.  The
``bench_web_tier`` benchmark reproduces the paper's sizing claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigError
from .node import Node

ROUTE_ROUND_ROBIN = "round_robin"
ROUTE_LEAST_LOADED = "least_loaded"


@dataclass
class MergeWork:
    """One query's client-side merge job."""

    query_id: int
    items: int
    ready_at: float


class WebServerFarm:
    """Load-balanced web servers executing query merges.

    Parameters
    ----------
    num_servers:
        Replicated web servers behind the balancer (the paper used 2).
    cores_per_server:
        4 in the paper's setup.
    merge_cost_per_item_s:
        Cost of merging one partial-result item on one core.
    routing:
        ``round_robin`` (the classic balancer default) or
        ``least_loaded`` (routes to the server whose cores free first).
    """

    def __init__(
        self,
        num_servers: int = 2,
        cores_per_server: int = 4,
        merge_cost_per_item_s: float = 1.5e-6,
        routing: str = ROUTE_ROUND_ROBIN,
    ) -> None:
        if num_servers < 1:
            raise ConfigError("num_servers must be >= 1")
        if routing not in (ROUTE_ROUND_ROBIN, ROUTE_LEAST_LOADED):
            raise ConfigError("unknown routing policy %r" % routing)
        self.servers: List[Node] = [
            Node(node_id=i, cores=cores_per_server)
            for i in range(num_servers)
        ]
        self.merge_cost_per_item_s = merge_cost_per_item_s
        self.routing = routing
        self._next_server = 0

    def reset(self) -> None:
        for server in self.servers:
            server.reset()
        self._next_server = 0

    def _route(self) -> Node:
        if self.routing == ROUTE_ROUND_ROBIN:
            server = self.servers[self._next_server]
            # Wrap in place: an unbounded cursor grows without limit on
            # a long-lived balancer (and overflows in implementations
            # with fixed-width counters).
            self._next_server = (self._next_server + 1) % len(self.servers)
            return server
        return min(
            self.servers,
            key=lambda s: s.core_available_at[s.earliest_core()],
        )

    def schedule_merges(self, work: Sequence[MergeWork]) -> List[float]:
        """Place each merge on a server; returns completion times
        aligned with the input order."""
        finishes: List[float] = []
        for job in work:
            server = self._route()
            duration = job.items * self.merge_cost_per_item_s
            finishes.append(server.schedule(job.ready_at, duration))
        return finishes

    def utilization_spread(self) -> float:
        """Max-minus-min busy time across servers — the balancer's
        fairness signal (0 means perfectly even)."""
        busy = [max(s.core_available_at) for s in self.servers]
        return max(busy) - min(busy)
