"""The MoDisSENSE platform facade.

Wires every repository and processing module over the simulated cluster,
exactly as Figure 1 of the paper composes them.  This is the object the
examples, the REST layer and the benchmarks instantiate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..config import PlatformConfig
from ..datagen.gps import GPSPoint
from ..errors import ValidationError
from ..hbase import HBaseCluster, RegionScanCache
from ..mapreduce import JobRunner
from ..social import (
    NETWORK_FACEBOOK,
    NETWORK_FOURSQUARE,
    NETWORK_TWITTER,
    SimulatedNetwork,
    SocialNetworkPlugin,
)
from ..sqlstore import SqlEngine
from .modules.blog import BlogModule
from .modules.data_collection import DataCollectionModule
from .modules.event_detection import EventDetectionModule
from .modules.hotin_update import HotInReport, HotInUpdateModule
from .modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
    SearchResult,
)
from .admission import AdmissionController
from .caching import HotPOICache
from .faults import FaultInjector
from .ingest import StreamingIngestTier
from .modules.hotin_update import IncrementalHotIn, ReconcileReport
from .monitoring import InstrumentedQueryAnswering, PlatformMetrics
from .supervisor import ClusterSupervisor
from .telemetry import TelemetryHub
from .tracing import Tracer
from .modules.text_processing import TextProcessingModule
from .modules.trajectory import TrajectoryModule
from .modules.trending import TrendingModule, TrendingQuery
from .modules.user_management import PlatformUser, UserManagementModule
from .repositories.blogs import BlogEntry, BlogsRepository
from .repositories.gps_traces import GPSTracesRepository
from .repositories.poi import POI, POIRepository
from .repositories.social_info import SocialInfoRepository
from .repositories.text_repo import TextRepository
from .repositories.visits import VisitsRepository


class MoDisSENSE:
    """One platform deployment.

    Parameters
    ----------
    config:
        Cluster shape, sentiment knobs and job periods.
    plugins:
        Social-network integrations; defaults to simulated Facebook,
        Twitter and Foursquare, matching the paper's supported networks.
    visits_schema_mode:
        ``"replicated"`` (paper default) or ``"normalized"`` for the
        schema ablation.
    """

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        plugins: Optional[Dict[str, SocialNetworkPlugin]] = None,
        visits_schema_mode: str = "replicated",
    ) -> None:
        self.config = config or PlatformConfig()

        # ---- observability tier (everything below reports into these)
        self.metrics = PlatformMetrics()
        self.tracer = Tracer.from_config(self.config.tracing)
        #: The telemetry pipeline: time-series store, SLO engine,
        #: continuous profiler, wide-event log.  On by default; None
        #: when ``config.telemetry.enabled`` is False (everything it
        #: touches checks first, so the off path is telemetry-free).
        self.telemetry: Optional[TelemetryHub] = None
        if self.config.telemetry.enabled:
            self.telemetry = TelemetryHub(
                self.metrics, self.config.telemetry, tracer=self.tracer
            ).start()

        # ---- storage tier
        self.hbase = HBaseCluster(
            self.config.cluster, faults_config=self.config.faults
        )
        self.hbase.attach_metrics(self.metrics)
        if self.telemetry is not None:
            self.hbase.attach_event_log(self.telemetry.events)
        #: Armed only when ``config.faults.enabled``; the clean path has
        #: no injector attached at all (guaranteed byte-identical).
        self.fault_injector: Optional[FaultInjector] = None
        if self.config.faults.enabled:
            self.fault_injector = FaultInjector(self.config.faults)
            self.hbase.attach_fault_injector(self.fault_injector)
            if self.telemetry is not None:
                self.fault_injector.event_log = self.telemetry.events
        # ---- overload protection (off by default; see config.admission)
        #: Admission controller + brownout ladder; None when disabled —
        #: the request path is then byte-identical to a build without
        #: the layer (no tickets, no budgets, no shaping).
        self.admission: Optional[AdmissionController] = None
        if self.config.admission.enabled:
            self.admission = AdmissionController(
                self.config.admission,
                metrics=self.metrics,
                event_log=(
                    self.telemetry.events
                    if self.telemetry is not None
                    else None
                ),
            )
            # The fan-out's retry/hedge paths draw from the global
            # budget; with no budget attached they behave exactly as
            # before this layer existed.
            self.hbase.attach_retry_budget(self.admission.retry_budget)
        self.sql = SqlEngine()
        regions = self.config.cluster.regions_per_table
        self.poi_repository = POIRepository(self.sql)
        self.social_info = SocialInfoRepository(
            self.hbase, num_regions=max(2, regions // 8)
        )
        self.text_repository = TextRepository(
            self.hbase, num_regions=max(2, regions // 4)
        )
        self.visits_repository = VisitsRepository(
            self.hbase, num_regions=regions, schema_mode=visits_schema_mode
        )
        self.gps_repository = GPSTracesRepository(
            self.hbase, num_regions=max(2, regions // 2)
        )
        self.blogs_repository = BlogsRepository(self.sql)

        # ---- social tier
        self.plugins: Dict[str, SocialNetworkPlugin] = plugins or {
            NETWORK_FACEBOOK: SimulatedNetwork(NETWORK_FACEBOOK),
            NETWORK_TWITTER: SimulatedNetwork(NETWORK_TWITTER),
            NETWORK_FOURSQUARE: SimulatedNetwork(NETWORK_FOURSQUARE),
        }

        # ---- processing tier
        self.job_runner = JobRunner(
            max_workers=self.config.cluster.total_cores,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.user_management = UserManagementModule(self.plugins)
        self.text_processing = TextProcessingModule(
            self.text_repository, self.config.sentiment
        )
        self.data_collection = DataCollectionModule(
            user_management=self.user_management,
            plugins=self.plugins,
            social_info=self.social_info,
            visits=self.visits_repository,
            text_processing=self.text_processing,
            poi_repository=self.poi_repository,
        )
        # ---- caching tier (off by default; see config.cache)
        cache_cfg = self.config.cache
        #: Per-region friend-partition scan cache, attached to the HBase
        #: client so coprocessor invocations can consult it; None when
        #: caching is disabled (the fan-out then behaves exactly as
        #: before this layer existed).
        self.scan_cache: Optional[RegionScanCache] = None
        self.hot_poi_cache: Optional[HotPOICache] = None
        if cache_cfg.enabled:
            self.scan_cache = RegionScanCache(
                max_entries=cache_cfg.scan_cache_max_entries,
                ttl_s=cache_cfg.scan_cache_ttl_s,
                metrics=self.metrics,
            )
            self.hbase.attach_scan_cache(self.scan_cache)
            self.hot_poi_cache = HotPOICache(
                max_entries=cache_cfg.hot_poi_max_entries,
                metrics=self.metrics,
                event_log=(
                    self.telemetry.events
                    if self.telemetry is not None
                    else None
                ),
            )
        self.query_answering = InstrumentedQueryAnswering(
            QueryAnsweringModule(
                self.poi_repository,
                self.visits_repository,
                tracer=self.tracer,
                metrics=self.metrics,
                hot_poi_cache=self.hot_poi_cache,
                coalesce=cache_cfg.coalesce,
                event_log=(
                    self.telemetry.events
                    if self.telemetry is not None
                    else None
                ),
                admission=self.admission,
                topk_config=self.config.topk,
            ),
            metrics=self.metrics,
        )
        self.trending = TrendingModule(self.query_answering)
        self.hotin_update = HotInUpdateModule(
            self.visits_repository,
            self.poi_repository,
            runner=self.job_runner,
            num_mappers=self.config.cluster.total_cores,
        )
        # ---- streaming ingest tier (off by default; see config.ingest)
        #: Delta-maintained hotness/interest state; exists only when the
        #: streaming tier is on (the batch MapReduce owns freshness
        #: otherwise).
        self.incremental_hotin: Optional[IncrementalHotIn] = None
        self.ingest: Optional[StreamingIngestTier] = None
        if self.config.ingest.enabled:
            self.incremental_hotin = IncrementalHotIn()
            self.ingest = StreamingIngestTier(
                self.visits_repository,
                self.poi_repository,
                self.incremental_hotin,
                config=self.config.ingest,
                metrics=self.metrics,
                tracer=self.tracer,
                hot_poi_cache=self.hot_poi_cache,
                event_log=(
                    self.telemetry.events
                    if self.telemetry is not None
                    else None
                ),
            ).start()
            if self.admission is not None:
                # Brownout level 3+ flips the tier to shed-on-full so
                # blocked producers can't pile up during an overload.
                self.admission.attach_ingest(self.ingest)
        # ---- self-healing supervisor (off by default; see
        # config.supervisor).  Constructed after the ingest tier so the
        # server-WAL handles adopt the (still empty) per-region WALs the
        # tier attached — fold watermarks carry over unchanged.  With
        # ``enabled=False`` the attribute stays None and failure
        # handling remains manual, exactly the pre-supervisor behavior.
        self.supervisor: Optional[ClusterSupervisor] = None
        if self.config.supervisor.enabled:
            self.supervisor = ClusterSupervisor(
                self.hbase,
                config=self.config.supervisor,
                metrics=self.metrics,
                tracer=self.tracer,
                event_log=(
                    self.telemetry.events
                    if self.telemetry is not None
                    else None
                ),
            )
            self.supervisor.attach()
        self.event_detection = EventDetectionModule(
            self.gps_repository, self.poi_repository, self.config.jobs
        )
        self.trajectory = TrajectoryModule(
            self.gps_repository,
            self.poi_repository,
            self.text_repository,
            self.config.jobs,
        )
        self.blog = BlogModule(
            trajectory_module=self.trajectory,
            blogs_repository=self.blogs_repository,
            user_management=self.user_management,
            plugins=self.plugins,
        )
        if self.telemetry is not None:
            self.telemetry.add_collector(self._telemetry_collect)

    def _telemetry_collect(self, now: float) -> None:
        """Pre-scrape hook: refresh derived gauges so each telemetry
        tick samples *current* state, not whatever an event last left
        in the registry."""
        if self.ingest is not None:
            self.metrics.set_gauge(
                "ingest.freshness_age_s", self.ingest.freshness_age_s()
            )
            self.metrics.set_gauge(
                "ingest.queue_depth_total",
                sum(q.depth() for q in self.ingest._queues),
            )
        live = self.hbase.simulation.live_nodes()
        self.metrics.set_gauge("cluster.live_nodes", len(live))

    # ----------------------------------------------------- conveniences

    def register_user(
        self, network: str, network_user_id: str, password: str, now: float
    ) -> PlatformUser:
        """Sign a user up with social credentials (OAuth flow)."""
        return self.user_management.register(
            network, network_user_id, password, now
        )

    def search(self, query: SearchQuery) -> SearchResult:
        """Answer a (personalized or not) POI search."""
        return self.query_answering.search(query)

    def trending_events(self, query: TrendingQuery) -> SearchResult:
        return self.trending.trending(query)

    def collect(self, now: int):
        """Run the Data Collection Module once."""
        return self.data_collection.run(now)

    def run_hotin(self, since: int, until: int) -> HotInReport:
        """Run the HotIn Update job over ``[since, until)``.

        The job rewrites POI hotness/interest columns, so every cached
        non-personalized answer is invalidated by bumping the hot-POI
        cache epoch after the refresh lands."""
        report = self.hotin_update.run(since, until)
        if self.hot_poi_cache is not None:
            self.hot_poi_cache.bump_epoch()
        return report

    # ------------------------------------------------- streaming ingest

    def ingest_visit(self, visit) -> int:
        """Submit one visit to the streaming ingest tier.

        Returns the partition it was enqueued on.  Raises
        :class:`~repro.errors.BackpressureError` when the partition's
        bounded queue stays full — the visit is then *not* enqueued and
        the caller owns the retry.  Requires ``config.ingest.enabled``.
        """
        if self.ingest is None:
            raise ValidationError(
                "streaming ingest is disabled (set config.ingest.enabled)"
            )
        return self.ingest.submit(visit)

    def ingest_visits(self, visits) -> int:
        """Submit many visits to the streaming tier; returns the count."""
        if self.ingest is None:
            raise ValidationError(
                "streaming ingest is disabled (set config.ingest.enabled)"
            )
        return self.ingest.submit_many(visits)

    def reconcile_hotin(self, since: int, until: int) -> ReconcileReport:
        """Run the verify-and-repair pass over ``[since, until)``.

        With streaming ingest on, this replaces the periodic batch HotIn
        job: the MapReduce recompute becomes the source-of-truth check
        against the incremental state, repairing any divergence and
        re-anchoring the tier's aggregation window at ``since``.  Cached
        non-personalized answers are invalidated whenever a repair
        rewrote POI rows.
        """
        if self.ingest is None or self.incremental_hotin is None:
            raise ValidationError(
                "streaming ingest is disabled (set config.ingest.enabled)"
            )
        self.ingest.window_since = since
        self.ingest.window_until = None
        report = self.hotin_update.reconcile(
            self.incremental_hotin, since, until
        )
        self.incremental_hotin.prune(
            int(since - self.config.ingest.prune_slack_s)
        )
        # Folded WAL prefixes can never replay again; dropping them here
        # bounds WAL memory to the un-folded suffix between reconciles.
        self.ingest.compact_wals()
        if report.pois_updated and self.hot_poi_cache is not None:
            self.hot_poi_cache.bump_epoch()
        return report

    def sweep_caches(self) -> int:
        """Reap dead scan-cache entries (TTL-expired or seqid-stale).

        Wired to the scheduler's ``cache_maintenance`` job.  Uses wall
        clock internally — the scheduler's simulated ``now`` must not
        leak into TTL arithmetic — and returns the entries removed."""
        if self.scan_cache is None:
            return 0
        return self.hbase.scan_cache_sweep()

    def detect_events(self, since: Optional[int] = None, until: Optional[int] = None):
        """Run the Event Detection Module once."""
        return self.event_detection.run(since, until)

    def push_gps(self, points: Sequence[GPSPoint]) -> int:
        """Ingest GPS trace samples from a device."""
        return self.gps_repository.push_many(points)

    def generate_blog(self, user_id: int, day_start: int, day_end: int) -> BlogEntry:
        return self.blog.generate_daily_blog(user_id, day_start, day_end)

    def load_pois(self, pois) -> int:
        """Bulk-load POIs (e.g. the synthetic OpenStreetMap extract)."""
        count = 0
        for record in pois:
            self.poi_repository.add(
                POI(
                    poi_id=record.poi_id,
                    name=record.name,
                    lat=record.lat,
                    lon=record.lon,
                    keywords=tuple(record.keywords),
                    category=record.category,
                )
            )
            count += 1
        return count

    def load_visits(self, visits) -> int:
        """Bulk-load pre-generated visit structs (benchmark ingest)."""
        from .repositories.visits import VisitStruct

        count = 0
        for v in visits:
            self.visits_repository.store(
                VisitStruct(
                    user_id=v.user_id,
                    poi_id=v.poi_id,
                    timestamp=v.timestamp,
                    grade=v.grade,
                    poi_name=v.poi_name,
                    lat=v.lat,
                    lon=v.lon,
                    keywords=tuple(v.keywords),
                )
            )
            count += 1
        return count

    def shutdown(self) -> None:
        """Release thread pools (draining the ingest tier first)."""
        if self.ingest is not None:
            self.ingest.stop(drain=True)
        if self.telemetry is not None:
            self.telemetry.close()
        self.hbase.shutdown()
        self.job_runner.shutdown()

    def __enter__(self) -> "MoDisSENSE":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def describe(self) -> dict:
        """Deployment summary for logs and the demo GUI."""
        return {
            "hbase": self.hbase.describe(),
            "sql_tables": self.sql.table_names(),
            "pois": self.poi_repository.count(),
            "visits": self.visits_repository.count(),
            "networks": sorted(self.plugins),
            "tracing": self.tracer.describe(),
            "cache": {
                "enabled": self.scan_cache is not None,
                "coalesce": self.config.cache.coalesce,
            },
            "ingest": (
                self.ingest.stats() if self.ingest is not None else
                {"running": False}
            ),
            "telemetry": (
                self.telemetry.describe()
                if self.telemetry is not None
                else {"enabled": False}
            ),
            "supervisor": (
                self.supervisor.describe()
                if self.supervisor is not None
                else {"enabled": False}
            ),
            "admission": (
                self.admission.describe()
                if self.admission is not None
                else {"enabled": False}
            ),
        }
