"""Platform observability: counters and latency histograms.

A production deployment of the paper's architecture needs to see query
volume, per-path latencies and batch-job progress; this module provides
the metrics surface, and :class:`InstrumentedQueryAnswering` wraps the
query module so every search is recorded transparently.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ValidationError


class LatencyHistogram:
    """Latency samples with percentile queries.

    Memory is bounded by reservoir sampling (Vitter's algorithm R, with
    a fixed seed for reproducibility): every recorded value has equal
    probability of residing in the reservoir, so percentile reads stay
    unbiased even when traffic trends over time.
    """

    def __init__(self, max_samples: int = 10_000) -> None:
        if max_samples < 10:
            raise ValidationError("max_samples must be >= 10")
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = []
        self._max = max_samples
        self._rng = _random.Random(0xC0FFEE)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValidationError("latency cannot be negative")
        self.count += 1
        self.total += value_ms
        self.max_value = max(self.max_value, value_ms)
        if len(self._samples) < self._max:
            self._samples.append(value_ms)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._max:
                self._samples[slot] = value_ms
        self._sorted = None  # invalidate the percentile cache

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100) of recorded samples."""
        if not 0.0 < p <= 100.0:
            raise ValidationError("percentile must be in (0, 100]")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        idx = min(
            len(self._sorted) - 1,
            max(0, int(round(p / 100.0 * len(self._sorted))) - 1),
        )
        return self._sorted[idx]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_value,
        }


class PlatformMetrics:
    """Counters + histograms for every platform surface."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def record_latency(self, name: str, value_ms: float) -> None:
        self.histogram(name).record(value_ms)

    def snapshot(self) -> Dict[str, object]:
        """Everything, JSON-shaped, for a dashboard or the REST API."""
        return {
            "counters": dict(self._counters),
            "latencies": {
                name: hist.summary()
                for name, hist in self._histograms.items()
            },
        }


class InstrumentedQueryAnswering:
    """Transparent metrics wrapper around a QueryAnsweringModule.

    Same interface as the wrapped module; every search increments the
    path counter and records the simulated latency (coprocessor path)
    so ``metrics.snapshot()`` exposes the Figure-2-style distribution
    of live traffic.
    """

    def __init__(self, inner, metrics: Optional[PlatformMetrics] = None) -> None:
        self._inner = inner
        self.metrics = metrics or PlatformMetrics()

    def search(self, query):
        result = self._inner.search(query)
        if result.personalized:
            self._record_personalized(result)
        else:
            self.metrics.increment("queries.non_personalized")
        return result

    def search_personalized_batch(self, queries):
        results = self._inner.search_personalized_batch(queries)
        for result in results:
            self._record_personalized(result)
        return results

    def _record_personalized(self, result) -> None:
        self.metrics.increment("queries.personalized")
        self.metrics.record_latency("query.personalized", result.latency_ms)
        self.metrics.increment("records.scanned", result.records_scanned)
        # Query-path profiling counters (route-then-stream pipeline):
        # cells merged = records the region scanners emitted; cells
        # decoded = payloads actually JSON-parsed (lazy decoding);
        # regions pruned = fan-out avoided by friend->region routing.
        self.metrics.increment("cells.merged", result.records_scanned)
        self.metrics.increment("cells.decoded", result.cells_decoded)
        self.metrics.increment("regions.pruned", result.regions_pruned)
        self.metrics.increment("regions.used", result.regions_used)

    def search_personalized_client_side(self, query):
        return self._inner.search_personalized_client_side(query)

    def __getattr__(self, name):
        # Delegate everything else (pois, visits, _coprocessor, ...).
        return getattr(self._inner, name)
