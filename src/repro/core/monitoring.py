"""Platform observability: counters, gauges and latency histograms.

A production deployment of the paper's architecture needs to see query
volume, per-path latencies and batch-job progress; this module provides
the metrics surface, and :class:`InstrumentedQueryAnswering` wraps the
query module so every search is recorded transparently.

The registry is **thread-safe**: the Figure-3 concurrency path records
from :class:`~repro.cluster.ParallelExecutor` threads, so every counter
bump and histogram record happens under a lock.  Metrics support
Prometheus-style labels (``query.personalized{regions="3"}``) and the
whole registry renders to the Prometheus text exposition format via
:meth:`PlatformMetrics.to_prometheus` for the ``admin_metrics``
endpoint.
"""

from __future__ import annotations

import math
import random as _random
import threading
from collections import deque
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ValidationError

#: Internal metric key: (name, sorted (label, value) pairs).
_MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _metric_key(name: str, labels: Optional[Mapping] = None) -> _MetricKey:
    if not labels:
        return (name, ())
    return (
        name,
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def _flat_name(key: _MetricKey) -> str:
    """Human/JSON-facing name: ``name`` or ``name{k=v,...}``."""
    name, labels = key
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair for pair in labels))


class LatencyHistogram:
    """Latency samples with percentile queries.

    Memory is bounded by reservoir sampling (Vitter's algorithm R, with
    a fixed seed for reproducibility): every recorded value has equal
    probability of residing in the reservoir, so percentile reads stay
    unbiased even when traffic trends over time.

    Thread-safe: concurrent :meth:`record` calls (executor threads in
    the Figure-3 path) serialize on an internal lock, so ``count`` and
    ``total`` are exact and the reservoir never corrupts.
    """

    def __init__(self, max_samples: int = 10_000) -> None:
        if max_samples < 10:
            raise ValidationError("max_samples must be >= 10")
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = []
        self._max = max_samples
        self._rng = _random.Random(0xC0FFEE)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        #: Trace-id exemplars: recent ``(value_ms, exemplar)`` pairs plus
        #: the exemplar of the all-time max, so a bad percentile links
        #: straight to a span tree in ``admin_traces``.
        self._exemplars: deque = deque(maxlen=8)
        self._max_exemplar: Optional[object] = None

    def record(self, value_ms: float, exemplar: Optional[object] = None) -> None:
        if value_ms < 0:
            raise ValidationError("latency cannot be negative")
        with self._lock:
            self.count += 1
            self.total += value_ms
            if value_ms >= self.max_value:
                self.max_value = value_ms
                if exemplar is not None:
                    self._max_exemplar = exemplar
            if exemplar is not None:
                self._exemplars.append((value_ms, exemplar))
            if len(self._samples) < self._max:
                self._samples.append(value_ms)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._max:
                    self._samples[slot] = value_ms
            self._sorted = None  # invalidate the percentile cache

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100) of recorded samples.

        Uses the *nearest-rank* definition: the value at (1-indexed)
        rank ``ceil(p/100 * N)`` of the sorted samples.  Deterministic
        on tiny sample sets: ``percentile(50)`` of ``[1, 2, 3, 4]`` is
        ``2`` (rank ``ceil(2.0) = 2``), and a single-sample histogram
        returns that sample for every ``p``.
        """
        if not 0.0 < p <= 100.0:
            raise ValidationError("percentile must be in (0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            rank = math.ceil(p / 100.0 * len(self._sorted))
            idx = min(len(self._sorted) - 1, max(0, rank - 1))
            return self._sorted[idx]

    def summary(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "mean_ms": self.mean,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": self.max_value,
        }
        exemplars = self.exemplars()
        if exemplars:  # key present only when a producer supplied any
            out["exemplars"] = exemplars
        return out

    def exemplars(self) -> List[Dict[str, object]]:
        """Recent + max exemplars (``value_ms`` / ``trace_id`` rows)."""
        with self._lock:
            rows = list(self._exemplars)
            max_ex = self._max_exemplar
        out = [
            {"value_ms": value, "trace_id": ref} for value, ref in rows
        ]
        if max_ex is not None and all(r["trace_id"] != max_ex for r in out):
            out.append({"value_ms": self.max_value, "trace_id": max_ex})
        return out


class PlatformMetrics:
    """Thread-safe counters + gauges + histograms with label support.

    Every mutation runs under one registry lock (histogram recording
    additionally serializes on the histogram's own lock, so handing a
    histogram object to a hot loop stays safe).  Labels are free-form
    string pairs; a labeled metric and its unlabeled namesake are
    distinct series, exactly as in Prometheus.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_MetricKey, int] = {}
        self._gauges: Dict[_MetricKey, float] = {}
        self._histograms: Dict[_MetricKey, LatencyHistogram] = {}

    # ----------------------------------------------------------- counters

    def increment(
        self, name: str, amount: int = 1, labels: Optional[Mapping] = None
    ) -> None:
        key = _metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def counter(self, name: str, labels: Optional[Mapping] = None) -> int:
        key = _metric_key(name, labels)
        with self._lock:
            return self._counters.get(key, 0)

    # ------------------------------------------------------------- gauges

    def set_gauge(
        self, name: str, value: float, labels: Optional[Mapping] = None
    ) -> None:
        key = _metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def gauge(self, name: str, labels: Optional[Mapping] = None) -> float:
        key = _metric_key(name, labels)
        with self._lock:
            return self._gauges.get(key, 0.0)

    # --------------------------------------------------------- histograms

    def histogram(
        self, name: str, labels: Optional[Mapping] = None
    ) -> LatencyHistogram:
        key = _metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = LatencyHistogram()
            return hist

    def record_latency(
        self,
        name: str,
        value_ms: float,
        labels: Optional[Mapping] = None,
        exemplar: Optional[object] = None,
    ) -> None:
        self.histogram(name, labels).record(value_ms, exemplar=exemplar)

    # ------------------------------------------------------------- export

    def snapshot(self) -> Dict[str, object]:
        """Everything, JSON-shaped, for a dashboard or the REST API.

        Labeled series render as ``name{k=v,...}`` keys alongside their
        unlabeled namesakes.
        """
        with self._lock:
            counters = {_flat_name(k): v for k, v in self._counters.items()}
            gauges = {_flat_name(k): v for k, v in self._gauges.items()}
            histograms = list(self._histograms.items())
        return {
            "counters": counters,
            "gauges": gauges,
            "latencies": {
                _flat_name(key): hist.summary() for key, hist in histograms
            },
        }

    def scrape_values(self) -> Dict[str, Tuple[str, float]]:
        """Flat ``name -> (kind, value)`` snapshot for the time-series
        scraper (:meth:`repro.core.telemetry.TimeSeriesStore.scrape`).

        Counters and gauges pass through; each histogram yields derived
        ``:count``/``:sum`` counters and ``:p50``/``:p95``/``:p99``/
        ``:max`` gauges, so percentile *history* is queryable even
        though the live registry only keeps a reservoir.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: Dict[str, Tuple[str, float]] = {}
        for key, value in counters:
            out[_flat_name(key)] = ("counter", float(value))
        for key, value in gauges:
            out[_flat_name(key)] = ("gauge", float(value))
        for key, hist in histograms:
            flat = _flat_name(key)
            out[flat + ":count"] = ("counter", float(hist.count))
            out[flat + ":sum"] = ("counter", hist.total)
            out[flat + ":p50"] = ("gauge", hist.percentile(50))
            out[flat + ":p95"] = ("gauge", hist.percentile(95))
            out[flat + ":p99"] = ("gauge", hist.percentile(99))
            out[flat + ":max"] = ("gauge", hist.max_value)
        return out

    def to_prometheus(self, prefix: str = "modissense") -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Counters gain the conventional ``_total`` suffix, histograms
        render as summaries (``quantile`` labels + ``_sum``/``_count``),
        and metric names are sanitized to the Prometheus charset with
        ``prefix`` prepended.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())

        lines: List[str] = []
        typed: set = set()

        def emit(name: str, kind: str, labels, value) -> None:
            if name not in typed:
                lines.append("# TYPE %s %s" % (name, kind))
                typed.add(name)
            lines.append("%s%s %s" % (name, _prom_labels(labels), _prom_value(value)))

        for (name, labels), value in counters:
            emit("%s_%s_total" % (prefix, _prom_name(name)), "counter", labels, value)
        for (name, labels), value in gauges:
            emit("%s_%s" % (prefix, _prom_name(name)), "gauge", labels, value)
        for (name, labels), hist in histograms:
            base = "%s_%s_ms" % (prefix, _prom_name(name))
            if base not in typed:
                lines.append("# TYPE %s summary" % base)
                typed.add(base)
            for q, p in (("0.5", 50), ("0.95", 95), ("0.99", 99)):
                q_labels = (("quantile", q),) + labels
                lines.append(
                    "%s%s %s"
                    % (base, _prom_labels(q_labels), _prom_value(hist.percentile(p)))
                )
            lines.append(
                "%s_sum%s %s" % (base, _prom_labels(labels), _prom_value(hist.total))
            )
            lines.append(
                "%s_count%s %s" % (base, _prom_labels(labels), _prom_value(hist.count))
            )
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name to the Prometheus charset."""
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '%s="%s"' % (_prom_name(k), _prom_escape(v)) for k, v in labels
    )
    return "{%s}" % rendered


#: Label-value escapes per the text exposition format v0.0.4: backslash,
#: double-quote and newline — and nothing else.  Applied in a single
#: pass so an already-escaped backslash can never be re-escaped.
_PROM_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _prom_escape(value: str) -> str:
    return "".join(
        _PROM_LABEL_ESCAPES.get(ch, ch) for ch in str(value)
    )


def _prom_value(value) -> str:
    value = float(value)
    # Prometheus spells specials "NaN"/"+Inf"/"-Inf"; Python's repr says
    # "nan"/"inf" (and int(nan) raises), so special-case them first.
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class InstrumentedQueryAnswering:
    """Transparent metrics wrapper around a QueryAnsweringModule.

    Same interface as the wrapped module; every search increments the
    path counter and records the simulated latency (coprocessor path)
    so ``metrics.snapshot()`` exposes the Figure-2-style distribution
    of live traffic.
    """

    def __init__(self, inner, metrics: Optional[PlatformMetrics] = None) -> None:
        self._inner = inner
        self.metrics = metrics or PlatformMetrics()

    def search(self, query):
        result = self._inner.search(query)
        if result.personalized:
            self._record_personalized(result)
        else:
            self.metrics.increment("queries.non_personalized")
        return result

    def search_personalized_batch(self, queries):
        results = self._inner.search_personalized_batch(queries)
        for result in results:
            self._record_personalized(result)
        return results

    def _record_personalized(self, result) -> None:
        self.metrics.increment("queries.personalized")
        # The trace id rides along as an exemplar so a bad percentile in
        # the histogram links straight to the span tree that caused it.
        exemplar = getattr(result, "trace_id", None)
        self.metrics.record_latency(
            "query.personalized", result.latency_ms, exemplar=exemplar
        )
        # Labeled series: latency distribution by fan-out width, so an
        # operator can see whether wide queries drive the tail.
        self.metrics.record_latency(
            "query.personalized",
            result.latency_ms,
            labels={"regions": result.regions_used},
            exemplar=exemplar,
        )
        self.metrics.increment("records.scanned", result.records_scanned)
        # Query-path profiling counters (route-then-stream pipeline):
        # cells merged = records the region scanners emitted; cells
        # decoded = payloads actually JSON-parsed (lazy decoding);
        # regions pruned = fan-out avoided by friend->region routing.
        self.metrics.increment("cells.merged", result.records_scanned)
        self.metrics.increment("cells.decoded", result.cells_decoded)
        self.metrics.increment("regions.pruned", result.regions_pruned)
        self.metrics.increment("regions.used", result.regions_used)
        # Scan-cache effectiveness, aggregated per query rather than per
        # lookup (the per-friend loop is far too hot to emit from).
        if result.cache_hits or result.cache_misses:
            self.metrics.increment(
                "cache.hits", result.cache_hits, labels={"cache": "scan"}
            )
            self.metrics.increment(
                "cache.misses", result.cache_misses, labels={"cache": "scan"}
            )
        # Threshold-algorithm early termination (0 with top-k off):
        # aggregates proven irrelevant before any decode/ship/merge, and
        # regions whose emission the merger short-circuited.
        if result.cells_avoided:
            self.metrics.increment("cells.avoided", result.cells_avoided)
        if result.regions_pruned_early:
            self.metrics.increment(
                "regions.pruned_early", result.regions_pruned_early
            )
        if result.degraded:
            # Partial answers are still answers, but an operator must be
            # able to alert on how often coverage dropped below 1.0.
            self.metrics.increment("queries.degraded")
            self.metrics.increment(
                "regions.missing", len(result.missing_regions)
            )

    def search_personalized_client_side(self, query):
        return self._inner.search_personalized_client_side(query)

    def __getattr__(self, name):
        # Delegate everything else (pois, visits, _coprocessor, ...).
        return getattr(self._inner, name)
