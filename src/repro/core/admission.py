"""Overload-safe serving: admission control and the brownout ladder.

MoDisSENSE's serving tier (REST boundary -> web-server farm ->
coprocessor fan-out) has no intrinsic overload story: past saturation,
latency collapses for *every* request while throughput stays flat.  This
module adds the missing layer — **off by default**
(:class:`~repro.config.AdmissionConfig`) and byte-identical to a build
without it when off or un-triggered:

- :class:`GradientLimiter` — one AIMD concurrency limiter per priority
  class (interactive > admin > background), driven by observed-vs-
  baseline latency: a congested window shrinks the limit
  multiplicatively, a calm one grows it additively.
- :class:`TokenBucket` per ``client_id`` at the REST boundary — a noisy
  client is throttled before it can displace everyone else.
- :class:`RetryBudget` — a global sliding-window budget capping fan-out
  retries + hedges at a fraction of recent region requests, so recovery
  machinery cannot amplify an overload into a retry storm.
- :class:`AdmissionController` — ties the signals into a **brownout
  ladder** that degrades before it rejects: stale hot-POI cache serves,
  shrunk scans and k, paused background jobs + ingest shed, and only
  then priority-ordered rejection (background first, interactive last).

Rejections surface as :class:`~repro.errors.OverloadedError` (HTTP 429
with ``Retry-After`` at the REST tier).  Every decision is observable:
``admission.*`` counters/gauges, ``admission.state`` wide events, and
the ``goodput`` SLO over offered-vs-rejected.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional

from ..config import AdmissionConfig
from ..errors import OverloadedError, ValidationError

#: Priority classes, best-served first.  The ladder rejects from the
#: tail of this tuple; the AIMD limiters start with weighted limits in
#: the same order.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_ADMIN = "admin"
PRIORITY_BACKGROUND = "background"
PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_ADMIN, PRIORITY_BACKGROUND)

#: Brownout ladder rungs, mildest first.  Each level keeps every
#: degradation of the levels below it.
LEVEL_NORMAL = 0
LEVEL_STALE = 1  # serve stale hot-POI cache entries (flagged degraded)
LEVEL_SHRINK = 2  # shrink per-region partials and cap k
LEVEL_PAUSE = 3  # pause pausable scheduler jobs + couple ingest shed
LEVEL_REJECT_BACKGROUND = 4  # reject the background class outright
LEVEL_REJECT_ADMIN = 5  # reject admin too; interactive is last to fall
LEVEL_NAMES = (
    "normal",
    "stale",
    "shrink",
    "pause",
    "reject_background",
    "reject_admin",
)
MAX_LEVEL = len(LEVEL_NAMES) - 1


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``clock`` is injectable so tests drive it deterministically; the
    default is wall time (:func:`time.monotonic`).
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValidationError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after_s(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will have accrued."""
        with self._lock:
            self._refill()
            missing = amount - self._tokens
            return max(0.0, missing / self.rate)

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now


class RetryBudget:
    """Global sliding-window budget over fan-out retries and hedges.

    Tracks region requests and budget spends in one-second buckets over
    ``window_s``.  A spend is granted while spends stay at or below
    ``max(min_tokens, ratio x window_requests)`` — i.e. recovery work
    may amplify offered load by at most ``ratio`` (plus a small floor so
    cold-start retries still function).  Duck-typed against
    :meth:`repro.hbase.client.HBaseCluster.attach_retry_budget`: the
    ``hbase`` package never imports this module.
    """

    def __init__(
        self,
        ratio: float = 0.1,
        window_s: float = 10.0,
        min_tokens: int = 5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValidationError("ratio must be in (0, 1]")
        if window_s <= 0:
            raise ValidationError("window_s must be positive")
        self.ratio = ratio
        self.window_s = window_s
        self.min_tokens = min_tokens
        self._clock = clock
        self._lock = threading.Lock()
        #: bucket start second -> [requests, spends]
        self._buckets: "deque[List[float]]" = deque()
        self.denied = 0
        self.spent = 0

    def record_request(self, amount: int = 1) -> None:
        """Count ``amount`` first-attempt region requests."""
        with self._lock:
            self._bucket()[1] += amount

    def try_spend(self, amount: int = 1) -> bool:
        """Draw ``amount`` retry/hedge tokens; False means the caller
        must degrade instead of retrying."""
        with self._lock:
            self._bucket()
            requests = sum(b[1] for b in self._buckets)
            spends = sum(b[2] for b in self._buckets)
            allowed = max(float(self.min_tokens), self.ratio * requests)
            if spends + amount <= allowed:
                self._buckets[-1][2] += amount
                self.spent += amount
                return True
            self.denied += amount
            return False

    def _bucket(self) -> List[float]:
        """The current one-second bucket (pruning expired ones)."""
        now_s = int(self._clock())
        while self._buckets and self._buckets[0][0] <= now_s - self.window_s:
            self._buckets.popleft()
        if not self._buckets or self._buckets[-1][0] != now_s:
            self._buckets.append([now_s, 0, 0])
        return self._buckets[-1]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            self._bucket()
            requests = sum(b[1] for b in self._buckets)
            spends = sum(b[2] for b in self._buckets)
            return {
                "ratio": self.ratio,
                "window_s": self.window_s,
                "window_requests": requests,
                "window_spends": spends,
                "allowed": max(float(self.min_tokens), self.ratio * requests),
                "spent_total": self.spent,
                "denied_total": self.denied,
            }


class GradientLimiter:
    """An AIMD concurrency limiter driven by observed latency.

    Admits while in-flight count is below the current limit.  Every
    ``sample_window`` completions the windowed median latency is
    compared against ``tolerance x baseline``: above it the limit
    shrinks multiplicatively (congestion), otherwise it grows additively
    (probe for headroom).  The baseline is either fixed from config or
    learned online as the smallest windowed median seen, drifting up 2%
    per window so a genuine regime change is eventually adopted.
    """

    def __init__(
        self,
        name: str,
        initial_limit: int,
        min_limit: int,
        max_limit: int,
        latency_tolerance: float = 2.0,
        decrease_factor: float = 0.7,
        increase_step: float = 1.0,
        sample_window: int = 16,
        baseline_latency_ms: Optional[float] = None,
    ) -> None:
        self.name = name
        self.min_limit = max(1, min_limit)
        self.max_limit = max_limit
        self.latency_tolerance = latency_tolerance
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.sample_window = sample_window
        self._limit = float(
            min(max(initial_limit, self.min_limit), max_limit)
        )
        self._inflight = 0
        self._samples: List[float] = []
        self._baseline = baseline_latency_ms
        self._fixed_baseline = baseline_latency_ms is not None
        self._decreases = 0
        self._increases = 0
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        return int(self._limit)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def baseline_ms(self) -> Optional[float]:
        return self._baseline

    def try_acquire(self) -> bool:
        with self._lock:
            if self._inflight >= int(self._limit):
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    def observe(self, latency_ms: float) -> None:
        """Feed one completion latency; adjusts once per full window."""
        with self._lock:
            self._samples.append(latency_ms)
            if len(self._samples) < self.sample_window:
                return
            ordered = sorted(self._samples)
            p50 = ordered[len(ordered) // 2]
            del self._samples[:]
            if not self._fixed_baseline:
                self._baseline = (
                    p50
                    if self._baseline is None
                    else min(p50, self._baseline * 1.02)
                )
            if p50 > self.latency_tolerance * self._baseline:
                self._limit = max(
                    float(self.min_limit),
                    self._limit * self.decrease_factor,
                )
                self._decreases += 1
            else:
                self._limit = min(
                    float(self.max_limit), self._limit + self.increase_step
                )
                self._increases += 1

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "limit": int(self._limit),
                "inflight": self._inflight,
                "baseline_ms": self._baseline,
                "baseline_fixed": self._fixed_baseline,
                "decreases": self._decreases,
                "increases": self._increases,
            }


class AdmissionTicket:
    """One admitted request's permit.  ``finish`` releases the limiter
    slot and (for latency-bearing endpoints) feeds the AIMD loop —
    idempotent, so a ``finally`` and an explicit call can coexist."""

    __slots__ = ("_controller", "priority", "_done")

    def __init__(self, controller: "AdmissionController", priority: str) -> None:
        self._controller = controller
        self.priority = priority
        self._done = False

    def finish(self, latency_ms: Optional[float] = None) -> None:
        if self._done:
            return
        self._done = True
        self._controller._finish(self.priority, latency_ms)


class AdmissionController:
    """The overload-protection brain: admit/reject decisions, the retry
    budget, and the brownout ladder.

    Constructed only when ``config.admission.enabled`` — an absent
    controller is the byte-identical default path.  ``tick(now)`` is the
    ladder's clock (the scheduler's ``admission_tick`` job): it reads
    the window's rejection rate and interactive latency signal and moves
    the level with hysteresis (``escalate_ticks`` consecutive overloaded
    ticks to climb one rung, ``recover_ticks`` calm ticks to step down).
    """

    def __init__(
        self,
        config: AdmissionConfig,
        metrics: Optional[Any] = None,
        event_log: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.event_log = event_log
        self._clock = clock
        weights = {
            PRIORITY_INTERACTIVE: 1.0,
            PRIORITY_ADMIN: config.admin_weight,
            PRIORITY_BACKGROUND: config.background_weight,
        }
        self.limiters: Dict[str, GradientLimiter] = {
            cls: GradientLimiter(
                cls,
                initial_limit=max(
                    1, int(config.initial_limit * weights[cls])
                ),
                min_limit=config.min_limit,
                max_limit=config.max_limit,
                latency_tolerance=config.latency_tolerance,
                decrease_factor=config.decrease_factor,
                increase_step=config.increase_step,
                sample_window=config.sample_window,
                baseline_latency_ms=config.baseline_latency_ms,
            )
            for cls in PRIORITIES
        }
        self.retry_budget = RetryBudget(
            ratio=config.retry_budget_ratio,
            window_s=config.retry_budget_window_s,
            min_tokens=config.retry_budget_min_tokens,
            clock=clock,
        )
        self._clients: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()
        self.level = LEVEL_NORMAL
        #: Hysteresis state: consecutive overloaded / calm ticks.
        self._hot_ticks = 0
        self._calm_ticks = 0
        self._forced = False
        #: Per-tick window counters (reset every ``tick``).
        self._win_offered = 0
        self._win_rejected = 0
        self._win_latencies: List[float] = []
        #: Lifetime counters mirrored into metrics.
        self.offered = 0
        self.rejected = 0
        self._scheduler: Optional[Any] = None
        self._ingest: Optional[Any] = None

    # ------------------------------------------------------------ wiring

    def attach_scheduler(self, scheduler: Any) -> None:
        """Give the ladder its level-3 lever (pause/resume jobs)."""
        self._scheduler = scheduler

    def attach_ingest(self, ingest: Any) -> None:
        """Give the ladder its ingest-shed lever (level 3+)."""
        self._ingest = ingest

    # ------------------------------------------------------- admit path

    def admit(
        self, priority: str = PRIORITY_INTERACTIVE, client_id: Optional[str] = None
    ) -> AdmissionTicket:
        """Admit one request or raise :class:`OverloadedError`.

        Checks, cheapest first: the ladder's outright-reject rungs, the
        caller's token bucket, then the class limiter.  Every offer and
        every rejection is counted (labeled by class/reason *and* as the
        unlabeled series the ``goodput`` SLO reads).
        """
        if priority not in self.limiters:
            raise ValidationError("unknown priority class %r" % priority)
        self._count_offer(priority)
        level = self.level
        if (
            level >= LEVEL_REJECT_BACKGROUND
            and priority == PRIORITY_BACKGROUND
        ) or (level >= LEVEL_REJECT_ADMIN and priority == PRIORITY_ADMIN):
            self._reject(
                priority,
                "brownout",
                retry_after_s=float(1 + level),
                detail="brownout level %s sheds %s traffic"
                % (LEVEL_NAMES[level], priority),
            )
        if client_id is not None:
            bucket = self._client_bucket(client_id)
            if not bucket.try_take():
                self._reject(
                    priority,
                    "rate_limited",
                    retry_after_s=max(0.05, bucket.retry_after_s()),
                    detail="client %r over %.0f req/s" % (
                        client_id, bucket.rate,
                    ),
                )
        limiter = self.limiters[priority]
        if not limiter.try_acquire():
            self._reject(
                priority,
                "concurrency",
                retry_after_s=0.5 * (1 + level),
                detail="%s concurrency limit %d reached"
                % (priority, limiter.limit),
            )
        return AdmissionTicket(self, priority)

    def _finish(self, priority: str, latency_ms: Optional[float]) -> None:
        limiter = self.limiters[priority]
        limiter.release()
        if latency_ms is None:
            return
        limiter.observe(latency_ms)
        if priority == PRIORITY_INTERACTIVE:
            with self._lock:
                self._win_latencies.append(latency_ms)

    def _client_bucket(self, client_id: str) -> TokenBucket:
        cfg = self.config
        with self._lock:
            bucket = self._clients.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    cfg.client_rate, cfg.client_burst, clock=self._clock
                )
                self._clients[client_id] = bucket
                while len(self._clients) > cfg.max_clients:
                    self._clients.popitem(last=False)
            else:
                self._clients.move_to_end(client_id)
            return bucket

    def _count_offer(self, priority: str) -> None:
        with self._lock:
            self.offered += 1
            self._win_offered += 1
        if self.metrics is not None:
            self.metrics.increment("admission.offered")
            self.metrics.increment(
                "admission.offered", labels={"class": priority}
            )

    def _reject(
        self, priority: str, reason: str, retry_after_s: float, detail: str
    ) -> None:
        with self._lock:
            self.rejected += 1
            self._win_rejected += 1
        if self.metrics is not None:
            self.metrics.increment("admission.rejected")
            self.metrics.increment(
                "admission.rejected",
                labels={"class": priority, "reason": reason},
            )
        raise OverloadedError(
            "overloaded (%s): %s" % (reason, detail),
            retry_after_s=retry_after_s,
        )

    # -------------------------------------------------- brownout ladder

    def stale_ok(self) -> bool:
        """Level 1+: stale hot-POI cache answers are acceptable."""
        return self.level >= LEVEL_STALE

    def query_shape(self) -> Optional[Dict[str, int]]:
        """Level 2+ scan shaping, or None when queries run unshaped."""
        if self.level < LEVEL_SHRINK:
            return None
        return {
            "per_region_limit": self.config.brownout_per_region_limit,
            "max_k": self.config.brownout_max_k,
        }

    def tick(self, now: Optional[float] = None) -> int:
        """One ladder evaluation; returns the (possibly new) level.

        Reads and resets the tick window.  A tick is *overloaded* when
        the window's rejection rate exceeds ``brownout_reject_rate`` or
        the interactive median latency exceeds ``brownout_latency_factor
        x baseline``; hysteresis turns runs of such ticks into level
        moves.  A forced level (``force_level``) holds until ``reset``.
        """
        cfg = self.config
        with self._lock:
            offered = self._win_offered
            rejected = self._win_rejected
            latencies = self._win_latencies
            self._win_offered = 0
            self._win_rejected = 0
            self._win_latencies = []
        reject_rate = rejected / offered if offered else 0.0
        median_ms = None
        if latencies:
            latencies.sort()
            median_ms = latencies[len(latencies) // 2]
        baseline = self.limiters[PRIORITY_INTERACTIVE].baseline_ms
        hot_latency = (
            median_ms is not None
            and baseline is not None
            and median_ms > cfg.brownout_latency_factor * baseline
        )
        overloaded = reject_rate > cfg.brownout_reject_rate or hot_latency
        if not self._forced:
            if overloaded:
                self._hot_ticks += 1
                self._calm_ticks = 0
                if (
                    self._hot_ticks >= cfg.escalate_ticks
                    and self.level < MAX_LEVEL
                ):
                    self._hot_ticks = 0
                    self._set_level(
                        self.level + 1,
                        reason="escalate",
                        now=now,
                        reject_rate=reject_rate,
                        median_ms=median_ms,
                    )
            else:
                self._calm_ticks += 1
                self._hot_ticks = 0
                if (
                    self._calm_ticks >= cfg.recover_ticks
                    and self.level > LEVEL_NORMAL
                ):
                    self._calm_ticks = 0
                    self._set_level(
                        self.level - 1,
                        reason="recover",
                        now=now,
                        reject_rate=reject_rate,
                        median_ms=median_ms,
                    )
        if self.metrics is not None:
            self.metrics.set_gauge("admission.brownout_level", self.level)
            for cls, limiter in self.limiters.items():
                self.metrics.set_gauge(
                    "admission.limit", limiter.limit, labels={"class": cls}
                )
                self.metrics.set_gauge(
                    "admission.inflight",
                    limiter.inflight,
                    labels={"class": cls},
                )
        return self.level

    def _set_level(
        self,
        level: int,
        reason: str,
        now: Optional[float] = None,
        reject_rate: float = 0.0,
        median_ms: Optional[float] = None,
    ) -> None:
        level = max(LEVEL_NORMAL, min(MAX_LEVEL, level))
        previous = self.level
        if level == previous:
            return
        self.level = level
        # Level-3 levers are edge-triggered on crossing the rung in
        # either direction; the other rungs are read directly by their
        # consumers (stale_ok / query_shape / admit).
        if previous < LEVEL_PAUSE <= level:
            if self._scheduler is not None:
                self._scheduler.pause_pausable()
            if self._ingest is not None:
                self._ingest.set_shed_override(True)
        elif level < LEVEL_PAUSE <= previous:
            if self._scheduler is not None:
                self._scheduler.resume_pausable()
            if self._ingest is not None:
                self._ingest.set_shed_override(False)
        if self.metrics is not None:
            self.metrics.increment(
                "admission.level_changes", labels={"direction": reason}
            )
            self.metrics.set_gauge("admission.brownout_level", level)
        if self.event_log is not None:
            self.event_log.emit(
                {
                    "type": "admission.state",
                    "level": level,
                    "level_name": LEVEL_NAMES[level],
                    "previous_level": previous,
                    "previous_name": LEVEL_NAMES[previous],
                    "reason": reason,
                    "reject_rate": reject_rate,
                    "median_latency_ms": median_ms,
                    "now": now,
                }
            )

    def force_level(self, level: int) -> int:
        """Pin the ladder at ``level`` (admin/drill control); held until
        :meth:`reset`.  Returns the applied (clamped) level."""
        level = max(LEVEL_NORMAL, min(MAX_LEVEL, level))
        self._forced = True
        self._set_level(level, reason="forced")
        return self.level

    def reset(self) -> None:
        """Back to level 0 with cleared hysteresis; unpins a forced
        level and releases the level-3 levers if held."""
        self._forced = False
        self._hot_ticks = 0
        self._calm_ticks = 0
        self._set_level(LEVEL_NORMAL, reason="reset")

    # ------------------------------------------------------------ admin

    def describe(self) -> Dict[str, Any]:
        """Full controller state for the admin surface and drills."""
        with self._lock:
            window = {
                "offered": self._win_offered,
                "rejected": self._win_rejected,
                "latency_samples": len(self._win_latencies),
            }
            clients = len(self._clients)
        return {
            "enabled": True,
            "level": self.level,
            "level_name": LEVEL_NAMES[self.level],
            "forced": self._forced,
            "offered": self.offered,
            "rejected": self.rejected,
            "window": window,
            "clients_tracked": clients,
            "limiters": {
                cls: limiter.describe()
                for cls, limiter in self.limiters.items()
            },
            "retry_budget": self.retry_budget.stats(),
            "hot_ticks": self._hot_ticks,
            "calm_ticks": self._calm_ticks,
        }
