"""Streaming ingest tier: bounded queues, group commit, incremental HotIn.

The seed write path acknowledges every visit individually: one WAL
append (one fsync-equivalent), one sorted memstore insert, and hotness
that only moves when the periodic batch MapReduce recomputes the whole
window.  At millions of users that is the platform's scalability cliff —
ROADMAP item 1.  This tier rebuilds the write path the way the streaming
literature does (see PAPERS.md: "Adaptive Processing of Spatial-Keyword
Data Over a Distributed Streaming Cluster" for load-aware repartitioning,
"Distributed Publish/Subscribe Query Processing on the Spatio-Textual
Data Stream" for incrementally-maintained aggregates):

- **Bounded partition queues with backpressure.**  Producers submit
  visits to per-partition queues of fixed capacity.  A full queue either
  blocks the producer (bounded wait) or sheds the write immediately —
  both end in a typed :class:`~repro.errors.BackpressureError` rather
  than unbounded memory growth, and a rejected visit was never enqueued,
  so nothing is ever half-applied.

- **Per-region applier workers with WAL group commit.**  Each partition
  owns one applier thread that drains up to ``max_batch`` visits and
  applies them per region through :meth:`Region.put_batch`: one WAL sync
  boundary and one sorted memstore merge per region per batch instead of
  one per visit.  Regions map onto partitions many-to-one and each apply
  takes a per-region lock, so regions stay single-writer even while the
  rebalancer remaps them.

- **Incremental HotIn.**  Every applied batch folds its visit deltas
  into :class:`~repro.core.modules.hotin_update.IncrementalHotIn` and
  refreshes only the touched POI rows — hotness freshness becomes one
  batch, not one batch-job period.  The MapReduce job survives as a
  periodic *reconciliation* pass that verifies the incremental state
  against the table and repairs divergence.

- **Load-aware repartitioning.**  Per-region ingest rates are tracked in
  an observation window; when one partition's share exceeds
  ``rebalance_hot_ratio`` times the mean, its hottest region moves to
  the coolest partition.  Folds are commutative and visit row keys are
  unique, so a remap needs no barrier.

- **Crash recovery without loss or double counting.**  The applier's
  order is (1) group-commit to WAL + memstore, (2) fold HotIn deltas,
  (3) advance the per-region *fold watermark* to the batch's last WAL
  sequence.  An applier that dies between (1) and (2) leaves the
  watermark behind the WAL tail; :meth:`recover` replays exactly the
  WAL suffix past the watermark — deltas land once, never zero times,
  never twice.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import IngestConfig
from ..errors import BackpressureError, ValidationError
from ..hbase.wal import WriteAheadLog
from .. import threadreg
from .modules.hotin_update import IncrementalHotIn
from .repositories.visits import VisitStruct, VisitsRepository
from .tracing import NULL_TRACER


class _InjectedApplierCrash(Exception):
    """Deterministic fault-injection point: the applier dies after the
    group commit is durable but before the HotIn fold."""


class _PartitionQueue:
    """A bounded MPSC queue with blocking/shedding producers."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        #: Entries are ``(enqueue_instant, item)`` so the dequeue side
        #: can account queue wait per batch.
        self._items: deque = deque()
        self._cond = threading.Condition()

    def offer(self, item: Any, block: bool, timeout_s: float) -> bool:
        """Enqueue ``item``; returns True if the producer had to wait.

        Raises :class:`BackpressureError` when the queue stays full —
        immediately under the shed policy, after ``timeout_s`` under the
        block policy.  The item is never partially enqueued.
        """
        with self._cond:
            if len(self._items) < self.capacity:
                self._items.append((time.monotonic(), item))
                self._cond.notify_all()
                return False
            if not block:
                raise BackpressureError(
                    "ingest queue full (%d); write shed" % self.capacity
                )
            deadline = time.monotonic() + timeout_s
            while len(self._items) >= self.capacity:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackpressureError(
                        "ingest queue full (%d) for %.1fs; producer gave up"
                        % (self.capacity, timeout_s)
                    )
                self._cond.wait(remaining)
            self._items.append((time.monotonic(), item))
            self._cond.notify_all()
            return True

    def take_batch(self, max_batch: int, wait_s: float) -> List[Any]:
        """Dequeue up to ``max_batch`` items, waiting up to ``wait_s``
        for the first; wakes blocked producers after freeing space."""
        return self.take_batch_timed(max_batch, wait_s)[0]

    def take_batch_timed(
        self, max_batch: int, wait_s: float
    ) -> Tuple[List[Any], float]:
        """:meth:`take_batch` plus the batch's maximum queue wait in
        seconds (the oldest dequeued item's age)."""
        with self._cond:
            if not self._items:
                self._cond.wait(wait_s)
            if not self._items:
                return [], 0.0
            take = min(max_batch, len(self._items))
            now = time.monotonic()
            queue_wait_s = 0.0
            batch = []
            for _ in range(take):
                enqueued_at, item = self._items.popleft()
                queue_wait_s = max(queue_wait_s, now - enqueued_at)
                batch.append(item)
            self._cond.notify_all()
            return batch, queue_wait_s

    def depth(self) -> int:
        with self._cond:
            return len(self._items)


class StreamingIngestTier:
    """Bounded-queue streaming writes with incremental HotIn maintenance.

    One instance serves one platform; producers call :meth:`submit` (or
    :meth:`submit_many`), applier threads do everything else.  The tier
    is inert until :meth:`start` and idempotently stoppable.
    """

    def __init__(
        self,
        visits_repository: VisitsRepository,
        poi_repository,
        incremental: IncrementalHotIn,
        config: Optional[IngestConfig] = None,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
        hot_poi_cache: Optional[Any] = None,
        event_log: Optional[Any] = None,
    ) -> None:
        self.visits = visits_repository
        self.pois = poi_repository
        self.incremental = incremental
        self.config = config or IngestConfig(enabled=True)
        self.metrics = metrics
        self.tracer = tracer or NULL_TRACER
        self.hot_poi_cache = hot_poi_cache
        #: Optional wide-event log: one canonical event per applied
        #: batch with the full cost account (size, regions, queue wait).
        self.event_log = event_log

        cfg = self.config
        self._queues = [
            _PartitionQueue(cfg.queue_capacity)
            for _ in range(cfg.num_partitions)
        ]
        # The cluster's table factory builds WAL-less regions (in-process
        # memstores don't crash on their own); streaming ingest NEEDS
        # region WALs — they are both the group-commit ledger and the
        # replay source for applier crash recovery.
        for region in self.visits.table.regions:
            if region.wal is None:
                region.wal = WriteAheadLog()
        #: region_id -> partition index; seeded round-robin in region
        #: key order, remapped by the rebalancer, extended on demand
        #: when auto-splits mint new regions.
        self._partition_of: Dict[int, int] = {
            region.region_id: i % cfg.num_partitions
            for i, region in enumerate(self.visits.table.regions)
        }
        #: Observation window for the rebalancer: events per region
        #: since the last check.
        self._region_counts: Dict[int, int] = {}
        #: region_id -> WAL sequence through which HotIn deltas are
        #: folded (the no-loss/no-double-count watermark).
        self._folded_seq: Dict[int, int] = {}
        #: Serializes applies per region so a rebalance mid-drain never
        #: makes a region dual-writer.
        self._region_locks: Dict[int, threading.Lock] = {}
        #: POI-repository refresh is cross-partition; one lock keeps the
        #: SQL tier single-writer.
        self._refresh_lock = threading.Lock()
        #: Monotonic instant of the last dirty-POI push (0 = never, so
        #: the first batch publishes immediately).
        self._last_refresh = 0.0
        self._lock = threading.Lock()

        #: Aggregation window pushed to the POI repository; the
        #: reconcile job re-anchors ``window_since`` as event time
        #: advances (None = all history).
        self.window_since: Optional[int] = None
        self.window_until: Optional[int] = None

        self._appliers: List[Optional[threading.Thread]] = [
            None
        ] * cfg.num_partitions
        self._running = False
        self._inflight = [0] * cfg.num_partitions
        self._crash_armed = [False] * cfg.num_partitions
        self._crashed = [False] * cfg.num_partitions

        # Counters mirrored into the metrics registry (kept locally too
        # so stats() works without one attached).
        self.submitted = 0
        self.applied = 0
        self.batches = 0
        self.backpressure_events = 0
        self.shed = 0
        #: Overload coupling (brownout ladder level 3+): while set, a
        #: full queue sheds immediately even under the ``block`` policy
        #: — producers must not pile up blocked threads while the query
        #: tier is fighting for capacity.
        self._shed_override = False
        self.apply_errors = 0
        self.recoveries = 0
        self.rebalances = 0
        #: Bounded history of rebalance decisions for the admin surface.
        self.rebalance_log: deque = deque(maxlen=32)

    # ---------------------------------------------------------- lifecycle

    def start(self) -> "StreamingIngestTier":
        with self._lock:
            if self._running:
                return self
            self._running = True
        for partition in range(self.config.num_partitions):
            self._spawn_applier(partition)
        return self

    def _spawn_applier(self, partition: int) -> None:
        thread = threading.Thread(
            target=self._applier_loop,
            args=(partition,),
            name="ingest-applier-%d" % partition,
            daemon=True,
        )
        self._appliers[partition] = thread
        self._crashed[partition] = False
        thread.start()

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop appliers; with ``drain`` (default) queued visits are
        applied first.  Returns whether everything drained."""
        drained = True
        if drain and self._running:
            drained = self.drain(timeout_s)
        with self._lock:
            self._running = False
        for thread in self._appliers:
            if thread is not None:
                thread.join(timeout=timeout_s)
        return drained

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Block until every queue is empty and no batch is in flight.

        Returns False on timeout or when a crashed applier leaves its
        partition undrainable (recover it first).
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            depths = [q.depth() for q in self._queues]
            busy = any(depths) or any(self._inflight)
            if not busy:
                # Publish any refresh-interval-coalesced hotness so a
                # successful drain means "applied AND query-visible".
                self._refresh_dirty_pois()
                return True
            for partition, depth in enumerate(depths):
                if (
                    self._crashed[partition]
                    and (depth or self._inflight[partition])
                ):
                    return False
            time.sleep(0.002)
        return False

    # ---------------------------------------------------------- producers

    def _route(self, visit: VisitStruct) -> Tuple[int, int]:
        """``(region_id, partition)`` for one visit under the current
        partition map; unseen regions (post-split daughters) are mapped
        to the shallowest queue."""
        row = self.visits.row_key(visit.user_id, visit.timestamp, visit.poi_id)
        region_id = self.visits.table.region_for_row(row).region_id
        with self._lock:
            partition = self._partition_of.get(region_id)
            if partition is None:
                depths = [q.depth() for q in self._queues]
                partition = depths.index(min(depths))
                self._partition_of[region_id] = partition
            self._region_counts[region_id] = (
                self._region_counts.get(region_id, 0) + 1
            )
        return region_id, partition

    def submit(self, visit: VisitStruct) -> int:
        """Enqueue one visit for streaming apply; returns its partition.

        Raises :class:`BackpressureError` when the partition's bounded
        queue stays full (immediately under ``shed``, after
        ``block_timeout_s`` under ``block``); the visit is then NOT
        enqueued and the producer owns the retry.
        """
        if not self._running:
            raise ValidationError(
                "ingest tier is not running (call start())"
            )
        _region_id, partition = self._route(visit)
        cfg = self.config
        block = cfg.backpressure == "block" and not self._shed_override
        try:
            waited = self._queues[partition].offer(
                visit, block=block, timeout_s=cfg.block_timeout_s
            )
        except BackpressureError:
            with self._lock:
                self.backpressure_events += 1
                if not block:
                    self.shed += 1
            self._emit_counter(
                "ingest.backpressure_events",
                labels={"policy": cfg.backpressure},
            )
            if not block:
                self._emit_counter("ingest.shed")
            raise
        if waited:
            with self._lock:
                self.backpressure_events += 1
            self._emit_counter(
                "ingest.backpressure_events", labels={"policy": "block"}
            )
        with self._lock:
            self.submitted += 1
        self._emit_counter("ingest.submitted")
        if self.metrics is not None:
            self.metrics.set_gauge(
                "ingest.queue_depth",
                self._queues[partition].depth(),
                labels={"partition": partition},
            )
        return partition

    def submit_many(self, visits: Iterable[VisitStruct]) -> int:
        count = 0
        for visit in visits:
            self.submit(visit)
            count += 1
        return count

    # ----------------------------------------------------------- appliers

    def _applier_loop(self, partition: int) -> None:
        threadreg.register_current_thread("ingest")
        queue = self._queues[partition]
        max_batch = self.config.max_batch
        while True:
            with self._lock:
                if not self._running:
                    break
            batch, queue_wait_s = queue.take_batch_timed(
                max_batch, wait_s=0.05
            )
            if not batch:
                continue
            self._inflight[partition] = len(batch)
            try:
                self._apply_batch(partition, batch, queue_wait_s)
            except _InjectedApplierCrash:
                self._crashed[partition] = True
                self._emit_counter("ingest.applier_crashes")
                self._inflight[partition] = 0
                return  # the thread dies; recover() resurrects it
            except Exception:
                with self._lock:
                    self.apply_errors += 1
                self._emit_counter("ingest.apply_errors")
            finally:
                if not self._crashed[partition]:
                    self._inflight[partition] = 0
        # Final sweep so stop(drain=True) never strands a tail batch.
        batch, queue_wait_s = queue.take_batch_timed(max_batch, wait_s=0.0)
        while batch:
            self._inflight[partition] = len(batch)
            try:
                self._apply_batch(partition, batch, queue_wait_s)
            except Exception:
                with self._lock:
                    self.apply_errors += 1
            finally:
                self._inflight[partition] = 0
            batch, queue_wait_s = queue.take_batch_timed(
                max_batch, wait_s=0.0
            )

    def _region_lock(self, region_id: int) -> threading.Lock:
        with self._lock:
            lock = self._region_locks.get(region_id)
            if lock is None:
                lock = self._region_locks[region_id] = threading.Lock()
            return lock

    def _apply_batch(
        self,
        partition: int,
        batch: Sequence[VisitStruct],
        queue_wait_s: float = 0.0,
    ) -> None:
        wall_start = time.perf_counter()
        span = self.tracer.span(
            "ingest.batch", partition=partition, size=len(batch)
        )
        error: Optional[str] = None
        regions_touched = 0
        try:
            # 1. Group commit per region: one WAL sync + one memstore
            #    merge each.  Routing happens at apply time, so a region
            #    split between submit and apply still lands correctly.
            table = self.visits.table
            groups: Dict[int, List] = {}
            regions: Dict[int, Any] = {}
            for visit in batch:
                cell = self.visits.visit_cell(visit)
                region = table.region_for_row(cell.row)
                groups.setdefault(region.region_id, []).append(cell)
                regions[region.region_id] = region
            seq_ranges: Dict[int, Tuple[int, int]] = {}
            for region_id, cells in groups.items():
                with self._region_lock(region_id):
                    region = regions[region_id]
                    if region.wal is None:  # post-split daughter region
                        region.wal = WriteAheadLog()
                    seq_ranges[region_id] = region.put_batch(cells)
                self._emit_counter("ingest.wal_group_commits")

            if self._crash_armed[partition]:
                self._crash_armed[partition] = False
                raise _InjectedApplierCrash(
                    "injected applier crash on partition %d" % partition
                )

            # 2. Fold deltas into the incremental HotIn state.
            self.incremental.fold(
                (v.poi_id, v.timestamp, v.grade) for v in batch
            )

            # 3. Advance fold watermarks — recovery replays only past
            #    these, so a fold is never double-counted.
            with self._lock:
                for region_id, (_first, last) in seq_ranges.items():
                    if last > self._folded_seq.get(region_id, 0):
                        self._folded_seq[region_id] = last

            # 4. Push dirty-POI hotness to the SQL repository, coalesced
            #    to one indexed-update burst per refresh interval, and
            #    invalidate cached non-personalized answers.
            self._maybe_refresh_dirty_pois()

            with self._lock:
                self.applied += len(batch)
                self.batches += 1
            self._emit_counter("ingest.applied", len(batch))
            self._emit_counter("ingest.batches")
            if self.metrics is not None:
                self.metrics.record_latency(
                    "ingest.batch_wall",
                    (time.perf_counter() - wall_start) * 1e3,
                    labels={"partition": partition},
                    exemplar=span.trace_id,
                )
                self.metrics.set_gauge(
                    "ingest.watermark", self.incremental.watermark
                )
            regions_touched = len(groups)
            span.tag("regions", regions_touched)
        except _InjectedApplierCrash:
            error = "applier_crash"
            span.tag("error", error)
            raise
        except Exception as exc:
            error = type(exc).__name__
            span.tag("error", error)
            raise
        finally:
            span.finish()
            if self.event_log is not None:
                self.event_log.emit(
                    {
                        "type": "ingest.batch",
                        "trace_id": span.trace_id,
                        "partition": partition,
                        "size": len(batch),
                        "regions": regions_touched,
                        "queue_wait_ms": queue_wait_s * 1e3,
                        "wall_ms": (time.perf_counter() - wall_start) * 1e3,
                        "watermark": self.incremental.watermark,
                        "error": error,
                    }
                )

    def _maybe_refresh_dirty_pois(self) -> int:
        """Interval-gated :meth:`_refresh_dirty_pois`.

        Dirty sets accumulate in the incremental state between pushes,
        so coalescing trades bounded hotness staleness
        (``refresh_interval_s`` wall seconds) for taking the indexed
        SQL-update path once per interval instead of once per batch.
        """
        interval = self.config.refresh_interval_s
        if interval > 0:
            if time.monotonic() - self._last_refresh < interval:
                return 0
        return self._refresh_dirty_pois()

    def freshness_age_s(self) -> float:
        """How stale query-visible hotness is, in wall seconds.

        0.0 when every folded delta has been published to the SQL tier
        (nothing dirty, nothing queued, nothing in flight) — an idle
        system is perfectly fresh, not infinitely stale.  Otherwise the
        age of the last dirty-POI push, which is exactly how long the
        oldest unpublished delta has been waiting.  Scraped each
        telemetry tick into ``ingest.freshness_age_s`` — the series the
        ingest-freshness SLO thresholds.
        """
        pending = self.incremental.dirty_count
        if not pending:
            pending = sum(q.depth() for q in self._queues) + sum(
                self._inflight
            )
        if not pending:
            return 0.0
        with self._refresh_lock:
            last = self._last_refresh
        if last == 0.0:
            return 0.0  # nothing ever published yet; age is undefined
        return max(0.0, time.monotonic() - last)

    def _refresh_dirty_pois(self) -> int:
        with self._refresh_lock:
            self._last_refresh = time.monotonic()
            updated = self.incremental.refresh_pois(
                self.pois,
                since=self.window_since,
                until=self.window_until,
                only_dirty=True,
            )
            if updated:
                self._emit_counter("ingest.hotin_refreshes", updated)
                if self.hot_poi_cache is not None:
                    self.hot_poi_cache.bump_epoch()
        return updated

    # --------------------------------------------------- crash / recovery

    def inject_crash(self, partition: int) -> None:
        """Testing hook: the partition's next batch group-commits
        durably, then the applier dies before folding HotIn deltas —
        the exact window WAL-replay recovery must close."""
        self._crash_armed[partition] = True

    def crashed_partitions(self) -> List[int]:
        return [i for i, dead in enumerate(self._crashed) if dead]

    def recover(self, partition: int) -> int:
        """Resurrect a crashed applier, replaying un-folded WAL suffixes.

        For every region currently mapped to ``partition``, WAL records
        past the region's fold watermark are decoded back into visit
        deltas and folded; the watermark then advances to the replayed
        tail.  Records at or below the watermark are skipped, so deltas
        land exactly once.  Returns the number of deltas replayed.
        """
        if not self._crashed[partition]:
            raise ValidationError(
                "partition %d has not crashed" % partition
            )
        with self._lock:
            region_ids = [
                rid
                for rid, p in self._partition_of.items()
                if p == partition
            ]
        replayed = 0
        decode_key = VisitsRepository.decode_key
        decode_grade = VisitsRepository.decode_grade
        for region in self.visits.table.regions:
            if region.region_id not in region_ids or region.wal is None:
                continue
            watermark = self._folded_seq.get(region.region_id, 0)
            deltas = []
            last_seq = watermark
            with self._region_lock(region.region_id):
                for record in region.wal.records_after(watermark):
                    _user_id, timestamp, poi_id = decode_key(
                        record.cell.row
                    )
                    deltas.append(
                        (
                            poi_id,
                            timestamp,
                            decode_grade(record.cell.value),
                        )
                    )
                    last_seq = record.sequence
            if deltas:
                self.incremental.fold(deltas)
                replayed += len(deltas)
                with self._lock:
                    if last_seq > self._folded_seq.get(
                        region.region_id, 0
                    ):
                        self._folded_seq[region.region_id] = last_seq
        if replayed:
            self._refresh_dirty_pois()
        with self._lock:
            self.recoveries += 1
        self._emit_counter("ingest.recoveries")
        if self._running:
            self._spawn_applier(partition)
        else:
            self._crashed[partition] = False
        return replayed

    def compact_wals(self) -> int:
        """Drop WAL records at or below each region's fold watermark.

        A folded record's cell is in the memstore/store files and its
        HotIn delta is in the incremental state — nothing ever replays
        it again.  Called after each reconcile pass, this bounds WAL
        memory to the un-folded suffix.  Returns records dropped.
        """
        dropped = 0
        with self._lock:
            watermarks = dict(self._folded_seq)
        for region in self.visits.table.regions:
            watermark = watermarks.get(region.region_id, 0)
            if region.wal is None or not watermark:
                continue
            with self._region_lock(region.region_id):
                dropped += region.wal.truncate_to(watermark)
        return dropped

    # ---------------------------------------------------------- rebalance

    def maybe_rebalance(self, force: bool = False) -> Optional[Dict]:
        """Load-aware repartition check over the observation window.

        Moves the hottest region off a hot-spotted partition when that
        partition's event share exceeds ``rebalance_hot_ratio`` times
        the mean (and it owns more than one region).  Safe mid-stream:
        per-region apply locks keep each region single-writer while its
        queued remainder drains from the old partition, and HotIn folds
        are commutative, so no barrier or fence is needed.  Returns the
        move record, or None when balanced.  The observation window
        resets after every check.
        """
        if not self.config.rebalance_enabled and not force:
            return None
        with self._lock:
            counts = dict(self._region_counts)
            self._region_counts = {}
            partition_of = dict(self._partition_of)
        total = sum(counts.values())
        if total < self.config.rebalance_min_events and not force:
            return None
        num = self.config.num_partitions
        if num < 2:
            return None
        loads = [0] * num
        for region_id, count in counts.items():
            loads[partition_of.get(region_id, 0)] += count
        mean = total / num
        hot = max(range(num), key=lambda p: loads[p])
        if mean <= 0:
            return None
        if not force and loads[hot] < self.config.rebalance_hot_ratio * mean:
            return None
        hot_regions = [
            (counts.get(rid, 0), rid)
            for rid, p in partition_of.items()
            if p == hot
        ]
        if len(hot_regions) < 2:
            return None  # cannot split a single-region partition
        cool = min(
            (p for p in range(num) if p != hot), key=lambda p: loads[p]
        )
        _count, moved = max(hot_regions)
        with self._lock:
            self._partition_of[moved] = cool
            self.rebalances += 1
        event = {
            "moved_region": moved,
            "from_partition": hot,
            "to_partition": cool,
            "hot_load": loads[hot],
            "mean_load": mean,
            "window_events": total,
        }
        self.rebalance_log.append(event)
        self._emit_counter("ingest.rebalances")
        return event

    # ------------------------------------------------------------- status

    def _emit_counter(
        self, name: str, amount: int = 1, labels: Optional[Dict] = None
    ) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount, labels=labels)

    def set_shed_override(self, active: bool) -> None:
        """Couple ingest to the overload signal (brownout level 3+).

        While active, a full partition queue sheds immediately —
        blocking-policy producers get the shed behaviour instead of a
        bounded wait — so ingest pressure cannot hold threads hostage
        while the serving tier is overloaded.  Level-triggered: callers
        flip it on when the ladder escalates and off when it recovers.
        """
        if self._shed_override == active:
            return
        self._shed_override = active
        self._emit_counter(
            "ingest.shed_override",
            labels={"active": str(active).lower()},
        )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            partition_of = dict(self._partition_of)
            counters = {
                "submitted": self.submitted,
                "applied": self.applied,
                "batches": self.batches,
                "backpressure_events": self.backpressure_events,
                "shed": self.shed,
                "apply_errors": self.apply_errors,
                "recoveries": self.recoveries,
                "rebalances": self.rebalances,
            }
        partitions = []
        for i, queue in enumerate(self._queues):
            partitions.append(
                {
                    "partition": i,
                    "depth": queue.depth(),
                    "capacity": queue.capacity,
                    "regions": sorted(
                        rid for rid, p in partition_of.items() if p == i
                    ),
                    "inflight": self._inflight[i],
                    "crashed": self._crashed[i],
                }
            )
        return {
            "running": self._running,
            "config": {
                "num_partitions": self.config.num_partitions,
                "queue_capacity": self.config.queue_capacity,
                "max_batch": self.config.max_batch,
                "backpressure": self.config.backpressure,
            },
            "shed_override": self._shed_override,
            "counters": counters,
            "partitions": partitions,
            "rebalance_log": list(self.rebalance_log),
            "hotin": self.incremental.stats(),
            "window": [self.window_since, self.window_until],
        }
