"""Web-tier caching primitives: single-flight coalescing + hot-POI cache.

Two reuse mechanisms live above the HBase scan cache:

- :class:`SingleFlight` deduplicates *identical in-flight* work: when N
  threads concurrently issue the same personalized query, one thread (the
  leader) executes the fan-out and the other N-1 (followers) block on an
  event and share the leader's result.  Nothing is stored — once the
  flight lands, the next identical call starts fresh — so coalescing is
  staleness-free by construction and safe to leave on everywhere.

- :class:`HotPOICache` memoizes non-personalized (SQL-path) answers,
  which depend only on the POI table's hotness/interest columns.  Those
  change exactly when the HotIn scheduler job rewrites them, so entries
  are validated against an explicit *epoch* (bumped by every HotIn run)
  plus the POI repository's write version (catching out-of-band inserts
  and updates).  A stale stamp is a miss; answers are byte-identical
  with the cache on or off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple


class _Flight:
    """One in-flight computation and its waiters."""

    __slots__ = ("event", "result", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


class SingleFlight:
    """Per-key deduplication of concurrent identical computations.

    :meth:`do` returns ``(result, coalesced)``: ``coalesced`` is False
    for the leader (the caller that actually ran ``fn``) and True for
    every follower that shared the leader's result.  A leader exception
    propagates to all waiters of that flight.  The leader removes the
    flight from the table *before* releasing its waiters, so a caller
    arriving after completion always starts a fresh flight — results are
    shared, never stored.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}
        self._coalesced_total = 0

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` (or wait for the identical in-flight run).

        Leadership is decided at registration, under the lock: the
        caller that creates the flight leads, everyone who finds one
        follows."""
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
            else:
                flight.waiters += 1
                self._coalesced_total += 1
        if leader:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                # Unpublish before waking waiters so nobody can join a
                # completed flight.
                with self._lock:
                    if self._flights.get(key) is flight:
                        del self._flights[key]
                flight.event.set()
            return flight.result, False
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.result, True

    def waiting(self, key: Hashable) -> int:
        """Followers currently blocked on ``key``'s flight (0 when no
        flight is active).  Tests use this to gate a leader until the
        whole herd has arrived."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.waiters if flight is not None else 0

    def in_flight(self) -> int:
        """Number of active flights."""
        with self._lock:
            return len(self._flights)

    @property
    def coalesced_total(self) -> int:
        """Calls that shared another caller's result since creation."""
        with self._lock:
            return self._coalesced_total


class HotPOICache:
    """Epoch- and version-stamped LRU over non-personalized answers.

    Keys are the full SQL-path query shape (bbox, keywords, sort, limit);
    values are the scored rows.  An entry is valid only while both
    stamps match: the explicit HotIn ``epoch`` (bumped by
    ``MoDisSENSE.run_hotin`` after every refresh) and the POI
    repository's ``version`` (bumped by every insert/update, catching
    writes that happen outside the HotIn job).
    """

    def __init__(
        self,
        max_entries: int = 256,
        metrics: Optional[Any] = None,
        event_log: Optional[Any] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._metrics = metrics
        #: Optional wide-event log: epoch bumps (mass invalidations)
        #: become ``cache.epoch_bump`` events so a sudden hot-POI
        #: hit-rate collapse has a visible cause on the timeline.
        self.event_log = event_log
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[int, int, Any]]" = (
            OrderedDict()
        )
        self._epoch = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def bump_epoch(self) -> int:
        """Explicit invalidation: every cached answer predates the new
        epoch and can no longer be served.  Returns the new epoch."""
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            stale = len(self._entries)
            self._entries.clear()
            if stale:
                self._invalidations += stale
                self._emit("cache.invalidations", stale)
        if self.event_log is not None:
            self.event_log.emit(
                {
                    "type": "cache.epoch_bump",
                    "cache": "hot_poi",
                    "epoch": epoch,
                    "invalidated": stale,
                }
            )
        return epoch

    def get(self, key: Hashable, version: int) -> Optional[Any]:
        """The cached rows for ``key`` if stamped with the current epoch
        and ``version``; None (and eager drop) otherwise."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._emit("cache.misses")
                return None
            epoch, stored_version, rows = entry
            if epoch != self._epoch or stored_version != version:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                self._emit("cache.invalidations")
                self._emit("cache.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._emit("cache.hits")
            return rows

    def get_stale(self, key: Hashable) -> Optional[Any]:
        """The cached rows for ``key`` regardless of epoch/version —
        the brownout ladder's level-1 trade: a stale hot-POI answer
        (flagged degraded by the caller) instead of a rejection.  The
        entry is *kept*: epoch bumps still purge, but a mismatched
        version stamp is tolerated rather than dropped, so recovery
        finds the cache warm."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self._emit("cache.stale_serves")
            return entry[2]

    def store(self, key: Hashable, version: int, rows: Any) -> None:
        with self._lock:
            self._entries[key] = (self._epoch, version, rows)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._emit("cache.evictions")

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            if removed:
                self._invalidations += removed
                self._emit("cache.invalidations", removed)
        return removed

    def _emit(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.increment(
                name, amount, labels={"cache": "hot_poi"}
            )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "epoch": self._epoch,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }
