"""Self-healing cluster supervision: the master's side of HBase.

Everything before this module *modeled* failure handling: ``fail_node``
moved regions instantly (a test harness playing master) and nothing
checked that bytes on "disk" stayed the bytes that were written.  The
:class:`ClusterSupervisor` closes the loop the way a real deployment
does:

- **Heartbeat leases.**  Every region server renews a lease at each
  supervisor tick (driven by the platform scheduler).  A crashed node —
  :meth:`HBaseCluster.crash_node`, including crashes injected by the
  fault injector's node schedule — simply stops renewing; after the
  configured lease timeout the supervisor declares it dead.  Detection
  is therefore *observational* (missed heartbeats), not oracular, and
  detection latency is the lease timeout, exactly as in ZooKeeper-based
  HBase.

- **WAL-split recovery.**  On death the supervisor splits the dead
  server's write-ahead log by region (:meth:`ServerWAL.split_by_region`),
  reassigns the stranded regions to survivors with load-aware (LPT)
  placement rather than blind round-robin, replays each region's
  committed-but-unflushed suffix into a fresh memstore, and reopens the
  region.  Fan-out coverage returns to 1.0 with answers byte-identical
  to a never-failed cluster — no manual ``recover_node`` involved.

- **Scrub-and-repair.**  A scheduled scrubber re-checksums every
  store-file block and WAL tail.  Corrupt blocks are rebuilt from the
  WAL (live tail + flush archive) and accepted only when the rebuilt
  bytes reproduce the original CRC; unrepairable blocks are quarantined
  so reads fail loudly (:class:`~repro.errors.ChecksumError`) instead of
  serving rot.

The supervisor is opt-in (``SupervisorConfig.enabled``); with it off the
platform behaves exactly as it did before this module existed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..config import SupervisorConfig
from ..errors import ConfigError
from ..hbase.wal import RegionWALHandle, ServerWAL

__all__ = ["ClusterSupervisor"]


class ClusterSupervisor:
    """Heartbeat failure detection + WAL-split recovery + storage scrub.

    Parameters
    ----------
    hbase:
        The :class:`~repro.hbase.client.HBaseCluster` to supervise.
    config:
        Lease/scrub periods; see :class:`~repro.config.SupervisorConfig`.
    metrics / tracer / event_log:
        Optional observability sinks (duck-typed ``PlatformMetrics``,
        ``Tracer`` and ``WideEventLog``); recovery and scrub work emits
        counters, spans and kept wide events through them.
    """

    def __init__(
        self,
        hbase: Any,
        config: Optional[SupervisorConfig] = None,
        metrics: Optional[Any] = None,
        tracer: Optional[Any] = None,
        event_log: Optional[Any] = None,
    ) -> None:
        self.hbase = hbase
        self.config = config or SupervisorConfig(enabled=True)
        self._metrics = metrics
        self._tracer = tracer
        self._event_log = event_log
        #: node_id -> ServerWAL (one durable log per region server).
        self._servers: Dict[int, ServerWAL] = {}
        #: region_id -> RegionWALHandle installed as ``region.wal``.
        self._handles: Dict[int, RegionWALHandle] = {}
        #: region_id -> Region (index over every supervised region).
        self._regions: Dict[int, Any] = {}
        #: Placement as of the last tick, to detect planned moves.
        self._placement: Dict[int, int] = {}
        #: node_id -> simulated time of the last renewed lease.
        self._leases: Dict[int, float] = {}
        #: Nodes declared dead (lease expired) and not yet rejoined.
        self._dead: set = set()
        #: Completed recovery / drill records, oldest first.
        self.recovery_history: List[Dict[str, Any]] = []
        self._now = 0.0
        self._attached = False

    # ---------------------------------------------------------- lifecycle

    def attach(self) -> None:
        """Install server WALs and take over the cluster's durability.

        Every region of every table gets a :class:`RegionWALHandle` on
        its placed node's :class:`ServerWAL`; records already in a plain
        per-region WAL (the ingest tier attaches those) are carried over
        with their sequence numbers, so fold watermarks stay valid.
        Idempotent after the first call.
        """
        if self._attached:
            return
        sim = self.hbase.simulation
        for node in sim.nodes:
            self._servers[node.node_id] = ServerWAL(
                node.node_id, archive_capacity=self.config.wal_archive_capacity
            )
            self._leases[node.node_id] = 0.0
        placement = sim.region_placement
        for name in self.hbase.table_names():
            for region in self.hbase.table(name).regions:
                self._adopt_region(region, placement)
        self._placement = dict(placement)
        self.hbase.attach_supervisor(self)
        self._attached = True

    def _adopt_region(self, region: Any, placement: Dict[int, int]) -> None:
        rid = region.region_id
        node_id = placement.get(rid)
        if node_id is None or node_id not in self._servers:
            return
        handle = RegionWALHandle(self._servers[node_id], rid)
        old = region.wal
        if old is not None and not isinstance(old, RegionWALHandle):
            # Carry over an existing plain WAL: same records, same
            # sequence numbers, same sync ledger.
            for record in old._records:  # noqa: SLF001 - one-shot migration
                handle._server.append_record(rid, record)
            handle._next_sequence = old.last_sequence + 1
            handle.sync_count = old.sync_count
        region.wal = handle
        self._handles[rid] = handle
        self._regions[rid] = region

    # -------------------------------------------------------- heartbeats

    def heartbeat_tick(self, now: float) -> None:
        """One supervisor tick: renew leases, detect deaths, heal.

        Live nodes renew; a node that cannot renew (crashed or failed)
        is declared dead once ``now - last_renewal > lease_timeout_s``,
        and its regions are recovered immediately in the same tick.
        """
        self._now = now
        sim = self.hbase.simulation
        placement = sim.region_placement
        # New regions (post-split daughters) join supervision lazily.
        for name in self.hbase.table_names():
            for region in self.hbase.table(name).regions:
                if region.region_id not in self._regions:
                    self._adopt_region(region, placement)
                    self._placement[region.region_id] = placement.get(
                        region.region_id
                    )
        live = set(sim.live_nodes())
        for node_id in live:
            self._leases[node_id] = now
            if node_id in self._dead:
                self._dead.discard(node_id)
                self._emit({"type": "node.rejoined", "node": node_id})
        timeout = self.config.lease_timeout_s
        for node_id in sorted(self._servers):
            if node_id in live or node_id in self._dead:
                continue
            last_seen = self._leases.get(node_id, 0.0)
            if now - last_seen <= timeout:
                continue  # within its lease; maybe just slow
            self._dead.add(node_id)
            self._count("supervisor.lease_missed")
            self._emit(
                {
                    "type": "node.lease_missed",
                    "node": node_id,
                    "last_seen": last_seen,
                    "declared_dead_at": now,
                    "lease_timeout_s": timeout,
                }
            )
            self._recover_dead_node(node_id, now, last_seen)
        self._rehome_moved_regions()
        self._set_gauge("supervisor.nodes_dead", float(len(self._dead)))

    def _rehome_moved_regions(self) -> None:
        """Follow planned placement moves (rebalances) with the WAL.

        When a live region's placement changed outside recovery — e.g.
        ``recover_node``'s rebalance — the region is flushed (a clean
        close: nothing left to replay) and its log records move to the
        new server so a *future* crash there recovers correctly.
        """
        placement = self.hbase.simulation.region_placement
        for rid, node_id in placement.items():
            old = self._placement.get(rid)
            if old == node_id or node_id not in self._servers:
                continue
            region = self._regions.get(rid)
            handle = self._handles.get(rid)
            if region is None or handle is None:
                continue
            region.flush()
            handle.rehome(self._servers[node_id])
            self._placement[rid] = node_id

    # ---------------------------------------------------------- recovery

    def _recover_dead_node(
        self, node_id: int, now: float, last_seen: float
    ) -> Dict[str, Any]:
        """HBase-style dead-server processing: split, reassign, replay."""
        sim = self.hbase.simulation
        span = self._span("supervisor.recover_node", node=node_id)
        stranded = sim.regions_on(node_id)
        dead_server = self._servers[node_id]

        split_span = self._span("supervisor.wal_split", parent=span,
                                node=node_id)
        split = dead_server.split_by_region()
        if split_span is not None:
            split_span.tag("regions_with_edits", len(split))
            split_span.finish()

        mapping = self._place_on_survivors(stranded)
        if mapping:
            self.hbase.reassign_regions(mapping)

        replayed_cells = 0
        recovered: List[Dict[str, Any]] = []
        for rid in stranded:
            target = mapping[rid]
            region = self._regions.get(rid)
            handle = self._handles.get(rid)
            if region is None or handle is None:
                continue
            replay_span = self._span("supervisor.wal_replay", parent=span,
                                     region=rid, node=target)
            handle.rehome(self._servers[target])
            cells = list(handle.replay())
            applied = region.replay_cells(cells)
            replayed_cells += applied
            self._placement[rid] = target
            if replay_span is not None:
                replay_span.tag("cells_replayed", applied)
                replay_span.finish()
            self._count("region.recovered")
            entry = {"region": rid, "node": target, "cells_replayed": applied}
            recovered.append(entry)
            self._emit(dict(entry, type="region.recovered",
                            from_node=node_id))

        # Detection cost (the lease the corpse held) plus replay cost at
        # the cost model's per-record rate: the drill's honest MTTR.
        mttr_s = (now - last_seen) + (
            replayed_cells * sim.cost_model.cost_per_record_s
        )
        self._count("supervisor.recoveries")
        self._set_gauge("supervisor.mttr_s", mttr_s)
        if span is not None:
            span.tag("regions_recovered", len(recovered))
            span.tag("cells_replayed", replayed_cells)
            span.tag("mttr_s", mttr_s)
            span.finish()
        record = {
            "node": node_id,
            "declared_dead_at": now,
            "last_seen": last_seen,
            "regions": recovered,
            "cells_replayed": replayed_cells,
            "mttr_s": mttr_s,
            "drill": False,
        }
        self.recovery_history.append(record)
        return record

    def _place_on_survivors(self, region_ids: List[int]) -> Dict[int, int]:
        """Load-aware placement: LPT over surviving servers.

        Each stranded region's weight is its approximate live-cell
        count; survivors start loaded with the regions they already
        host.  Heaviest region goes to the least-loaded survivor
        (lowest node id on ties) — the classic longest-processing-time
        heuristic, deterministic and within 4/3 of optimal balance.
        """
        sim = self.hbase.simulation
        survivors = sim.live_nodes()
        if not survivors:
            raise ConfigError("no live nodes to recover regions onto")

        def weight(region: Any) -> int:
            return sum(region.approx_rows(f) for f in region.families)

        loads: Dict[int, int] = {n: 0 for n in survivors}
        for rid, node_id in sim.region_placement.items():
            if node_id in loads and rid in self._regions:
                loads[node_id] += weight(self._regions[rid])
        weighted = sorted(
            ((weight(self._regions[rid]) if rid in self._regions else 0, rid)
             for rid in region_ids),
            key=lambda t: (-t[0], t[1]),
        )
        mapping: Dict[int, int] = {}
        for w, rid in weighted:
            target = min(survivors, key=lambda n: (loads[n], n))
            mapping[rid] = target
            loads[target] += w
        return mapping

    # ------------------------------------------------------------- scrub

    def scrub_tick(self, now: float) -> Dict[str, int]:
        """Scan every store file and WAL tail; repair or quarantine.

        Returns a summary of the pass.  Counters feed the
        ``storage_integrity`` SLO (corrupt blocks / scanned blocks);
        repairs and quarantines are kept wide events.
        """
        self._now = now
        span = self._span("supervisor.scrub")
        scanned = corrupt = repaired = quarantined = torn_tails = 0
        for name in self.hbase.table_names():
            for region in self.hbase.table(name).regions:
                rid = region.region_id
                for family in sorted(region.families):
                    for sf in region.store_files_for(family):
                        scanned += sf.block_count
                        bad = sf.verify()
                        if not bad:
                            continue
                        corrupt += len(bad)
                        for index in bad:
                            if self._repair_block(rid, family, sf, index):
                                repaired += 1
                            else:
                                sf.quarantine_block(index)
                                quarantined += 1
                                self._count("scrub.quarantined")
                                self._emit(
                                    {
                                        "type": "scrub.quarantine",
                                        "region": rid,
                                        "family": family,
                                        "file_id": sf.file_id,
                                        "block": index,
                                    }
                                )
                handle = self._handles.get(rid)
                wal = handle if handle is not None else region.wal
                if wal is not None and hasattr(wal, "drop_torn_tail"):
                    dropped = wal.drop_torn_tail()
                    if dropped:
                        torn_tails += dropped
                        self._count("scrub.wal_torn", dropped)
                        self._emit(
                            {
                                "type": "scrub.wal_torn",
                                "region": rid,
                                "records_dropped": dropped,
                            }
                        )
        self._count("scrub.blocks_scanned", scanned)
        if corrupt:
            self._count("scrub.blocks_corrupt", corrupt)
        if repaired:
            self._count("scrub.repaired", repaired)
        summary = {
            "blocks_scanned": scanned,
            "blocks_corrupt": corrupt,
            "blocks_repaired": repaired,
            "blocks_quarantined": quarantined,
            "wal_records_dropped": torn_tails,
        }
        if span is not None:
            for key, value in summary.items():
                span.tag(key, value)
            span.finish()
        return summary

    def _repair_block(
        self, rid: int, family: str, sf: Any, index: int
    ) -> bool:
        """Rebuild one corrupt block from the region's WAL records.

        Candidates are every logged cell of the right family inside the
        block's key range (live tail + flush archive, the latter being
        where flushed-and-truncated records went).  The rebuild is
        accepted only when it reproduces the block's original CRC —
        tried over every contiguous window of the right size, since the
        WAL may hold neighboring cells the block never contained.
        """
        handle = self._handles.get(rid)
        if handle is None:
            return False
        server = handle.server
        first_key, last_key = sf.block_ranges()[index]
        candidates = [
            record.cell
            for record in (
                list(server.archived_for(rid)) + list(server.records_for(rid))
            )
            if record.is_valid()
            and record.cell.family == family
            and first_key <= record.cell.sort_key() <= last_key
        ]
        candidates.sort(key=lambda c: c.sort_key())
        # rebuild_block validates count + CRC, so try every contiguous
        # window, largest first (the exact-match case is the whole set).
        for size in range(len(candidates), 0, -1):
            for lo in range(0, len(candidates) - size + 1):
                if sf.rebuild_block(index, candidates[lo : lo + size]):
                    self._emit(
                        {
                            "type": "scrub.repair",
                            "region": rid,
                            "family": family,
                            "file_id": sf.file_id,
                            "block": index,
                            "cells": size,
                        }
                    )
                    return True
        return False

    # ------------------------------------------------------------- drills

    def force_drill(self, node_id: Optional[int] = None) -> Dict[str, Any]:
        """Run a recovery drill NOW: crash a node, heal it, report.

        Picks the highest-id live node when none is given (node 0 often
        hosts the most regions; drills should not be the most expensive
        possible recovery by default).  The crash is real — memstores
        drop, placement strands — and so is the recovery; the returned
        history record carries the measured MTTR.
        """
        sim = self.hbase.simulation
        live = sim.live_nodes()
        if len(live) < 2:
            raise ConfigError("a drill needs at least two live nodes")
        if node_id is None:
            node_id = live[-1]
        elif node_id not in live:
            raise ConfigError("node %r is not live" % node_id)
        self.hbase.crash_node(node_id)
        self._dead.add(node_id)
        record = self._recover_dead_node(node_id, self._now, self._now)
        record["drill"] = True
        return record

    def force_scrub(self) -> Dict[str, int]:
        """Run a scrub pass immediately (REST drill hook)."""
        return self.scrub_tick(self._now)

    # ------------------------------------------------------------ surface

    def lease_table(self) -> List[Dict[str, Any]]:
        """Current lease state of every supervised server."""
        live = set(self.hbase.simulation.live_nodes())
        return [
            {
                "node": node_id,
                "last_seen": self._leases.get(node_id, 0.0),
                "live": node_id in live,
                "declared_dead": node_id in self._dead,
            }
            for node_id in sorted(self._servers)
        ]

    def describe(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "heartbeat_period_s": self.config.heartbeat_period_s,
            "lease_timeout_s": self.config.lease_timeout_s,
            "scrub_period_s": self.config.scrub_period_s,
            "supervised_regions": len(self._regions),
            "servers": len(self._servers),
            "dead_nodes": sorted(self._dead),
            "recoveries": len(self.recovery_history),
        }

    # ------------------------------------------------------------ helpers

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.increment(name, amount)

    def _set_gauge(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge(name, value)

    def _emit(self, event: Dict[str, Any]) -> None:
        if self._event_log is not None:
            self._event_log.emit(dict(event), keep=True)

    def _span(self, name: str, parent: Any = None, **tags: Any):
        if self._tracer is None or not getattr(self._tracer, "enabled", False):
            return None
        return self._tracer.span(name, parent=parent, **tags)
