"""End-to-end query tracing: hierarchical spans over the query path.

The paper's latency claims (Figure 2's sub-second fan-out, Figure 3's
concurrency scaling) are statements about *where time goes* inside a
personalized query.  A single end-to-end number cannot show that routing
pruned half the regions but the heap merge dominated, or that one
straggler region blew up p99.  This module provides the span layer every
other observability feature builds on:

- :class:`Span` — one timed operation (``trace_id``, ``span_id``,
  parent, name, start, duration, free-form tags);
- :class:`Tracer` — thread-safe span factory + collector.  Finished
  traces are assembled into plain-dict span *trees* and kept in a
  bounded ring buffer; traces whose root latency crosses a configurable
  threshold are additionally captured in a slow-query log;
- :data:`NULL_TRACER` — the disabled tracer.  Every producer takes a
  tracer argument defaulting to it, so untraced call sites pay a single
  attribute check and results are byte-identical with tracing on or off
  (spans never touch computation, only observe it).

Context propagation is explicit: the client starts a root span, hands
per-query *parent* spans to the HBase client's fan-out, and each
region's coprocessor invocation opens child spans on the executor
thread.  Parent links are plain object references, so propagation works
across thread pools without thread-local machinery.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from ..errors import ValidationError

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class Span:
    """One timed operation within a trace.

    Spans are context managers: ``with tracer.span("merge", parent=root)
    as s: ...`` finishes the span (and stamps its duration) on exit.
    Tags may be added until the trace's *root* span finishes, which is
    when the tree is assembled and snapshotted.
    """

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_ms",
        "duration_ms",
        "tags",
        "finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ms: float,
        tags: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.tags = tags
        self.finished = False

    def tag(self, key: str, value: Any) -> "Span":
        """Attach one key/value annotation; returns self for chaining."""
        self.tags[key] = value
        return self

    def finish(self) -> None:
        self._tracer.finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.tags.setdefault("error", repr(exc))
        self._tracer.finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%s trace=%s span=%s parent=%s %.3fms)" % (
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.duration_ms,
        )


class _NoopSpan:
    """The span the disabled tracer hands out: accepts every operation,
    records nothing.  A single shared instance keeps the off path free
    of allocation."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = "noop"
    start_ms = 0.0
    duration_ms = 0.0
    finished = True

    @property
    def tags(self) -> Dict[str, Any]:
        return {}

    def tag(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Thread-safe span factory and trace collector.

    Parameters
    ----------
    enabled:
        When False every ``span``/``start_span`` returns the shared
        no-op span and nothing is recorded.
    max_traces:
        Ring-buffer capacity for assembled traces (oldest evicted).
    slow_threshold_ms:
        Root spans whose latency (the ``latency_ms`` tag when present,
        else wall duration) reaches this value are also captured in the
        bounded slow-query log.  ``None`` disables the log.
    slow_log_size:
        Slow-query ring-buffer capacity.
    clock:
        Seconds-returning monotonic clock (injectable for tests);
        defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_traces: int = 128,
        slow_threshold_ms: Optional[float] = None,
        slow_log_size: int = 32,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_traces < 1:
            raise ValidationError("max_traces must be >= 1")
        if slow_log_size < 1:
            raise ValidationError("slow_log_size must be >= 1")
        if slow_threshold_ms is not None and slow_threshold_ms < 0:
            raise ValidationError("slow_threshold_ms cannot be negative")
        self.enabled = enabled
        self.slow_threshold_ms = slow_threshold_ms
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: trace_id -> finished spans awaiting their root.
        self._pending: Dict[int, List[Span]] = {}
        self._recent: deque = deque(maxlen=max_traces)
        self._slow: deque = deque(maxlen=slow_log_size)
        #: Traces evicted before their root finished (leak guard).
        self.dropped_traces = 0

    @classmethod
    def from_config(cls, config) -> "Tracer":
        """Build from a :class:`repro.config.TracingConfig`."""
        return cls(
            enabled=config.enabled,
            max_traces=config.max_traces,
            slow_threshold_ms=config.slow_query_threshold_ms,
            slow_log_size=config.slow_log_size,
        )

    # ------------------------------------------------------------ producing

    def _now_ms(self) -> float:
        return (self._clock() - self._epoch) * 1e3

    def span(self, name: str, parent: Any = None, **tags: Any):
        """Open a span.  With no ``parent`` this starts a new trace.

        Usable as a context manager (finishes on exit) or imperatively
        via :meth:`Span.finish`.
        """
        if not self.enabled:
            return NOOP_SPAN
        with self._lock:
            span_id = next(self._ids)
        if parent is None or parent is NOOP_SPAN:
            trace_id: int = span_id
            parent_id: Optional[int] = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(self, trace_id, span_id, parent_id, name, self._now_ms(), tags)

    start_span = span

    def finish(self, span: Any) -> None:
        """Stamp ``span``'s duration and collect it; finishing a trace's
        root span assembles and publishes the whole tree."""
        if span is NOOP_SPAN or span.finished:
            return
        span.finished = True
        span.duration_ms = self._now_ms() - span.start_ms
        with self._lock:
            self._pending.setdefault(span.trace_id, []).append(span)
            if span.parent_id is not None:
                self._evict_orphans_locked()
                return
            spans = self._pending.pop(span.trace_id)
            tree = _assemble_tree(spans)
            self._recent.append(tree)
            threshold = self.slow_threshold_ms
            if threshold is not None:
                latency = span.tags.get("latency_ms", span.duration_ms)
                try:
                    is_slow = float(latency) >= threshold
                except (TypeError, ValueError):
                    is_slow = False
                if is_slow:
                    self._slow.append(tree)

    def _evict_orphans_locked(self) -> None:
        """Bound ``_pending`` against traces whose root never finishes
        (a crashed caller): drop the oldest once over 4x the ring size."""
        limit = 4 * (self._recent.maxlen or 1)
        while len(self._pending) > limit:
            oldest = next(iter(self._pending))
            del self._pending[oldest]
            self.dropped_traces += 1

    # ------------------------------------------------------------ consuming

    def recent_traces(self, limit: Optional[int] = None) -> List[Dict]:
        """Assembled traces, newest first."""
        with self._lock:
            traces = list(self._recent)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(0, limit)]
        return traces

    def slow_queries(self, limit: Optional[int] = None) -> List[Dict]:
        """Slow-query log (traces over the threshold), newest first."""
        with self._lock:
            traces = list(self._slow)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(0, limit)]
        return traces

    def last_trace(self) -> Optional[Dict]:
        with self._lock:
            return self._recent[-1] if self._recent else None

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._slow.clear()
            self._pending.clear()

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "recent_traces": len(self._recent),
                "slow_traces": len(self._slow),
                "pending_traces": len(self._pending),
                "dropped_traces": self.dropped_traces,
                "slow_threshold_ms": self.slow_threshold_ms,
                "max_traces": self._recent.maxlen,
                "slow_log_size": self._slow.maxlen,
            }


def _assemble_tree(spans: List[Span]) -> Dict[str, Any]:
    """Plain-dict span tree from a trace's finished spans.

    The root is the span with no parent; spans whose parent is missing
    (finished after an eviction, say) attach under the root so nothing
    is silently lost.  Children are ordered by start time.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        nodes[span.span_id] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start_ms": span.start_ms,
            "duration_ms": span.duration_ms,
            "tags": dict(span.tags),
            "children": [],
        }
    root = None
    for span in spans:
        if span.parent_id is None:
            root = nodes[span.span_id]
            break
    orphans: List[Dict[str, Any]] = []
    for span in spans:
        node = nodes[span.span_id]
        if span.parent_id is None:
            continue
        parent = nodes.get(span.parent_id)
        if parent is not None:
            parent["children"].append(node)
        else:
            orphans.append(node)
    if root is None:  # defensive: publish *something* coherent
        root = {
            "span_id": None,
            "parent_id": None,
            "name": "(lost-root)",
            "start_ms": min(s.start_ms for s in spans),
            "duration_ms": 0.0,
            "tags": {},
            "children": [],
        }
    root["children"].extend(orphans)
    _sort_children(root)
    return {
        "trace_id": spans[0].trace_id if spans else None,
        "root": root,
        "duration_ms": root["duration_ms"],
        "span_count": len(spans),
        "stages": sorted({span.name for span in spans}),
        # Surfaced at the top level so trace consumers can filter
        # partial-result queries without walking the tree.
        "degraded": bool(root["tags"].get("degraded", False)),
    }


def _sort_children(node: Dict[str, Any]) -> None:
    node["children"].sort(key=lambda child: (child["start_ms"], child["span_id"] or 0))
    for child in node["children"]:
        _sort_children(child)


#: The shared disabled tracer: every producer defaults to it, so call
#: sites never need ``if tracer is not None`` checks.
NULL_TRACER = Tracer(enabled=False)
