"""Social Info Repository (HBase-resident).

"For each MoDisSENSE user and for each connected social network, the
list of friends is persisted ... a compressed list with the unique
social network id, the name and the profile picture of each friend."
(Section 2.1)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...hbase import Cell, HBaseCluster, TableDescriptor, encode_int
from ...social import FriendInfo
from ..serialization import decode_compressed_json, encode_compressed_json

TABLE = "social_info"
FAMILY = "s"


class SocialInfoRepository:
    """Per-(user, network) compressed friend lists."""

    def __init__(self, cluster: HBaseCluster, num_regions: int = 4) -> None:
        self.cluster = cluster
        self.table = cluster.create_table(
            TableDescriptor(name=TABLE, families=[FAMILY], num_regions=num_regions)
        )

    @staticmethod
    def _row_key(user_id: int) -> bytes:
        return encode_int(user_id)

    def store_friends(
        self,
        user_id: int,
        network: str,
        friends: List[FriendInfo],
        timestamp: int,
    ) -> None:
        """Persist the full friend list for one connected network.

        The whole list is one compressed cell: friend lists are read all
        at once by the Query Answering Module, never partially.
        """
        payload = [
            {
                "id": f.network_user_id,
                "name": f.name,
                "picture": f.picture_url,
            }
            for f in friends
        ]
        self.table.put(
            Cell(
                row=self._row_key(user_id),
                family=FAMILY,
                qualifier=network.encode("utf-8"),
                timestamp=timestamp,
                value=encode_compressed_json(payload),
            )
        )

    def get_friends(self, user_id: int, network: str) -> List[FriendInfo]:
        """The stored friend list, or [] if the network is not linked."""
        value = self.table.get(
            self._row_key(user_id), FAMILY, network.encode("utf-8")
        )
        if value is None:
            return []
        return [
            FriendInfo(
                network_user_id=item["id"],
                name=item["name"],
                picture_url=item["picture"],
            )
            for item in decode_compressed_json(value)
        ]

    def get_all_friends(self, user_id: int) -> Dict[str, List[FriendInfo]]:
        """Friend lists across every linked network."""
        row = self.table.get_row(self._row_key(user_id), FAMILY)
        return {
            qualifier.decode("utf-8"): [
                FriendInfo(
                    network_user_id=item["id"],
                    name=item["name"],
                    picture_url=item["picture"],
                )
                for item in decode_compressed_json(value)
            ]
            for qualifier, value in row.items()
        }

    def linked_networks(self, user_id: int) -> List[str]:
        row = self.table.get_row(self._row_key(user_id), FAMILY)
        return sorted(q.decode("utf-8") for q in row)
