"""GPS Traces Repository (HBase-resident).

"Since the platform may continuously receive GPS traces, this repository
is expected to deal with a high update rate ... there is no need to
build indices on them." (Section 2.1)

Row key: ``geohash(6) ␟ timestamp ␟ user_id`` — no secondary indexes,
but the geohash prefix gives the periodic bulk jobs spatial locality for
free, and the timestamp component makes windowed scans cheap inside a
geohash cell.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...datagen.gps import GPSPoint
from ...geo import geohash_encode
from ...hbase import (
    Cell,
    HBaseCluster,
    TableDescriptor,
    compose_key,
    encode_int,
)
from ..serialization import decode_json, encode_json

TABLE = "gps_traces"
FAMILY = "g"
QUALIFIER = b"p"
GEOHASH_PRECISION = 6


class GPSTracesRepository:
    """Append-heavy trace storage for the Event Detection Module."""

    def __init__(self, cluster: HBaseCluster, num_regions: int = 16) -> None:
        self.cluster = cluster
        self.table = cluster.create_table(
            TableDescriptor(name=TABLE, families=[FAMILY], num_regions=num_regions)
        )
        #: High-water mark of processed timestamps; the periodic job
        #: only clusters traces newer than this (paper: "processes in
        #: parallel the *updates* of GPS Traces Repository").
        self.processed_until = 0

    @staticmethod
    def _row_key(point: GPSPoint) -> bytes:
        return compose_key(
            geohash_encode(point.lat, point.lon, GEOHASH_PRECISION),
            encode_int(point.timestamp),
            encode_int(point.user_id),
        )

    def push(self, point: GPSPoint) -> None:
        """Ingest one trace sample from a mobile device."""
        self.table.put(
            Cell(
                row=self._row_key(point),
                family=FAMILY,
                qualifier=QUALIFIER,
                timestamp=point.timestamp,
                value=encode_json({"lat": point.lat, "lon": point.lon}),
            )
        )

    def push_many(self, points) -> int:
        count = 0
        for point in points:
            self.push(point)
            count += 1
        return count

    def scan_window(
        self, since: Optional[int] = None, until: Optional[int] = None
    ) -> Iterator[GPSPoint]:
        """All traces in ``[since, until)`` (bulk, unindexed)."""
        for cell in self.table.scan(FAMILY):
            # Positional parse — geohash(6) ␟ ts(8) ␟ user(8): the
            # fixed-width ints may contain the separator byte.
            row = cell.row
            ts = int.from_bytes(row[7:15], "big")
            if since is not None and ts < since:
                continue
            if until is not None and ts >= until:
                continue
            payload = decode_json(cell.value)
            yield GPSPoint(
                user_id=int.from_bytes(row[16:24], "big"),
                lat=payload["lat"],
                lon=payload["lon"],
                timestamp=ts,
            )

    def user_trace(
        self,
        user_id: int,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> List[GPSPoint]:
        """One user's points in time order — the trajectory module's
        input.  A full scan by design: this repository has no per-user
        index, and trajectory extraction is a periodic bulk job."""
        points = [
            p for p in self.scan_window(since, until) if p.user_id == user_id
        ]
        points.sort(key=lambda p: p.timestamp)
        return points

    def count(self) -> int:
        return self.table.total_rows(FAMILY)
