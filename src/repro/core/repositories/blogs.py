"""Blogs Repository (PostgreSQL-resident).

"We define a semantic trajectory to be a timestamped sequence of POIs
summarizing user's activity during the day.  As POIs, blogs are
frequently queried by users but they do not have to deal with heavy
updates and thus are stored as a PostgreSQL resident table."
(Section 2.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import StorageError, ValidationError
from ...sqlstore import (
    Column,
    ColumnType,
    Eq,
    HashIndex,
    Query,
    SqlEngine,
    TableSchema,
)

TABLE = "blogs"


@dataclass
class BlogVisit:
    """One stop of a semantic trajectory, editable by the user."""

    poi_id: int
    poi_name: str
    arrival: int
    departure: int
    note: str = ""

    def as_dict(self) -> Dict:
        return {
            "poi_id": self.poi_id,
            "poi_name": self.poi_name,
            "arrival": self.arrival,
            "departure": self.departure,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BlogVisit":
        return cls(
            poi_id=data["poi_id"],
            poi_name=data["poi_name"],
            arrival=data["arrival"],
            departure=data["departure"],
            note=data.get("note", ""),
        )


@dataclass
class BlogEntry:
    """A day's blog: ordered visits plus publication state."""

    blog_id: int
    user_id: int
    day: str  # ISO date, e.g. "2015-05-31"
    visits: List[BlogVisit]
    title: str = ""
    published_to: tuple = ()


class BlogsRepository:
    """CRUD for user blogs with per-user lookup."""

    def __init__(self, engine: SqlEngine) -> None:
        self.engine = engine
        engine.create_table(
            TableSchema(
                name=TABLE,
                columns=[
                    Column("blog_id", ColumnType.INTEGER),
                    Column("user_id", ColumnType.INTEGER),
                    Column("day", ColumnType.TEXT),
                    Column("title", ColumnType.TEXT, default=""),
                    Column("visits", ColumnType.JSON, default=[]),
                    Column("published_to", ColumnType.JSON, default=[]),
                ],
                primary_key="blog_id",
            )
        )
        engine.create_index(TABLE, HashIndex("user_id"))
        self._next_id = 1

    def create(
        self, user_id: int, day: str, visits: List[BlogVisit], title: str = ""
    ) -> BlogEntry:
        blog_id = self._next_id
        self._next_id += 1
        self.engine.insert(
            TABLE,
            {
                "blog_id": blog_id,
                "user_id": user_id,
                "day": day,
                "title": title or "My day on %s" % day,
                "visits": [v.as_dict() for v in visits],
                "published_to": [],
            },
        )
        return BlogEntry(
            blog_id=blog_id,
            user_id=user_id,
            day=day,
            visits=visits,
            title=title or "My day on %s" % day,
        )

    def get(self, blog_id: int) -> Optional[BlogEntry]:
        row = self.engine.table(TABLE).get_by_pk(blog_id)
        return self._row_to_entry(row) if row else None

    def for_user(self, user_id: int) -> List[BlogEntry]:
        rows = self.engine.select(
            Query(table=TABLE, where=Eq("user_id", user_id), order_by=("day", False))
        )
        return [self._row_to_entry(row) for row in rows]

    def update_visits(self, blog_id: int, visits: List[BlogVisit]) -> None:
        """Replace the visit sequence (reordering / editing in the GUI)."""
        self._validate_sequence(visits)
        rid = self._rid(blog_id)
        self.engine.update(TABLE, rid, {"visits": [v.as_dict() for v in visits]})

    def mark_published(self, blog_id: int, network: str) -> None:
        rid = self._rid(blog_id)
        row = self.engine.table(TABLE).get(rid)
        assert row is not None
        published = list(row["published_to"])
        if network not in published:
            published.append(network)
        self.engine.update(TABLE, rid, {"published_to": published})

    def _rid(self, blog_id: int) -> int:
        rids = self.engine.table(TABLE).rids_by_pk(blog_id)
        if not rids:
            raise StorageError("no blog with id %r" % blog_id)
        return next(iter(rids))

    @staticmethod
    def _validate_sequence(visits: List[BlogVisit]) -> None:
        for visit in visits:
            if visit.departure < visit.arrival:
                raise ValidationError(
                    "visit to %r departs before it arrives" % visit.poi_name
                )

    @staticmethod
    def _row_to_entry(row: Dict) -> BlogEntry:
        return BlogEntry(
            blog_id=row["blog_id"],
            user_id=row["user_id"],
            day=row["day"],
            title=row["title"],
            visits=[BlogVisit.from_dict(v) for v in row["visits"]],
            published_to=tuple(row["published_to"]),
        )
