"""POI Repository (PostgreSQL-resident).

"It contains all the information MoDisSENSE needs to know about POIs.
The name of a POI, its geographical location, the keywords
characterizing it and the hotness/interest metrics ... While POI
repository has to deal with low insert/update rates, it should be able
to handle heavy, random access read loads." (Section 2.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import QueryError, ValidationError
from ...geo import BoundingBox, GeoPoint
from ...sqlstore import (
    And,
    BBoxContains,
    Column,
    ColumnType,
    Eq,
    HashIndex,
    KeywordsAny,
    OrderedIndex,
    Query,
    Range,
    SpatialIndex,
    SqlEngine,
    TableSchema,
)

TABLE = "pois"

#: Valid sort criteria for non-personalized POI search.
SORT_FIELDS = ("hotness", "interest", "name")


@dataclass(frozen=True)
class POI:
    """A point of interest with its aggregated social metrics."""

    poi_id: int
    name: str
    lat: float
    lon: float
    keywords: Tuple
    category: str
    hotness: float = 0.0
    interest: float = 0.0
    auto_detected: bool = False

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


def _row_to_poi(row: Dict) -> POI:
    return POI(
        poi_id=row["poi_id"],
        name=row["name"],
        lat=row["lat"],
        lon=row["lon"],
        keywords=tuple(row["keywords"]),
        category=row["category"],
        hotness=row["hotness"],
        interest=row["interest"],
        auto_detected=row["auto_detected"],
    )


class POIRepository:
    """CRUD + search over the POI table, with the paper's indexes."""

    def __init__(self, engine: SqlEngine) -> None:
        self.engine = engine
        #: Monotonic write version: bumped by every insert and HotIn
        #: update.  The hot-POI answer cache stamps entries with it, so
        #: any POI write invalidates cached non-personalized answers.
        self.version = 0
        schema = TableSchema(
            name=TABLE,
            columns=[
                Column("poi_id", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("lat", ColumnType.FLOAT),
                Column("lon", ColumnType.FLOAT),
                Column("keywords", ColumnType.TEXT_ARRAY, default=[]),
                Column("category", ColumnType.TEXT, default="unknown"),
                Column("hotness", ColumnType.FLOAT, default=0.0),
                Column("interest", ColumnType.FLOAT, default=0.0),
                Column("auto_detected", ColumnType.BOOLEAN, default=False),
            ],
            primary_key="poi_id",
        )
        engine.create_table(schema)
        engine.create_index(TABLE, SpatialIndex("lat", "lon"))
        engine.create_index(TABLE, OrderedIndex("hotness"))
        engine.create_index(TABLE, OrderedIndex("interest"))
        engine.create_index(TABLE, HashIndex("category"))

    # -------------------------------------------------------------- CRUD

    def add(self, poi: POI) -> None:
        """Insert a POI (explicit user entry or Event Detection output)."""
        self.engine.insert(
            TABLE,
            {
                "poi_id": poi.poi_id,
                "name": poi.name,
                "lat": poi.lat,
                "lon": poi.lon,
                "keywords": list(poi.keywords),
                "category": poi.category,
                "hotness": poi.hotness,
                "interest": poi.interest,
                "auto_detected": poi.auto_detected,
            },
        )
        self.version += 1

    def get(self, poi_id: int) -> Optional[POI]:
        row = self.engine.table(TABLE).get_by_pk(poi_id)
        return _row_to_poi(row) if row else None

    def update_hotin(self, poi_id: int, hotness: float, interest: float) -> bool:
        """Write the HotIn job's aggregates; returns False if unknown."""
        table = self.engine.table(TABLE)
        rids = table.rids_by_pk(poi_id)
        if not rids:
            return False
        self.engine.update(
            TABLE, next(iter(rids)), {"hotness": hotness, "interest": interest}
        )
        self.version += 1
        return True

    def next_poi_id(self) -> int:
        """First free id for auto-detected POIs."""
        table = self.engine.table(TABLE)
        max_id = 0
        for _rid, row in table.scan():
            max_id = max(max_id, row["poi_id"])
        return max_id + 1

    def count(self) -> int:
        return self.engine.count(TABLE)

    def all_pois(self) -> List[POI]:
        return [_row_to_poi(row) for _rid, row in self.engine.table(TABLE).scan()]

    # ------------------------------------------------------------ search

    def search(
        self,
        bbox: Optional[BoundingBox] = None,
        keywords: Optional[Sequence[str]] = None,
        category: Optional[str] = None,
        sort_by: str = "hotness",
        limit: int = 10,
    ) -> List[POI]:
        """Non-personalized POI search — the paper's "select SQL query in
        PostgreSQL" path for queries without a friend list."""
        if sort_by not in SORT_FIELDS:
            raise QueryError(
                "sort_by must be one of %s, got %r" % (SORT_FIELDS, sort_by)
            )
        predicates = []
        if bbox is not None:
            predicates.append(BBoxContains("lat", "lon", bbox))
        if keywords:
            predicates.append(KeywordsAny("keywords", keywords))
        if category is not None:
            predicates.append(Eq("category", category))
        where = And(*predicates) if predicates else None
        rows = self.engine.select(
            Query(
                table=TABLE,
                where=where,
                order_by=(sort_by, sort_by != "name"),
                limit=limit,
            )
        )
        return [_row_to_poi(row) for row in rows]

    def pois_within(self, bbox: BoundingBox) -> List[POI]:
        """All POIs in a bounding box (used by the known-POI filter)."""
        rows = self.engine.select(
            Query(table=TABLE, where=BBoxContains("lat", "lon", bbox))
        )
        return [_row_to_poi(row) for row in rows]

    def nearest_within(
        self, point: GeoPoint, radius_m: float
    ) -> Optional[POI]:
        """Closest POI within ``radius_m`` of ``point``, if any."""
        if radius_m <= 0:
            raise ValidationError("radius_m must be positive")
        probe = BoundingBox(
            point.lat, point.lon, point.lat, point.lon
        ).expand_m(radius_m)
        best: Optional[POI] = None
        best_d = radius_m
        for poi in self.pois_within(probe):
            d = poi.location.distance_m(point)
            if d <= best_d:
                best_d = d
                best = poi
        return best
