"""Visits Repository (HBase-resident) — the heart of personalized search.

"Each visit is represented by a struct with the complete POI information
(name, latitude, longitude, etc) ... enriched with the interest and
hotness metrics.  Every time a MoDisSENSE user or a user's social friend
visits a POI, a visit struct indexed by user and time is added to the
repository." (Section 2.1)

Row-key design::

    salt(user) ␟ user_id ␟ ts_desc ␟ poi_id

- the 2-byte salt spreads users uniformly over pre-split regions so a
  multi-friend query keeps every region server busy;
- the user id groups one user's visits contiguously;
- the *descending* timestamp makes scans newest-first and lets a time
  window become a key range;
- the poi id disambiguates same-second visits.

The repository supports both schema strategies of the paper's Section
2.1 discussion: ``replicated`` (the struct carries full POI info; the
default, which the paper found faster) and ``normalized`` (the struct
holds only poi_id + grade, forcing a join with the POI repository at
query time).  The ablation bench compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ...errors import ValidationError
from ...hbase import (
    Cell,
    HBaseCluster,
    TableDescriptor,
    compose_key,
    decode_int_desc,
    encode_int,
    encode_int_desc,
    next_prefix,
)
from ...hbase.bytes_util import salt_for
from ...hbase.region import Region
from ..serialization import decode_json, encode_json

TABLE = "visits"
FAMILY = "v"
QUALIFIER = b"v"

SCHEMA_REPLICATED = "replicated"
SCHEMA_NORMALIZED = "normalized"

#: Canonical head of every stored payload (sort_keys puts grade first).
_GRADE_PREFIX = b'{"grade":'


@dataclass(frozen=True)
class VisitStruct:
    """One visit with its replicated POI attributes and metrics."""

    user_id: int
    poi_id: int
    timestamp: int
    grade: float
    poi_name: str = ""
    lat: float = 0.0
    lon: float = 0.0
    keywords: Tuple = ()
    hotness: float = 0.0
    interest: float = 0.0


class VisitsRepository:
    """Visit storage with salted, time-ordered keys."""

    def __init__(
        self,
        cluster: HBaseCluster,
        num_regions: int = 32,
        schema_mode: str = SCHEMA_REPLICATED,
    ) -> None:
        if schema_mode not in (SCHEMA_REPLICATED, SCHEMA_NORMALIZED):
            raise ValidationError("unknown schema mode %r" % schema_mode)
        self.cluster = cluster
        self.schema_mode = schema_mode
        self.table = cluster.create_table(
            TableDescriptor(name=TABLE, families=[FAMILY], num_regions=num_regions)
        )

    # ------------------------------------------------------------- keys

    @staticmethod
    def row_key(user_id: int, timestamp: int, poi_id: int) -> bytes:
        return compose_key(
            salt_for(user_id),
            encode_int(user_id),
            encode_int_desc(timestamp),
            encode_int(poi_id),
        )

    @staticmethod
    def user_prefix(user_id: int) -> bytes:
        return compose_key(salt_for(user_id), encode_int(user_id))

    @staticmethod
    def time_range_keys(
        user_id: int, since: Optional[int], until: Optional[int]
    ) -> Tuple[bytes, Optional[bytes]]:
        """``(start, stop)`` covering the user's visits in [since, until),
        newest first (timestamps are desc-encoded).

        ``stop`` is ``None`` when the range is open-ended at the top of
        the key space: :func:`next_prefix` returns ``b""`` for an
        all-``0xff`` prefix, and any other sentinel (a short run of
        ``0xff`` bytes, say) would sort *below* real row keys sharing
        that prefix and silently drop tail-of-keyspace users.
        """
        prefix = VisitsRepository.user_prefix(user_id)
        if until is not None and until <= 0:
            # Empty window: no timestamp is < 0.  An empty key range
            # (start == stop) makes the scan a no-op.
            return (prefix, prefix)
        if until is not None:
            start = compose_key(prefix, encode_int_desc(until - 1))
        else:
            start = compose_key(prefix, b"")
        if since is not None and since > 0:
            stop = next_prefix(compose_key(prefix, encode_int_desc(since)))
        else:
            stop = next_prefix(prefix)
        return (start, stop if stop else None)

    # ------------------------------------------------------------ writes

    def visit_cell(self, visit: VisitStruct) -> Cell:
        """The stored representation of one visit (key + JSON payload)."""
        if self.schema_mode == SCHEMA_REPLICATED:
            payload = {
                "poi_id": visit.poi_id,
                "grade": visit.grade,
                "name": visit.poi_name,
                "lat": visit.lat,
                "lon": visit.lon,
                "keywords": list(visit.keywords),
                "hotness": visit.hotness,
                "interest": visit.interest,
            }
        else:
            payload = {"poi_id": visit.poi_id, "grade": visit.grade}
        return Cell(
            row=self.row_key(visit.user_id, visit.timestamp, visit.poi_id),
            family=FAMILY,
            qualifier=QUALIFIER,
            timestamp=visit.timestamp,
            value=encode_json(payload),
        )

    def store(self, visit: VisitStruct) -> None:
        self.table.put(self.visit_cell(visit))

    def store_many(self, visits) -> int:
        count = 0
        for visit in visits:
            self.store(visit)
            count += 1
        return count

    def store_batch(self, visits: Sequence[VisitStruct]) -> Dict[Region, tuple]:
        """Group-commit a batch of visits (the streaming ingest path).

        Stored bytes are identical to :meth:`store` per visit; the
        difference is purely mechanical — cells are routed once, each
        region absorbs its share through one WAL sync + one memstore
        merge (:meth:`~repro.hbase.table.HTable.put_batch`).  Returns
        ``{region: (first_wal_seq, last_wal_seq)}`` for the ingest
        tier's HotIn fold watermarks.
        """
        return self.table.put_batch([self.visit_cell(v) for v in visits])

    # ----------------------------------------------------------- routing

    def route_friends(
        self,
        friend_ids: Sequence[int],
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> Dict[Region, List[int]]:
        """Partition friends by the region(s) owning their scan range.

        The client knows each friend's salted key prefix, so it can ship
        every region exactly the friends it serves — regions owning no
        queried friends are never contacted.  A friend whose time-window
        key range straddles a split boundary lands in every intersecting
        region (correct under post-split layouts; with uniform pre-split
        points a user's range always lives in one region).
        """
        table = self.table
        routed: Dict[Region, List[int]] = {}
        for friend_id in friend_ids:
            start, stop = self.time_range_keys(friend_id, since, until)
            if start == stop:
                continue  # empty window: no region needs this friend
            for region in table.regions_for_range(start, stop):
                bucket = routed.get(region)
                if bucket is None:
                    routed[region] = [friend_id]
                else:
                    bucket.append(friend_id)
        return routed

    # ------------------------------------------------------------- reads

    @staticmethod
    def decode_key(row: bytes) -> Tuple[int, int, int]:
        """``(user_id, timestamp, poi_id)`` from the row key alone.

        Parsing is positional — salt(2) ␟ user(8) ␟ ts(8) ␟ poi(8) — not
        separator-split: fixed-width integer encodings may legitimately
        contain the separator byte.  This is the cheap half of visit
        decoding: no JSON payload is touched.
        """
        return (
            int.from_bytes(row[3:11], "big"),
            decode_int_desc(row[12:20]),
            int.from_bytes(row[21:29], "big"),
        )

    @staticmethod
    def decode_payload(cell: Cell) -> dict:
        """The visit's JSON payload as a raw dict (the expensive half;
        call only when a filter or aggregate actually needs it)."""
        return decode_json(cell.value)

    @staticmethod
    def decode_grade(value: bytes) -> float:
        """Just the visit's grade, without a full JSON parse.

        :func:`encode_json` sorts keys, and ``grade`` sorts first in both
        schema modes, so every stored payload begins with ``{"grade":``.
        The aggregation hot loop only needs the grade once a POI's
        attributes are known, and a positional slice is ~5x cheaper than
        ``json.loads`` on the whole payload.  Falls back to the full
        decode for any value that doesn't match the canonical layout.
        """
        if value.startswith(_GRADE_PREFIX):
            end = value.find(b",", 9)
            if end < 0:
                end = value.find(b"}", 9)
            if end > 9:
                try:
                    return float(value[9:end])
                except ValueError:
                    pass
        return float(decode_json(value)["grade"])

    @staticmethod
    def decode_cell(cell: Cell) -> VisitStruct:
        """Rebuild a full :class:`VisitStruct` from a stored cell
        (key decode + payload decode)."""
        user_id, timestamp, poi_id = VisitsRepository.decode_key(cell.row)
        payload = decode_json(cell.value)
        return VisitStruct(
            user_id=user_id,
            poi_id=payload.get("poi_id", poi_id),
            timestamp=timestamp,
            grade=payload["grade"],
            poi_name=payload.get("name", ""),
            lat=payload.get("lat", 0.0),
            lon=payload.get("lon", 0.0),
            keywords=tuple(payload.get("keywords", ())),
            hotness=payload.get("hotness", 0.0),
            interest=payload.get("interest", 0.0),
        )

    def visits_of_user(
        self,
        user_id: int,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> List[VisitStruct]:
        """One user's visits in the window, newest first."""
        start, stop = self.time_range_keys(user_id, since, until)
        return [
            self.decode_cell(cell)
            for cell in self.table.scan(FAMILY, start, stop)
        ]

    def all_visits(
        self,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> Iterator[VisitStruct]:
        """Every visit in the window — the HotIn job's full-table scan.

        The time bound is a residual filter here (keys lead with the
        user salt), which is exactly how the paper's MapReduce scanner
        behaves.
        """
        for cell in self.table.scan(FAMILY):
            visit = self.decode_cell(cell)
            if since is not None and visit.timestamp < since:
                continue
            if until is not None and visit.timestamp >= until:
                continue
            yield visit

    def count(self) -> int:
        return self.table.total_rows(FAMILY)
