"""Text Repository (HBase-resident).

"The Text repository holds all the collected comments and reviews about
POIs.  Texts are indexed by user, POI and time.  For any given POI, we
are able to retrieve the comments that a specified user made at any
given time interval." (Section 2.1)

Row key: ``user ␟ poi ␟ timestamp`` — so one prefix scan answers "the
comments user U made about POI P in [t0, t1)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ...hbase import (
    Cell,
    HBaseCluster,
    TableDescriptor,
    compose_key,
    encode_int,
)
from ..serialization import decode_json, encode_json

TABLE = "texts"
FAMILY = "t"
QUALIFIER = b"c"


@dataclass(frozen=True)
class CommentRecord:
    """A comment plus its sentiment score, as persisted."""

    user_id: int
    poi_id: int
    timestamp: int
    text: str
    sentiment: float  # P(positive) from the Text Processing Module


class TextRepository:
    """Comment storage keyed by (user, poi, time)."""

    def __init__(self, cluster: HBaseCluster, num_regions: int = 8) -> None:
        self.cluster = cluster
        self.table = cluster.create_table(
            TableDescriptor(name=TABLE, families=[FAMILY], num_regions=num_regions)
        )

    @staticmethod
    def _row_key(user_id: int, poi_id: int, timestamp: int) -> bytes:
        return compose_key(
            encode_int(user_id), encode_int(poi_id), encode_int(timestamp)
        )

    def store(self, record: CommentRecord) -> None:
        self.table.put(
            Cell(
                row=self._row_key(record.user_id, record.poi_id, record.timestamp),
                family=FAMILY,
                qualifier=QUALIFIER,
                timestamp=record.timestamp,
                value=encode_json(
                    {"text": record.text, "sentiment": record.sentiment}
                ),
            )
        )

    def comments(
        self,
        user_id: int,
        poi_id: int,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> List[CommentRecord]:
        """Comments by ``user_id`` about ``poi_id`` in ``[since, until)``."""
        start = compose_key(
            encode_int(user_id),
            encode_int(poi_id),
            encode_int(since if since is not None else 0),
        )
        stop = compose_key(
            encode_int(user_id),
            encode_int(poi_id),
            encode_int(until if until is not None else (1 << 63)),
        )
        out: List[CommentRecord] = []
        for cell in self.table.scan(FAMILY, start, stop):
            out.append(self._decode(cell))
        return out

    @staticmethod
    def _decode(cell) -> CommentRecord:
        """Positional parse — user(8) ␟ poi(8) ␟ ts(8): fixed-width ints
        may contain the separator byte, so splitting is unsafe."""
        row = cell.row
        payload = decode_json(cell.value)
        return CommentRecord(
            user_id=int.from_bytes(row[0:8], "big"),
            poi_id=int.from_bytes(row[9:17], "big"),
            timestamp=int.from_bytes(row[18:26], "big"),
            text=payload["text"],
            sentiment=payload["sentiment"],
        )

    def user_comments(
        self, user_id: int, since: Optional[int] = None, until: Optional[int] = None
    ) -> List[CommentRecord]:
        """All of one user's comments, any POI, optionally time-bounded.

        The time bound is a residual filter: time is the key's last
        component, so only the user prefix narrows the scan.
        """
        from ...hbase import next_prefix

        prefix = encode_int(user_id)
        start = compose_key(prefix)
        stop = next_prefix(start)
        out: List[CommentRecord] = []
        for cell in self.table.scan(FAMILY, start, stop if stop else None):
            record = self._decode(cell)
            if since is not None and record.timestamp < since:
                continue
            if until is not None and record.timestamp >= until:
                continue
            out.append(record)
        return out
