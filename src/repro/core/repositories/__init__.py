"""Datastore repositories (paper Section 2.1).

Hybrid placement follows the paper exactly: PostgreSQL-style storage for
the read-heavy, index-friendly POI and Blogs repositories; HBase for the
scan-heavy, write-heavy Social Info, Text, Visits and GPS Traces
repositories.
"""

from .poi import POIRepository, POI
from .social_info import SocialInfoRepository
from .text_repo import TextRepository, CommentRecord
from .visits import VisitsRepository, VisitStruct
from .gps_traces import GPSTracesRepository
from .blogs import BlogsRepository, BlogEntry, BlogVisit

__all__ = [
    "POIRepository",
    "POI",
    "SocialInfoRepository",
    "TextRepository",
    "CommentRecord",
    "VisitsRepository",
    "VisitStruct",
    "GPSTracesRepository",
    "BlogsRepository",
    "BlogEntry",
    "BlogVisit",
]
