"""Continuous wall-clock sampling profiler.

A daemon thread wakes every ``interval_s`` and snapshots
``sys._current_frames()`` — every live thread's current Python frame —
then walks each stack into a folded ``component;outer;...;inner`` key
and bumps its sample count.  Components come from the
:mod:`repro.threadreg` registry (executor pools register their workers
via a thread initializer; the scheduler, REST handler and ingest
appliers register around their work), so the ``admin_profile`` endpoint
can answer *where does wall-clock go, per platform component* across the
mixed read/ingest workload.

Samplers observe; they never touch platform state, so query answers are
byte-identical with the profiler on or off.  Cost per sample is one
frame-map snapshot plus a bounded stack walk per thread — at the default
50 Hz this stays well inside the CI-gated 10% overhead budget.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

from ... import threadreg
from ...errors import ValidationError

UNKNOWN = "unknown"


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # "pkg/module.py" -> "module"; keeps folded lines compact.
    slash = filename.rfind("/")
    if slash < 0:
        slash = filename.rfind("\\")
    stem = filename[slash + 1:]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return "%s.%s" % (stem, code.co_name)


class ContinuousProfiler:
    """Always-on sampling profiler with folded-stack output."""

    def __init__(
        self,
        interval_s: float = 0.02,
        max_depth: int = 48,
        metrics: Optional[Any] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValidationError("interval_s must be positive")
        if max_depth < 1:
            raise ValidationError("max_depth must be >= 1")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.metrics = metrics
        self._lock = threading.Lock()
        #: code object -> rendered label.  Code objects are long-lived
        #: (one per function definition), so this converts the per-frame
        #: string formatting into a dict hit on every sample after the
        #: first — the difference between ~12% and <10% overhead at
        #: full bench scale.
        self._labels: Dict[Any, str] = {}
        #: (component, stack tuple) -> samples.
        self._counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._by_component: Dict[str, int] = {}
        self.samples = 0
        self._threads_seen: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ContinuousProfiler":
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout_s: float = 2.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout_s)
        self._thread = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        threadreg.register_current_thread("profiler")
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self.sample_once(skip_ident=own_ident)

    # ------------------------------------------------------------ sampling

    def sample_once(self, skip_ident: Optional[int] = None) -> int:
        """Take one sample of every live thread; returns threads seen.

        Public so tests can drive deterministic sample counts without
        the background thread.
        """
        components = threadreg.snapshot()
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter teardown
            return 0
        sampled = 0
        with self._lock:
            labels = self._labels
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                component = components.get(ident, UNKNOWN)
                if component == "profiler":
                    continue
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    code = frame.f_code
                    label = labels.get(code)
                    if label is None:
                        label = labels[code] = _frame_label(frame)
                    stack.append(label)
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                key = (component, tuple(stack))
                self._counts[key] = self._counts.get(key, 0) + 1
                self._by_component[component] = (
                    self._by_component.get(component, 0) + 1
                )
                self.samples += 1
                self._threads_seen.add(ident)
                sampled += 1
        return sampled

    # ------------------------------------------------------------- reading

    def folded(
        self,
        limit: Optional[int] = None,
        component: Optional[str] = None,
    ) -> List[str]:
        """Folded-stack lines (``component;outer;...;inner count``),
        heaviest first — paste straight into any flamegraph renderer."""
        with self._lock:
            items = [
                (count, comp, stack)
                for (comp, stack), count in self._counts.items()
                if component is None or comp == component
            ]
        items.sort(key=lambda item: (-item[0], item[1], item[2]))
        if limit is not None and limit >= 0:
            items = items[:limit]
        return [
            "%s;%s %d" % (comp, ";".join(stack), count)
            for count, comp, stack in items
        ]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.samples
            by_component = dict(self._by_component)
            threads = len(self._threads_seen)
            stacks = len(self._counts)
        unknown = by_component.get(UNKNOWN, 0)
        attributed = (
            (total - unknown) / total if total else 1.0
        )
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "samples": total,
            "threads_seen": threads,
            "distinct_stacks": stacks,
            "by_component": by_component,
            "attributed_fraction": attributed,
        }

    def reset(self) -> None:
        # The label cache survives reset on purpose: it maps code
        # objects, not workload state, and staying warm is the point.
        with self._lock:
            self._counts.clear()
            self._by_component.clear()
            self._threads_seen.clear()
            self.samples = 0
