"""The platform's telemetry pipeline (ROADMAP: observability substrate).

Four cooperating parts behind one facade, :class:`TelemetryHub`:

- :class:`~repro.core.telemetry.timeseries.TimeSeriesStore` — every
  ``PlatformMetrics`` series scraped on a scheduler tick into
  ring-buffered history with 1s→10s→1m rollups (``admin_timeseries``);
- :class:`~repro.core.telemetry.slo.SLOEngine` — declarative SLOs from
  ``config.py`` evaluated as fast/slow multi-window burn rates against
  error budgets (``admin_health`` + structured alert events);
- :class:`~repro.core.telemetry.profiler.ContinuousProfiler` — a
  ``sys._current_frames()`` wall-clock sampler attributing samples to
  registered components, folded-stack output (``admin_profile``);
- :class:`~repro.core.telemetry.events.WideEventLog` — one tail-sampled
  structured event per query / ingest batch / breaker flip / node event
  / SLO transition, carrying trace ids as exemplars.

Everything is **on by default** and purely observational: query answers
are byte-identical telemetry on or off, and the ``obs-smoke`` CI job
gates the measured overhead at ≤10% on the 6000-friend query.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .events import WideEventLog
from .profiler import ContinuousProfiler
from .slo import SLOEngine
from .timeseries import TimeSeriesStore

__all__ = [
    "TelemetryHub",
    "TimeSeriesStore",
    "SLOEngine",
    "ContinuousProfiler",
    "WideEventLog",
]


class TelemetryHub:
    """Owns the store, SLO engine, profiler and event log for one
    platform; :meth:`tick` is the scheduler's scrape job."""

    def __init__(
        self,
        metrics: Any,
        config: Any,
        tracer: Optional[Any] = None,
    ) -> None:
        self.metrics = metrics
        self.config = config
        self.tracer = tracer
        self.store = TimeSeriesStore(
            base_samples=config.base_samples,
            resolutions=config.rollup_resolutions,
            buckets_per_resolution=config.rollup_buckets,
        )
        self.events = WideEventLog(
            capacity=config.event_capacity,
            interesting_capacity=config.interesting_capacity,
            sample_every=config.event_sample_every,
            metrics=metrics,
        )
        self.slo = SLOEngine(
            config.slos, self.store, metrics=metrics, events=self.events
        )
        self.profiler: Optional[ContinuousProfiler] = None
        if config.profiler_enabled:
            self.profiler = ContinuousProfiler(
                interval_s=config.profiler_interval_s,
                max_depth=config.profiler_max_depth,
                metrics=metrics,
            )
        #: ``fn(now)`` hooks run before each scrape — the platform uses
        #: one to refresh derived gauges (ingest freshness, queue depths)
        #: so they are current in the same tick that samples them.
        self._collectors: List[Callable[[float], None]] = []

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "TelemetryHub":
        if self.profiler is not None:
            self.profiler.start()
        return self

    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()

    def add_collector(self, fn: Callable[[float], None]) -> None:
        self._collectors.append(fn)

    # ------------------------------------------------------------- scraping

    def tick(self, now: float) -> Dict[str, Any]:
        """One scheduler tick: run collectors, scrape the registry into
        the store, re-evaluate every SLO.  Returns a firing summary."""
        for fn in self._collectors:
            try:
                fn(now)
            except Exception:  # noqa: BLE001 - a bad collector must not
                pass  # starve the scrape itself
        series = self.store.scrape(self.metrics.scrape_values(), now)
        health = self.slo.evaluate(now)
        return {"series": series, "state": health["state"], "at": now}

    # -------------------------------------------------------------- health

    def health(self) -> Dict[str, Any]:
        """Current health verdict.

        Re-evaluates at the last scrape's timestamp (idempotent given an
        unchanged store), so the REST path always reflects the newest
        scraped data without advancing any window.
        """
        at = self.store.last_scrape_at
        if at is None:
            return {
                "state": "healthy",
                "evaluated_at": None,
                "slos": [],
                "scrapes": 0,
            }
        out = self.slo.evaluate(at)
        out["scrapes"] = self.store.scrapes
        return out

    def describe(self) -> Dict[str, Any]:
        return {
            "enabled": True,
            "store": self.store.describe(),
            "slo": self.slo.describe(),
            "events": self.events.stats(),
            "profiler": (
                self.profiler.stats() if self.profiler is not None else None
            ),
        }
