"""Wide-event log: one structured JSON event per unit of work.

The canonical-log-line pattern: instead of twenty scattered log lines
per personalized query, *one* event carries the full cost account —
cells decoded, cache hits/misses, retries/hedges, degraded coverage,
queue wait, batch size, and the trace id as an exemplar linking the
event to its span tree.  Ingest batches, circuit-breaker flips, node
fail/recover and SLO transitions land in the same stream.

**Tail sampling** keeps the log useful under load without unbounded
cost: *interesting* events (slow, degraded, errored, or emitted with
``keep=True``) are always retained — in the recent ring *and* a separate
interesting ring so a burst of boring traffic cannot evict the one
failure that matters — while routine events are down-sampled 1-in-N per
event type (the first of each type is always kept).  Sampling decisions
are counter-based and deterministic: no RNG, reproducible in tests.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from ...errors import ValidationError


class WideEventLog:
    """Bounded, tail-sampled structured event stream."""

    def __init__(
        self,
        capacity: int = 512,
        interesting_capacity: int = 256,
        sample_every: int = 4,
        metrics: Optional[Any] = None,
    ) -> None:
        if capacity < 1 or interesting_capacity < 1:
            raise ValidationError("event capacities must be >= 1")
        if sample_every < 1:
            raise ValidationError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.metrics = metrics
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=capacity)
        self._interesting: deque = deque(maxlen=interesting_capacity)
        self._seq = 0
        self._by_type: Dict[str, int] = {}
        self.emitted = 0
        self.kept = 0
        self.sampled_out = 0

    def emit(self, event: Dict[str, Any], keep: bool = False) -> bool:
        """Record one event; returns whether it was kept.

        ``keep=True`` (or a truthy ``slow``/``degraded``/``error`` field)
        marks the event interesting: it bypasses sampling and also lands
        in the always-kept interesting ring.
        """
        event_type = str(event.get("type", "event"))
        interesting = keep or bool(
            event.get("slow") or event.get("degraded") or event.get("error")
        )
        with self._lock:
            self._seq += 1
            self.emitted += 1
            seen = self._by_type.get(event_type, 0)
            self._by_type[event_type] = seen + 1
            stamped = dict(event)
            stamped["seq"] = self._seq
            stamped["type"] = event_type
            if interesting:
                stamped["interesting"] = True
                self._interesting.append(stamped)
                self._recent.append(stamped)
                self.kept += 1
                kept_it = True
            elif self.sample_every == 1 or seen % self.sample_every == 0:
                self._recent.append(stamped)
                self.kept += 1
                kept_it = True
            else:
                self.sampled_out += 1
                kept_it = False
        if self.metrics is not None:
            self.metrics.increment("events.emitted", labels={"type": event_type})
            if not kept_it:
                self.metrics.increment(
                    "events.sampled_out", labels={"type": event_type}
                )
        return kept_it

    # ------------------------------------------------------------- reading

    def query(
        self,
        event_type: Optional[str] = None,
        interesting_only: bool = False,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Kept events, newest first."""
        with self._lock:
            source = self._interesting if interesting_only else self._recent
            events = list(source)
        events.reverse()
        if event_type is not None:
            events = [e for e in events if e.get("type") == event_type]
        if limit is not None and limit >= 0:
            events = events[:limit]
        return events

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "emitted": self.emitted,
                "kept": self.kept,
                "sampled_out": self.sampled_out,
                "by_type": dict(self._by_type),
                "recent": len(self._recent),
                "interesting": len(self._interesting),
                "sample_every": self.sample_every,
            }

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._interesting.clear()
