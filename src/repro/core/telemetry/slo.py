"""Declarative SLOs evaluated as multi-window burn rates.

Each :class:`~repro.config.SLOSpec` defines an objective over series in
the :class:`~repro.core.telemetry.timeseries.TimeSeriesStore` and is
evaluated Google-SRE style: the *burn rate* is the fraction of the error
budget consumed per unit of budgeted allowance —
``bad_fraction / (1 - target)`` — measured over a **fast** window (pages
on sudden breakage) and a **slow** window (catches sustained slow
bleed).  The SLO is

- ``critical`` when the fast-window burn reaches ``critical_burn``,
- ``warning`` when the slow-window burn reaches ``warning_burn``,
- ``healthy`` otherwise (including when a window saw no traffic).

Two spec kinds:

- ``ratio``: bad/total counter pair (e.g. ``regions.missing`` over
  ``regions.used``); bad fraction is the ratio of window deltas.
- ``threshold``: a gauge/derived series compared against a bound
  (e.g. ``query.personalized:p99 <= 1000``); bad fraction is the share
  of window scrape samples violating it.

State transitions emit structured alert events into the wide-event log
and ``slo.transitions`` counters, so an operator can replay exactly when
each budget started and stopped burning.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from .timeseries import TimeSeriesStore

STATE_HEALTHY = "healthy"
STATE_WARNING = "warning"
STATE_CRITICAL = "critical"

_STATE_RANK = {STATE_HEALTHY: 0, STATE_WARNING: 1, STATE_CRITICAL: 2}


class SLOEngine:
    """Evaluates a set of SLO specs against the time-series store."""

    def __init__(
        self,
        specs: Sequence[Any],
        store: TimeSeriesStore,
        metrics: Optional[Any] = None,
        events: Optional[Any] = None,
    ) -> None:
        self.specs = list(specs)
        self.store = store
        self.metrics = metrics
        self.events = events
        self._lock = threading.Lock()
        self._states: Dict[str, str] = {
            spec.name: STATE_HEALTHY for spec in self.specs
        }
        #: threshold-kind cumulative tallies: name -> [bad, total].
        self._cum: Dict[str, List[float]] = {
            spec.name: [0.0, 0.0] for spec in self.specs
        }
        #: newest sample timestamp already folded into the cumulative
        #: tallies, per threshold SLO (avoids double counting).
        self._counted_until: Dict[str, float] = {}
        self.evaluations = 0
        self.last_result: Optional[Dict[str, Any]] = None

    # ---------------------------------------------------------- evaluation

    def evaluate(self, now: float) -> Dict[str, Any]:
        """One health pass at simulated time ``now``; idempotent for a
        given store state (re-evaluating without new scrapes changes
        nothing, so the REST path can call it freely)."""
        slos = []
        transitions = []
        overall = STATE_HEALTHY
        with self._lock:
            for spec in self.specs:
                result = self._evaluate_one(spec, now)
                old = self._states[spec.name]
                new = result["state"]
                if new != old:
                    transitions.append((spec, old, new, result))
                    self._states[spec.name] = new
                if _STATE_RANK[new] > _STATE_RANK[overall]:
                    overall = new
                slos.append(result)
            self.evaluations += 1
        for spec, old, new, result in transitions:
            self._announce(spec, old, new, result, now)
        out = {
            "state": overall,
            "evaluated_at": now,
            "slos": slos,
        }
        self.last_result = out
        return out

    def _evaluate_one(self, spec: Any, now: float) -> Dict[str, Any]:
        budget = 1.0 - spec.target
        if spec.kind == "ratio":
            fast_bad, fast_total = self._ratio_window(spec, now, spec.fast_window_s)
            slow_bad, slow_total = self._ratio_window(spec, now, spec.slow_window_s)
            cum_bad = self.store.value_at(spec.bad_series, now)
            cum_total = self.store.value_at(spec.total_series, now)
        else:  # threshold
            fast_bad, fast_total = self._threshold_window(
                spec, now - spec.fast_window_s, now
            )
            slow_bad, slow_total = self._threshold_window(
                spec, now - spec.slow_window_s, now
            )
            self._accumulate_threshold(spec, now)
            cum_bad, cum_total = self._cum[spec.name]

        fast_frac = (fast_bad / fast_total) if fast_total else 0.0
        slow_frac = (slow_bad / slow_total) if slow_total else 0.0
        fast_burn = fast_frac / budget if budget > 0 else 0.0
        slow_burn = slow_frac / budget if budget > 0 else 0.0
        if fast_burn >= spec.critical_burn:
            state = STATE_CRITICAL
        elif slow_burn >= spec.warning_burn:
            state = STATE_WARNING
        else:
            state = STATE_HEALTHY
        cum_frac = (cum_bad / cum_total) if cum_total else 0.0
        consumed = cum_frac / budget if budget > 0 else 0.0
        budget_remaining = max(0.0, 1.0 - consumed)
        no_data = fast_total == 0 and slow_total == 0
        if self.metrics is not None:
            self.metrics.set_gauge(
                "slo.burn_rate", fast_burn,
                labels={"slo": spec.name, "window": "fast"},
            )
            self.metrics.set_gauge(
                "slo.burn_rate", slow_burn,
                labels={"slo": spec.name, "window": "slow"},
            )
            self.metrics.set_gauge(
                "slo.budget_remaining", budget_remaining,
                labels={"slo": spec.name},
            )
        return {
            "name": spec.name,
            "kind": spec.kind,
            "description": spec.description,
            "state": state,
            "target": spec.target,
            "fast_burn": fast_burn,
            "slow_burn": slow_burn,
            "fast_window_s": spec.fast_window_s,
            "slow_window_s": spec.slow_window_s,
            "critical_burn": spec.critical_burn,
            "warning_burn": spec.warning_burn,
            "budget_remaining": budget_remaining,
            "bad_fast": fast_bad,
            "total_fast": fast_total,
            "no_data": no_data,
        }

    def _ratio_window(self, spec, now: float, window_s: float):
        since = now - window_s
        bad = self.store.delta(spec.bad_series, since, now)
        total = self.store.delta(spec.total_series, since, now)
        # A counter pair can momentarily disagree between scrapes; clamp
        # so a racing scrape never reports a >100% bad fraction.
        return min(bad, total), total

    def _threshold_window(self, spec, since: float, until: float):
        samples = self.store.window_samples(spec.series, since, until)
        if not samples:
            return 0.0, 0.0
        bad = 0
        for _t, vmin, vmax in samples:
            if spec.direction == "le":
                violated = vmax > spec.threshold
            else:
                violated = vmin < spec.threshold
            if violated:
                bad += 1
        return float(bad), float(len(samples))

    def _accumulate_threshold(self, spec, now: float) -> None:
        """Fold samples newer than the last evaluation into the
        cumulative budget tallies (each sample counted exactly once)."""
        floor = self._counted_until.get(spec.name, float("-inf"))
        samples = self.store.window_samples(spec.series, floor, now)
        if not samples:
            return
        bad, total = self._cum[spec.name]
        for t, vmin, vmax in samples:
            if spec.direction == "le":
                violated = vmax > spec.threshold
            else:
                violated = vmin < spec.threshold
            total += 1.0
            if violated:
                bad += 1.0
        self._cum[spec.name] = [bad, total]
        self._counted_until[spec.name] = max(t for t, _mn, _mx in samples)

    # -------------------------------------------------------------- alerts

    def _announce(self, spec, old: str, new: str, result, now: float) -> None:
        if self.metrics is not None:
            self.metrics.increment(
                "slo.transitions", labels={"slo": spec.name, "to": new}
            )
        if self.events is not None:
            self.events.emit(
                {
                    "type": "slo.transition",
                    "slo": spec.name,
                    "from": old,
                    "to": new,
                    "fast_burn": result["fast_burn"],
                    "slow_burn": result["slow_burn"],
                    "budget_remaining": result["budget_remaining"],
                    "at": now,
                },
                keep=True,
            )

    # -------------------------------------------------------------- status

    def states(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._states)

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "slos": len(self.specs),
                "states": dict(self._states),
                "evaluations": self.evaluations,
            }
