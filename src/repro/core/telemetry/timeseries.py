"""Ring-buffered time series with multi-resolution rollups.

Every scheduler scrape turns the live :class:`PlatformMetrics` registry
into one sample per series (counters and gauges directly; histograms as
derived ``name:count``/``name:sum``/``name:p50``/``name:p95``/
``name:p99``/``name:max`` series).  Each series keeps:

- a **base ring** of raw ``(t, value)`` samples, and
- one **rollup ring per resolution** (1 s → 10 s → 60 s by default)
  holding ``(bucket_start, count, sum, min, max, last)`` aggregates.

Memory is bounded by construction: rings are ``collections.deque`` with
``maxlen``, so a scrape is O(series) appends and the store never grows
past ``series × (base + resolutions × buckets)`` tuples.  Timestamps are
the scheduler's *simulated* clock, which makes SLO window arithmetic
deterministic in tests (drive the clock, assert the burn).
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import ValidationError

#: One rollup bucket: (bucket_start, count, sum, min, max, last).
_Bucket = Tuple[float, int, float, float, float, float]


class _Series:
    """One metric's rings.  Not thread-safe on its own — the store's
    lock serializes every mutation and read."""

    __slots__ = ("kind", "base", "rollups", "open_buckets", "first_t")

    def __init__(
        self, kind: str, base_samples: int,
        resolutions: Sequence[float], buckets: int,
    ) -> None:
        self.kind = kind  # "counter" | "gauge"
        self.base: deque = deque(maxlen=base_samples)
        self.rollups: Dict[float, deque] = {
            res: deque(maxlen=buckets) for res in resolutions
        }
        #: res -> [bucket_start, count, sum, min, max, last] in progress.
        self.open_buckets: Dict[float, list] = {}
        #: Timestamp of the first sample ever recorded — survives base
        #: eviction so value_at can honor "0 before the series existed".
        self.first_t: Optional[float] = None

    def add(self, t: float, value: float) -> None:
        if self.first_t is None:
            self.first_t = t
        self.base.append((t, value))
        for res, ring in self.rollups.items():
            start = (t // res) * res
            open_b = self.open_buckets.get(res)
            if open_b is not None and open_b[0] == start:
                open_b[1] += 1
                open_b[2] += value
                if value < open_b[3]:
                    open_b[3] = value
                if value > open_b[4]:
                    open_b[4] = value
                open_b[5] = value
            else:
                if open_b is not None:
                    ring.append(tuple(open_b))
                self.open_buckets[res] = [start, 1, value, value, value, value]

    def buckets(self, res: float) -> List[_Bucket]:
        """Closed buckets plus the in-progress one, oldest first."""
        out = list(self.rollups[res])
        open_b = self.open_buckets.get(res)
        if open_b is not None:
            out.append(tuple(open_b))
        return out


class TimeSeriesStore:
    """Scrape target + query surface for the platform's metric history."""

    def __init__(
        self,
        base_samples: int = 720,
        resolutions: Sequence[float] = (1.0, 10.0, 60.0),
        buckets_per_resolution: int = 360,
    ) -> None:
        if base_samples < 2:
            raise ValidationError("base_samples must be >= 2")
        if not resolutions:
            raise ValidationError("at least one rollup resolution required")
        if any(r <= 0 for r in resolutions):
            raise ValidationError("rollup resolutions must be positive")
        if buckets_per_resolution < 1:
            raise ValidationError("buckets_per_resolution must be >= 1")
        self._base_samples = base_samples
        self._resolutions = tuple(sorted(float(r) for r in resolutions))
        self._buckets = buckets_per_resolution
        self._lock = threading.Lock()
        self._series: Dict[str, _Series] = {}
        self.scrapes = 0
        self.last_scrape_at: Optional[float] = None

    # ------------------------------------------------------------ writing

    def record(self, name: str, kind: str, value: float, now: float) -> None:
        """Append one sample (scrapes call this for every live series)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(
                    kind, self._base_samples, self._resolutions, self._buckets
                )
            series.add(now, value)

    def scrape(self, values: Mapping[str, Tuple[str, float]], now: float) -> int:
        """One scheduler tick: fold a ``name -> (kind, value)`` snapshot
        (see :meth:`PlatformMetrics.scrape_values`) into the rings."""
        for name, (kind, value) in values.items():
            self.record(name, kind, value, now)
        with self._lock:
            self.scrapes += 1
            self.last_scrape_at = now
        return len(values)

    # ------------------------------------------------------------ reading

    def names(self, prefix: Optional[str] = None) -> List[str]:
        with self._lock:
            names = sorted(self._series)
        if prefix:
            names = [n for n in names if n.startswith(prefix)]
        return names

    def kind_of(self, name: str) -> Optional[str]:
        with self._lock:
            series = self._series.get(name)
            return series.kind if series is not None else None

    def query(
        self,
        name: str,
        resolution: Optional[float] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """Points for one series.

        ``resolution`` None/0 selects the raw base ring (``[t, value]``
        pairs); otherwise the nearest configured rollup (``[bucket_start,
        count, sum, min, max, last]`` rows).  ``since``/``until`` bound
        by timestamp, ``limit`` keeps the newest N points.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return {"name": name, "kind": None, "resolution": resolution,
                        "points": []}
            if not resolution:
                points: List[tuple] = list(series.base)
                chosen: Optional[float] = None
            else:
                chosen = min(
                    self._resolutions, key=lambda r: abs(r - resolution)
                )
                points = series.buckets(chosen)
            kind = series.kind
        if since is not None:
            points = [p for p in points if p[0] >= since]
        if until is not None:
            points = [p for p in points if p[0] <= until]
        if limit is not None and limit >= 0:
            points = points[-limit:]
        return {
            "name": name,
            "kind": kind,
            "resolution": chosen,
            "points": [list(p) for p in points],
        }

    def latest(self, name: str) -> Optional[float]:
        with self._lock:
            series = self._series.get(name)
            if series is None or not series.base:
                return None
            return series.base[-1][1]

    def value_at(self, name: str, ts: float, default: float = 0.0) -> float:
        """The series' value at-or-before ``ts``.

        Counters are assumed 0 before their first sample, so a window
        whose start predates the series still yields an exact delta.
        Falls back to rollup ``last`` values when the base ring has
        already evicted ``ts``.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return default
            if series.first_t is None or ts < series.first_t:
                return default
            base = series.base
            if base and base[0][0] <= ts:
                times = [p[0] for p in base]
                idx = bisect.bisect_right(times, ts) - 1
                if idx >= 0:
                    return base[idx][1]
            # ts predates the base ring: walk rollups coarse-to-fine for
            # the last closed bucket at or before ts.
            best_t, best_v = None, default
            for res in self._resolutions:
                for bucket in series.buckets(res):
                    if bucket[0] <= ts and (best_t is None or bucket[0] > best_t):
                        best_t, best_v = bucket[0], bucket[5]
            return best_v

    def delta(self, name: str, since: float, until: float) -> float:
        """Counter increase over ``(since, until]`` (0 for unknowns)."""
        return max(
            0.0, self.value_at(name, until) - self.value_at(name, since)
        )

    def window_samples(
        self, name: str, since: float, until: float
    ) -> List[Tuple[float, float, float]]:
        """``(t, min, max)`` rows covering ``(since, until]``.

        Base samples contribute themselves; when the base ring no longer
        reaches back to ``since`` the finest rollup's buckets stand in
        (their min/max bound every raw sample they absorbed, so a
        threshold check over this window never misses a violation).
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            base = [
                (t, v, v) for t, v in series.base if since < t <= until
            ]
            base_floor = series.base[0][0] if series.base else None
            if base_floor is not None and base_floor <= since:
                return base
            finest = self._resolutions[0]
            rolled = [
                (b[0], b[3], b[4])
                for b in series.buckets(finest)
                if since < b[0] <= until
                and (base_floor is None or b[0] < base_floor)
            ]
        return rolled + base

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "series": len(self._series),
                "scrapes": self.scrapes,
                "last_scrape_at": self.last_scrape_at,
                "base_samples": self._base_samples,
                "resolutions": list(self._resolutions),
                "buckets_per_resolution": self._buckets,
            }
