"""Deterministic fault injection for the query fan-out path.

A production HBase deployment loses region servers routinely; the
paper's Figure 2/3 numbers implicitly assume every region answers every
query.  This module supplies the *failure side* of the resilience story:
a seedable :class:`FaultInjector` that can make region invocations
raise, straggle (simulated added latency) or return corrupt partials,
plus node-level fail/recover schedules that drive the cluster
simulation's :meth:`fail_node`/:meth:`recover_node` from inside the
query workload.

Determinism is the design center.  Every injection decision is derived
from ``hash((seed, kind, fanout_epoch, region_id, attempt))`` — never
from shared-RNG call order — so the same seed produces the same fault
pattern no matter how the thread pool interleaves region tasks, and a
chaos test that failed once replays exactly.

The recovery side (retries, backoff, hedged re-execution, circuit
breaker, graceful degradation) lives in
:meth:`repro.hbase.client.HBaseCluster._exec_region_requests`; the
injector only decides *what goes wrong*.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..config import FaultsConfig
from ..errors import ConfigError
from ..hbase.coprocessor import CorruptPartial

__all__ = [
    "FAULT_ERROR",
    "FAULT_HANG",
    "FAULT_CORRUPT",
    "FAULT_DISK",
    "Fault",
    "FaultInjector",
]

FAULT_ERROR = "error"
FAULT_HANG = "hang"
FAULT_CORRUPT = "corrupt"
FAULT_DISK = "disk_corruption"

#: Attempt index the client uses for hedged re-executions; hedges draw
#: their own fault decision so a hedge can itself fail.
HEDGE_ATTEMPT = -1

_SCHEDULE_ACTIONS = ("fail", "recover")

#: Integer namespaces for the derived RNG keys (ints hash identically
#: across processes; strings would vary with PYTHONHASHSEED).
_KEY_DECIDE = 1
_KEY_LOST = 2
_KEY_JITTER = 3
_KEY_DISK = 4


@dataclass(frozen=True)
class Fault:
    """One injected misbehavior for one region invocation attempt."""

    kind: str
    #: Simulated latency added by a hang fault (ms); 0 otherwise.
    latency_ms: float = 0.0


class FaultInjector:
    """Seedable, thread-safe source of injected region/node faults.

    Parameters
    ----------
    config:
        Rates and the seed; see :class:`repro.config.FaultsConfig`.
        Defaults to an *armed* config with zero rates (useful to engage
        the resilient fan-out without injecting anything).

    The cluster client calls :meth:`on_fanout_start` once per fan-out
    (applying any due node fail/recover schedule entries and bumping the
    decision epoch) and :meth:`decide` once per region attempt.  Node
    failure hooks (:meth:`on_node_failed` / :meth:`on_node_recovered`)
    are invoked by :class:`~repro.hbase.client.HBaseCluster` so the
    injector can model stale region locations and lost replicas.
    """

    def __init__(self, config: Optional[FaultsConfig] = None) -> None:
        self.config = config or FaultsConfig(enabled=True)
        self._lock = threading.Lock()
        self._epoch = 0
        #: region_id -> remaining one-shot injected errors.
        self._targeted: Dict[int, int] = {}
        #: region_id -> node whose failure made the region's data
        #: unavailable (cleared when that node recovers).
        self._lost_regions: Dict[int, int] = {}
        self._down_nodes: Set[int] = set()
        #: fanout epoch -> [(action, node_id)] applied at fan-out start.
        self._schedule: Dict[int, List[Tuple[str, int]]] = {}
        #: Applied schedule actions, for assertions and debugging.
        self.events: List[Tuple[int, str, int]] = []
        #: Optional wide-event log: applied schedule actions become
        #: ``fault.injected`` events (always kept) so an incident
        #: timeline shows *why* a node died mid-drill.
        self.event_log: Optional[Any] = None

    # ------------------------------------------------------------- state

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def epoch(self) -> int:
        return self._epoch

    def _rng(self, *key: int) -> random.Random:
        """A fresh RNG keyed on the seed plus ``key``.

        The key parts are all ints, and hashing an int tuple is
        deterministic across processes (``PYTHONHASHSEED`` only perturbs
        str/bytes hashing), so decisions never depend on thread
        interleaving or call order.
        """
        return random.Random(hash((self.config.seed,) + key))

    # --------------------------------------------------------- lifecycle

    def on_fanout_start(self, cluster: Any = None) -> int:
        """Advance the decision epoch; apply due node schedule entries.

        Returns the new epoch.  ``cluster`` receives the scheduled
        ``fail_node``/``recover_node`` calls; pass None to only tick.
        """
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            due = self._schedule.pop(epoch, [])
        for action, node_id in due:
            self.events.append((epoch, action, node_id))
            if self.event_log is not None:
                self.event_log.emit(
                    {
                        "type": "fault.injected",
                        "epoch": epoch,
                        "action": action,
                        "node": node_id,
                    },
                    keep=True,
                )
            if cluster is None:
                continue
            if action == "fail":
                if getattr(cluster, "supervisor", None) is not None:
                    # A supervised cluster gets the honest failure mode:
                    # the node crashes in place (regions stranded,
                    # memstores lost) and only the supervisor's
                    # heartbeat-lease recovery brings service back.
                    cluster.crash_node(node_id)
                else:
                    cluster.fail_node(node_id)
            else:
                cluster.recover_node(node_id)
        return epoch

    def schedule_node_event(self, at_fanout: int, action: str, node_id: int) -> None:
        """Queue a ``fail``/``recover`` of ``node_id`` to run right
        before fan-out number ``at_fanout`` (1-based, counted from the
        injector's attachment)."""
        if action not in _SCHEDULE_ACTIONS:
            raise ConfigError(
                "action must be one of %s, got %r" % (_SCHEDULE_ACTIONS, action)
            )
        if at_fanout <= self._epoch:
            raise ConfigError(
                "fan-out %d already happened (epoch is %d)"
                % (at_fanout, self._epoch)
            )
        with self._lock:
            self._schedule.setdefault(at_fanout, []).append((action, node_id))

    def break_region(self, region_id: int, times: int = 1) -> None:
        """Make the next ``times`` attempts on ``region_id`` raise."""
        if times < 1:
            raise ConfigError("times must be >= 1")
        with self._lock:
            self._targeted[region_id] = self._targeted.get(region_id, 0) + times

    def inject_disk_corruption(
        self,
        cluster: Any,
        table_name: str,
        events: int = 1,
        tear_tail: bool = False,
    ) -> List[Tuple[int, str, int, int]]:
        """Seeded bit rot: corrupt store-file blocks of ``table_name``.

        Picks ``events`` deterministic targets from the table's current
        store files (keyed on the seed + injector epoch, so the same
        seed damages the same blocks) and either flips bits inside one
        block (:meth:`StoreFile.corrupt_block`) or tears the file's tail
        (``tear_tail=True``, :meth:`StoreFile.tear_tail`).  The damage
        is *latent* — nothing fails until a read checksums the block or
        the scrubber's next pass finds it.  Returns the list of
        ``(region_id, family, file_id, block_index)`` targets hit;
        empty when the table has no store files yet (flush first).
        """
        if events < 1:
            raise ConfigError("events must be >= 1")
        table = cluster.table(table_name)
        candidates: List[Tuple[int, str, Any]] = []
        for region in table.regions:
            for family in sorted(region.families):
                for sf in region.store_files_for(family):
                    if len(sf) > 0:
                        candidates.append((region.region_id, family, sf))
        candidates.sort(key=lambda t: (t[0], t[1], t[2].file_id))
        if not candidates:
            return []
        hit: List[Tuple[int, str, int, int]] = []
        for i in range(events):
            rng = self._rng(_KEY_DISK, self._epoch, i)
            region_id, family, sf = candidates[rng.randrange(len(candidates))]
            if tear_tail:
                block_index = sf.block_count - 1
                sf.tear_tail()
            else:
                block_index = rng.randrange(sf.block_count)
                sf.corrupt_block(block_index)
            hit.append((region_id, family, sf.file_id, block_index))
            self.events.append((self._epoch, FAULT_DISK, region_id))
            if self.event_log is not None:
                self.event_log.emit(
                    {
                        "type": "fault.injected",
                        "action": FAULT_DISK,
                        "region": region_id,
                        "family": family,
                        "file_id": sf.file_id,
                        "block": block_index,
                        "torn": tear_tail,
                    },
                    keep=True,
                )
        return hit

    # ---------------------------------------------------- node-failure hooks

    def on_node_failed(self, node_id: int, moved_regions: Sequence[int]) -> None:
        """React to a region-server death.

        Models the two client-visible consequences: every moved region
        serves ``stale_location_errors`` injected errors (the client's
        region cache still points at the corpse), and a deterministic
        ``lost_region_fraction`` of the moved regions loses its data
        outright until the node recovers (the replica was also behind).
        """
        cfg = self.config
        moved = sorted(moved_regions)
        with self._lock:
            self._down_nodes.add(node_id)
            if cfg.stale_location_errors > 0:
                for region_id in moved:
                    self._targeted[region_id] = (
                        self._targeted.get(region_id, 0)
                        + cfg.stale_location_errors
                    )
            if cfg.lost_region_fraction > 0.0 and moved:
                k = max(1, round(cfg.lost_region_fraction * len(moved)))
                k = min(k, len(moved))
                lost = self._rng(_KEY_LOST, node_id, len(moved)).sample(moved, k)
                for region_id in lost:
                    self._lost_regions.setdefault(region_id, node_id)

    def on_node_recovered(self, node_id: int) -> None:
        """Clear the node's down marker and restore its lost regions."""
        with self._lock:
            self._down_nodes.discard(node_id)
            restored = [
                region_id
                for region_id, owner in self._lost_regions.items()
                if owner == node_id
            ]
            for region_id in restored:
                del self._lost_regions[region_id]
                # Stale-location errors for a region whose data just came
                # back should not outlive the failure they modeled.
                self._targeted.pop(region_id, None)

    def region_available(self, region_id: int) -> bool:
        """False while the region's data is lost to a node failure."""
        if not self._lost_regions:
            return True
        with self._lock:
            return region_id not in self._lost_regions

    def lost_regions(self) -> List[int]:
        with self._lock:
            return sorted(self._lost_regions)

    # ---------------------------------------------------------- decisions

    def decide(self, region_id: int, node_id: Optional[int], attempt: int) -> Optional[Fault]:
        """The fault (if any) for one region invocation attempt.

        Targeted one-shot breaks fire first; otherwise the configured
        rates are drawn deterministically from ``(seed, epoch, region,
        attempt)``.  Returns None for a clean attempt.
        """
        if not self.enabled:
            return None
        if self._targeted:
            with self._lock:
                remaining = self._targeted.get(region_id, 0)
                if remaining > 0:
                    if remaining == 1:
                        del self._targeted[region_id]
                    else:
                        self._targeted[region_id] = remaining - 1
                    return Fault(FAULT_ERROR)
        cfg = self.config
        total = cfg.region_error_rate + cfg.region_hang_rate + cfg.corrupt_rate
        if total <= 0.0:
            return None
        draw = self._rng(_KEY_DECIDE, self._epoch, region_id, attempt).random()
        if draw < cfg.region_error_rate:
            return Fault(FAULT_ERROR)
        if draw < cfg.region_error_rate + cfg.region_hang_rate:
            return Fault(FAULT_HANG, latency_ms=cfg.hang_ms)
        if draw < total:
            return Fault(FAULT_CORRUPT)
        return None

    def backoff_jitter_ms(self, region_id: int, attempt: int) -> float:
        """Deterministic jitter added to one retry's backoff delay.

        Keyed like :meth:`decide`, so replays reproduce the exact
        simulated timeline.  (Without an injector the client uses zero
        jitter — the clean path stays deterministic by construction.)
        """
        return (
            self._rng(_KEY_JITTER, self._epoch, region_id, attempt).random()
            * self.config.retry_jitter_ms
        )

    def corrupt(self, partial: Any) -> CorruptPartial:
        """The corrupt stand-in shipped instead of a region's partial."""
        return CorruptPartial(partial)

    # ------------------------------------------------------------ summary

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "seed": self.config.seed,
                "epoch": self._epoch,
                "rates": {
                    "error": self.config.region_error_rate,
                    "hang": self.config.region_hang_rate,
                    "corrupt": self.config.corrupt_rate,
                },
                "down_nodes": sorted(self._down_nodes),
                "lost_regions": sorted(self._lost_regions),
                "targeted_regions": dict(self._targeted),
                "scheduled_events": sum(len(v) for v in self._schedule.values()),
                "applied_events": list(self.events),
            }
