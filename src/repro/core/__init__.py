"""The MoDisSENSE platform: repositories, processing modules, REST API.

This package is the paper's primary contribution — everything in Figure
1's backend box — assembled over the substrates in the sibling packages:

- :mod:`repositories` maps each paper repository to its store (POIs and
  blogs on the SQL engine; social info, texts, visits and GPS traces on
  the HBase cluster);
- :mod:`modules` implements the processing modules (user management,
  data collection, text processing, event detection, HotIn update,
  query answering, trending, trajectory/blog);
- :mod:`api` is the REST/JSON boundary the web and mobile clients call;
- :class:`~repro.core.platform.MoDisSENSE` wires it all together.
"""

from .platform import MoDisSENSE
from .admission import AdmissionController, GradientLimiter, RetryBudget, TokenBucket
from .faults import FaultInjector
from .modules.query_answering import SearchQuery, SearchResult, ScoredPOI
from .tracing import Tracer

__all__ = [
    "MoDisSENSE",
    "AdmissionController",
    "GradientLimiter",
    "RetryBudget",
    "TokenBucket",
    "FaultInjector",
    "SearchQuery",
    "SearchResult",
    "ScoredPOI",
    "Tracer",
]
