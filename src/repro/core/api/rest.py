"""The REST dispatcher the web/mobile clients would call.

Endpoints take and return plain dicts (the JSON bodies); the transport
layer (HTTP server farm) is outside the reproduction boundary.  Every
platform error is converted to a uniform error envelope so clients never
see stack traces.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple, Type

from ... import threadreg
from ...datagen.gps import GPSPoint
from ...errors import (
    AuthenticationError,
    ConfigError,
    CoprocessorError,
    OverloadedError,
    QueryCancelled,
    QueryDeadlineExceeded,
    QueryError,
    RegionUnavailableError,
    ReproError,
    StorageError,
    TableNotFoundError,
    ValidationError,
)
from ...geo import BoundingBox
from ..modules.query_answering import SearchQuery
from ..modules.trending import TrendingQuery
from ..platform import MoDisSENSE
from ..repositories.blogs import BlogEntry
from .json_format import ApiResponse, validate_request

#: Exception -> error code, most specific class first (the first
#: ``isinstance`` match wins, so subclasses must precede their bases).
ERROR_CODES: Tuple[Tuple[Type[ReproError], str], ...] = (
    (ValidationError, "bad_request"),
    (AuthenticationError, "auth_failed"),
    (QueryDeadlineExceeded, "deadline_exceeded"),
    (QueryCancelled, "cancelled"),
    (OverloadedError, "overloaded"),
    (RegionUnavailableError, "region_unavailable"),
    (QueryError, "bad_query"),
    (TableNotFoundError, "not_found"),
    (CoprocessorError, "coprocessor"),
    (ConfigError, "config"),
    (StorageError, "storage"),
)

#: Priority class each endpoint's requests are admitted under (the
#: admission layer rejects the tail of interactive > admin > background
#: first).  Unlisted endpoints default to interactive.
ENDPOINT_PRIORITY: Dict[str, str] = {
    "search": "interactive",
    "trending": "interactive",
    "friends": "interactive",
    "get_blogs": "interactive",
    "explain": "interactive",
    "register": "background",
    "link_network": "background",
    "push_gps": "background",
    "generate_blog": "background",
    "update_blog": "background",
    "publish_blog": "background",
    "admin_describe": "admin",
    "admin_metrics": "admin",
    "admin_traces": "admin",
    "admin_cache": "admin",
    "admin_ingest": "admin",
    "admin_timeseries": "admin",
    "admin_profile": "admin",
    "admin_events": "admin",
    "admin_supervisor": "admin",
}

#: Never gated: the operator must be able to read health and steer the
#: admission layer *during* the overload it is managing.
ADMISSION_EXEMPT = frozenset({"admin_admission", "admin_health"})

#: Endpoints whose wall latency feeds the AIMD limiters — the
#: latency-bearing query paths; metadata and admin calls would only
#: pollute the congestion signal.
LATENCY_FED = frozenset({"search", "trending"})


def error_code(exc: BaseException) -> str:
    """The stable machine-readable code for a platform exception."""
    for exc_type, code in ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "internal"


class RestApi:
    """JSON-in / JSON-out facade over a :class:`MoDisSENSE` platform."""

    def __init__(self, platform: MoDisSENSE) -> None:
        self.platform = platform
        self._routes: Dict[str, Callable] = {
            "register": self._register,
            "link_network": self._link_network,
            "search": self._search,
            "trending": self._trending,
            "push_gps": self._push_gps,
            "generate_blog": self._generate_blog,
            "get_blogs": self._get_blogs,
            "update_blog": self._update_blog,
            "publish_blog": self._publish_blog,
            "friends": self._friends,
            "admin_describe": self._admin_describe,
            "admin_metrics": self._admin_metrics,
            "admin_traces": self._admin_traces,
            "admin_cache": self._admin_cache,
            "admin_ingest": self._admin_ingest,
            "admin_timeseries": self._admin_timeseries,
            "admin_health": self._admin_health,
            "admin_profile": self._admin_profile,
            "admin_events": self._admin_events,
            "admin_supervisor": self._admin_supervisor,
            "admin_admission": self._admin_admission,
            "explain": self._explain,
        }
        #: Observability sinks: auto-wired from the platform (which owns
        #: a registry + tracer); attach_metrics()/attach_tracer()
        #: override them, e.g. to segregate API-tier metrics.
        self._metrics = getattr(platform, "metrics", None)
        self._tracer = getattr(platform, "tracer", None)

    def handle(self, endpoint: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request; always returns a response envelope.

        With the admission layer on, every non-exempt request acquires
        a ticket first — a rejection is the ``overloaded`` envelope
        (HTTP 429's JSON twin, ``retry_after_s`` included) and the
        handler never runs.  With it off (the default) the path is
        byte-identical to a build without admission.
        """
        # Attribute profiler samples taken during this request to the
        # REST tier (restores the caller's component on the way out).
        previous_component = threadreg.push_component("rest")
        ticket = None
        started = 0.0
        try:
            handler = self._routes.get(endpoint)
            if handler is None:
                return ApiResponse.fail(
                    "unknown endpoint %r" % endpoint, code="unknown_endpoint"
                ).as_dict()
            validate_request(endpoint, request)
            admission = getattr(self.platform, "admission", None)
            if admission is not None and endpoint not in ADMISSION_EXEMPT:
                ticket = admission.admit(
                    ENDPOINT_PRIORITY.get(endpoint, "interactive"),
                    client_id=request.get("client_id"),
                )
                started = time.perf_counter()
            if self._metrics is not None:
                self._metrics.increment(
                    "api.requests", labels={"endpoint": endpoint}
                )
            return ApiResponse.ok(handler(request)).as_dict()
        except ReproError as exc:
            code = error_code(exc)
            if self._metrics is not None:
                self._metrics.increment(
                    "api.errors", labels={"endpoint": endpoint}
                )
                self._metrics.increment(
                    "api.errors_by_code",
                    labels={"endpoint": endpoint, "code": code},
                )
            return ApiResponse.fail(
                str(exc),
                code=code,
                retry_after_s=getattr(exc, "retry_after_s", None),
            ).as_dict()
        finally:
            if ticket is not None:
                ticket.finish(
                    (time.perf_counter() - started) * 1e3
                    if endpoint in LATENCY_FED
                    else None
                )
            threadreg.pop_component(previous_component)

    def handle_json(self, endpoint: str, body: str) -> str:
        """Wire-format variant: JSON string in, JSON string out.

        A malformed body is an error envelope, never an exception — the
        same contract HTTP clients get from the real server farm.
        """
        import json

        try:
            request = json.loads(body) if body.strip() else {}
        except json.JSONDecodeError as exc:
            return json.dumps(
                ApiResponse.fail(
                    "malformed JSON: %s" % exc, code="bad_request"
                ).as_dict()
            )
        if not isinstance(request, dict):
            return json.dumps(
                ApiResponse.fail(
                    "request body must be a JSON object", code="bad_request"
                ).as_dict()
            )
        return json.dumps(self.handle(endpoint, request))

    def endpoints(self) -> List[str]:
        return sorted(self._routes)

    # ----------------------------------------------------------- handlers

    def _register(self, req: Dict) -> Dict:
        user = self.platform.register_user(
            req["network"], req["network_user_id"], req["password"], req["now"]
        )
        return {
            "user_id": user.user_id,
            "display_name": user.display_name,
            "linked_networks": user.linked_networks,
        }

    def _link_network(self, req: Dict) -> Dict:
        user = self.platform.user_management.link_network(
            req["user_id"],
            req["network"],
            req["network_user_id"],
            req["password"],
            req["now"],
        )
        return {
            "user_id": user.user_id,
            "linked_networks": user.linked_networks,
        }

    def _search(self, req: Dict) -> Dict:
        query = SearchQuery(
            bbox=BoundingBox.from_tuple(req["bbox"]) if req.get("bbox") else None,
            keywords=tuple(req.get("keywords") or ()),
            friend_ids=tuple(req.get("friend_ids") or ()),
            since=req.get("since"),
            until=req.get("until"),
            sort_by=req.get("sort_by", "interest"),
            limit=req.get("limit", 10),
            deadline_ms=req.get("deadline_ms"),
        )
        result = self.platform.search(query)
        return {
            "personalized": result.personalized,
            "latency_ms": result.latency_ms,
            # Partial-result disclosure: clients must be able to tell an
            # exact answer from one missing failed regions' visits.
            "degraded": result.degraded,
            "coverage": result.coverage,
            "missing_regions": list(result.missing_regions),
            "pois": [
                {
                    "poi_id": p.poi_id,
                    "name": p.name,
                    "lat": p.lat,
                    "lon": p.lon,
                    "score": p.score,
                    "visit_count": p.visit_count,
                }
                for p in result.pois
            ],
        }

    def _trending(self, req: Dict) -> Dict:
        query = TrendingQuery(
            now=req["now"],
            window_s=req["window_s"],
            bbox=BoundingBox.from_tuple(req["bbox"]) if req.get("bbox") else None,
            friend_ids=tuple(req.get("friend_ids") or ()),
            limit=req.get("limit", 5),
        )
        result = self.platform.trending_events(query)
        return {
            "pois": [
                {"poi_id": p.poi_id, "name": p.name, "score": p.score}
                for p in result.pois
            ]
        }

    def _push_gps(self, req: Dict) -> Dict:
        points = [
            GPSPoint(
                user_id=p["user_id"],
                lat=p["lat"],
                lon=p["lon"],
                timestamp=p["timestamp"],
            )
            for p in req["points"]
        ]
        stored = self.platform.push_gps(points)
        return {"stored": stored}

    def _generate_blog(self, req: Dict) -> Dict:
        blog = self.platform.generate_blog(
            req["user_id"], req["day_start"], req["day_end"]
        )
        return self._blog_to_dict(blog)

    def _get_blogs(self, req: Dict) -> Dict:
        blogs = self.platform.blogs_repository.for_user(req["user_id"])
        return {"blogs": [self._blog_to_dict(b) for b in blogs]}

    def _update_blog(self, req: Dict) -> Dict:
        blog_module = self.platform.blog
        blog_id = req["blog_id"]
        if req.get("new_order") is not None:
            blog = blog_module.reorder_visits(blog_id, req["new_order"])
        elif req.get("note") is not None:
            blog = blog_module.annotate_visit(
                blog_id, req["visit_index"], req["note"]
            )
        else:
            blog = blog_module.edit_visit_times(
                blog_id, req["visit_index"], req["arrival"], req["departure"]
            )
        return self._blog_to_dict(blog)

    def _publish_blog(self, req: Dict) -> Dict:
        blog = self.platform.blog.publish(
            req["blog_id"], req["network"], req["now"]
        )
        return self._blog_to_dict(blog)

    def attach_metrics(self, metrics) -> None:
        """Expose a :class:`~repro.core.monitoring.PlatformMetrics`
        through the ``admin_metrics`` endpoint."""
        self._metrics = metrics

    def attach_tracer(self, tracer) -> None:
        """Expose a :class:`~repro.core.tracing.Tracer` through the
        ``admin_traces`` endpoint."""
        self._tracer = tracer

    def _explain(self, req: Dict) -> Dict:
        """Per-region execution profile of a personalized query."""
        query = SearchQuery(
            bbox=BoundingBox.from_tuple(req["bbox"]) if req.get("bbox") else None,
            keywords=tuple(req.get("keywords") or ()),
            friend_ids=tuple(req["friend_ids"]),
            since=req.get("since"),
            until=req.get("until"),
        )
        return self.platform.query_answering.explain_personalized(query)

    def _admin_describe(self, req: Dict) -> Dict:
        return self.platform.describe()

    def _admin_metrics(self, req: Dict) -> Dict:
        """Metrics registry: JSON snapshot, or Prometheus text
        exposition when ``format`` is ``"prometheus"`` (the body plus
        the content type a scrape endpoint must serve)."""
        if self._metrics is None:
            return {"counters": {}, "gauges": {}, "latencies": {}}
        fmt = req.get("format", "json")
        if fmt == "prometheus":
            return {
                "content_type": "text/plain; version=0.0.4; charset=utf-8",
                "body": self._metrics.to_prometheus(),
            }
        if fmt != "json":
            raise ValidationError(
                "format must be 'json' or 'prometheus', got %r" % fmt
            )
        return self._metrics.snapshot()

    def _admin_cache(self, req: Dict) -> Dict:
        """Caching-layer state: per-cache counters, occupancy and the
        coalescer's totals.  ``clear`` drops every entry of both caches
        (counted as invalidations) — the operator's big red button after
        an out-of-band data fix."""
        platform = self.platform
        scan_cache = getattr(platform, "scan_cache", None)
        hot_poi_cache = getattr(platform, "hot_poi_cache", None)
        if req.get("clear"):
            if scan_cache is not None:
                scan_cache.clear()
            if hot_poi_cache is not None:
                hot_poi_cache.clear()
        single_flight = getattr(
            platform.query_answering, "single_flight", None
        )
        return {
            "enabled": scan_cache is not None,
            "scan": scan_cache.stats() if scan_cache is not None else None,
            "hot_poi": (
                hot_poi_cache.stats() if hot_poi_cache is not None else None
            ),
            "coalescing": {
                "enabled": single_flight is not None,
                "coalesced_total": (
                    single_flight.coalesced_total
                    if single_flight is not None
                    else 0
                ),
                "in_flight": (
                    single_flight.in_flight()
                    if single_flight is not None
                    else 0
                ),
            },
        }

    def _admin_ingest(self, req: Dict) -> Dict:
        """Streaming-ingest tier state: queue depths, partition map,
        counters, rebalance history and incremental-HotIn stats.

        ``rebalance`` forces a load-aware repartition check outside the
        scheduler's cadence; ``reconcile`` (with ``since``/``until``)
        runs the verify-and-repair pass on demand — the operator's
        answer to "is hotness drifting?".
        """
        ingest = getattr(self.platform, "ingest", None)
        if ingest is None:
            return {"enabled": False}
        out: Dict[str, Any] = {"enabled": True}
        if req.get("rebalance"):
            out["rebalance"] = ingest.maybe_rebalance(force=True)
        if req.get("reconcile"):
            since = req.get("since")
            until = req.get("until")
            if since is None or until is None:
                raise ValidationError(
                    "reconcile requires 'since' and 'until'"
                )
            report = self.platform.reconcile_hotin(since, until)
            out["reconcile"] = {
                "window": list(report.window),
                "visits_scanned": report.visits_scanned,
                "pois_checked": report.pois_checked,
                "mismatched": report.mismatched,
                "repaired": report.repaired,
                "pois_updated": report.pois_updated,
                "in_sync": report.in_sync,
            }
        out["stats"] = ingest.stats()
        return out

    def _admin_supervisor(self, req: Dict) -> Dict:
        """Self-healing supervisor state: lease table, recovery history
        and on-demand drills.

        ``drill`` runs a live recovery drill (crash a node — ``node``
        picks which, default the highest-id live one — then heal it and
        report the measured MTTR); ``scrub`` forces an immediate
        scrub-and-repair pass.  ``limit`` bounds the history returned.
        """
        supervisor = getattr(self.platform, "supervisor", None)
        if supervisor is None:
            return {"enabled": False}
        out: Dict[str, Any] = {"enabled": True}
        if req.get("drill"):
            out["drill"] = supervisor.force_drill(req.get("node"))
        if req.get("scrub"):
            out["scrub"] = supervisor.force_scrub()
        limit = req.get("limit", 20)
        out["leases"] = supervisor.lease_table()
        out["history"] = supervisor.recovery_history[-limit:]
        out["describe"] = supervisor.describe()
        return out

    def _admin_admission(self, req: Dict) -> Dict:
        """Admission-controller state and drill controls.

        ``force_level`` pins the brownout ladder at a rung (0–5) until
        ``reset`` releases it — the operator's manual brownout and the
        overload drill's lever.  Never gated by admission itself: the
        controls must work *during* the overload they manage.
        """
        admission = getattr(self.platform, "admission", None)
        if admission is None:
            return {"enabled": False}
        if req.get("force_level") is not None:
            admission.force_level(req["force_level"])
        if req.get("reset"):
            admission.reset()
        return admission.describe()

    def _admin_traces(self, req: Dict) -> Dict:
        """Recent span trees (newest first); ``slow`` selects the
        slow-query log instead of the main ring buffer.

        ``slow_threshold_ms`` retunes the slow-query log's cutoff at
        runtime (subsequent traces only; the startup default comes from
        ``TracingConfig.slow_query_threshold_ms``)."""
        if self._tracer is None:
            return {"traces": [], "tracing": {"enabled": False}}
        threshold = req.get("slow_threshold_ms")
        if threshold is not None:
            if threshold < 0:
                raise ValidationError(
                    "slow_threshold_ms cannot be negative"
                )
            self._tracer.slow_threshold_ms = float(threshold)
        limit = req.get("limit")
        if req.get("slow"):
            traces = self._tracer.slow_queries(limit)
        else:
            traces = self._tracer.recent_traces(limit)
        return {"traces": traces, "tracing": self._tracer.describe()}

    def _admin_timeseries(self, req: Dict) -> Dict:
        """Scraped metric history from the telemetry store.

        With ``name``: that series' samples — raw ``[t, value]`` pairs
        by default, or ``[bucket, count, sum, min, max, last]`` rollup
        rows when ``resolution`` selects one.  Without ``name``: the
        series directory (optionally filtered by ``prefix``).
        """
        telemetry = getattr(self.platform, "telemetry", None)
        if telemetry is None:
            return {"enabled": False}
        store = telemetry.store
        name = req.get("name")
        if name is None:
            return {
                "enabled": True,
                "series": store.names(prefix=req.get("prefix")),
                "store": store.describe(),
            }
        return {
            "enabled": True,
            "name": name,
            "kind": store.kind_of(name),
            "resolution": req.get("resolution"),
            "samples": store.query(
                name,
                resolution=req.get("resolution"),
                since=req.get("since"),
                until=req.get("until"),
                limit=req.get("limit"),
            ),
        }

    def _admin_health(self, req: Dict) -> Dict:
        """SLO-driven health verdict: overall state plus per-SLO burn
        rates and remaining error budget."""
        telemetry = getattr(self.platform, "telemetry", None)
        if telemetry is None:
            return {"enabled": False, "state": "healthy", "slos": []}
        out = telemetry.health()
        out["enabled"] = True
        return out

    def _admin_profile(self, req: Dict) -> Dict:
        """Continuous-profiler snapshot: folded flamegraph stacks plus
        per-component attribution.  ``reset`` clears accumulated samples
        after reading (profile-per-experiment workflows)."""
        telemetry = getattr(self.platform, "telemetry", None)
        profiler = (
            telemetry.profiler if telemetry is not None else None
        )
        if profiler is None:
            return {"enabled": False}
        out = {
            "enabled": True,
            "stats": profiler.stats(),
            "folded": profiler.folded(
                limit=req.get("limit"), component=req.get("component")
            ),
        }
        if req.get("reset"):
            profiler.reset()
        return out

    def _admin_events(self, req: Dict) -> Dict:
        """Wide-event log: tail-sampled canonical events, newest first;
        ``interesting`` restricts to the always-kept ring."""
        telemetry = getattr(self.platform, "telemetry", None)
        if telemetry is None:
            return {"enabled": False, "events": []}
        return {
            "enabled": True,
            "events": telemetry.events.query(
                event_type=req.get("type"),
                interesting_only=bool(req.get("interesting")),
                limit=req.get("limit"),
            ),
            "stats": telemetry.events.stats(),
        }

    def _friends(self, req: Dict) -> Dict:
        user_id = req["user_id"]
        if req.get("network"):
            friends = self.platform.social_info.get_friends(
                user_id, req["network"]
            )
            payload = {req["network"]: friends}
        else:
            payload = self.platform.social_info.get_all_friends(user_id)
        return {
            network: [
                {"id": f.network_user_id, "name": f.name, "picture": f.picture_url}
                for f in friend_list
            ]
            for network, friend_list in payload.items()
        }

    @staticmethod
    def _blog_to_dict(blog: BlogEntry) -> Dict:
        return {
            "blog_id": blog.blog_id,
            "user_id": blog.user_id,
            "day": blog.day,
            "title": blog.title,
            "published_to": list(blog.published_to),
            "visits": [v.as_dict() for v in blog.visits],
        }
