"""The platform's JSON request/response format and validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...errors import ValidationError


@dataclass
class ApiResponse:
    """Uniform response envelope.

    Errors carry a machine-readable ``code`` alongside the human
    message; with a code set the envelope is the structured
    ``{"error": {"code", "message"}}`` shape clients can switch on.
    A codeless failure keeps the legacy string shape for callers that
    construct envelopes directly.
    """

    status: str  # "ok" | "error"
    data: Any = None
    error: Optional[str] = None
    code: Optional[str] = None
    #: Backoff hint (seconds) carried by overload rejections — the JSON
    #: twin of an HTTP 429's ``Retry-After`` header.  None (the usual
    #: case) keeps the envelope byte-identical to the pre-admission
    #: shape.
    retry_after_s: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"status": self.status}
        if self.status == "ok":
            out["data"] = self.data
        elif self.code is not None:
            out["error"] = {"code": self.code, "message": self.error}
            if self.retry_after_s is not None:
                out["error"]["retry_after_s"] = self.retry_after_s
        else:
            out["error"] = self.error
        return out

    @classmethod
    def ok(cls, data: Any) -> "ApiResponse":
        return cls(status="ok", data=data)

    @classmethod
    def fail(
        cls,
        message: str,
        code: Optional[str] = None,
        retry_after_s: Optional[float] = None,
    ) -> "ApiResponse":
        return cls(
            status="error",
            error=message,
            code=code,
            retry_after_s=retry_after_s,
        )


#: endpoint -> {field: (type(s), required)}
REQUEST_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    "register": {
        "network": (str, True),
        "network_user_id": (str, True),
        "password": (str, True),
        "now": ((int, float), True),
    },
    "link_network": {
        "user_id": (int, True),
        "network": (str, True),
        "network_user_id": (str, True),
        "password": (str, True),
        "now": ((int, float), True),
    },
    "search": {
        "bbox": (list, False),
        "keywords": (list, False),
        "friend_ids": (list, False),
        "since": (int, False),
        "until": (int, False),
        "sort_by": (str, False),
        "limit": (int, False),
        # End-to-end deadline (ms): propagated through the fan-out and
        # armed as cooperative cancellation on every region scan.
        "deadline_ms": ((int, float), False),
        # Caller identity for per-client rate limiting (admission layer;
        # ignored when admission is off).
        "client_id": (str, False),
    },
    "trending": {
        "now": (int, True),
        "window_s": (int, True),
        "bbox": (list, False),
        "friend_ids": (list, False),
        "limit": (int, False),
        "client_id": (str, False),
    },
    "push_gps": {
        "points": (list, True),
        "client_id": (str, False),
    },
    "generate_blog": {
        "user_id": (int, True),
        "day_start": (int, True),
        "day_end": (int, True),
    },
    "get_blogs": {
        "user_id": (int, True),
    },
    "update_blog": {
        "blog_id": (int, True),
        "new_order": (list, False),
        "visit_index": (int, False),
        "arrival": (int, False),
        "departure": (int, False),
        "note": (str, False),
    },
    "publish_blog": {
        "blog_id": (int, True),
        "network": (str, True),
        "now": ((int, float), True),
    },
    "friends": {
        "user_id": (int, True),
        "network": (str, False),
    },
    "admin_describe": {},
    "admin_metrics": {
        "format": (str, False),
    },
    "admin_traces": {
        "limit": (int, False),
        "slow": (bool, False),
        "slow_threshold_ms": ((int, float), False),
    },
    "admin_timeseries": {
        "name": (str, False),
        "prefix": (str, False),
        "resolution": ((int, float), False),
        "since": ((int, float), False),
        "until": ((int, float), False),
        "limit": (int, False),
    },
    "admin_health": {},
    "admin_profile": {
        "limit": (int, False),
        "component": (str, False),
        "reset": (bool, False),
    },
    "admin_events": {
        "type": (str, False),
        "interesting": (bool, False),
        "limit": (int, False),
    },
    "admin_cache": {
        "clear": (bool, False),
    },
    "admin_ingest": {
        "rebalance": (bool, False),
        "reconcile": (bool, False),
        "since": (int, False),
        "until": (int, False),
    },
    "admin_supervisor": {
        "drill": (bool, False),
        "node": (int, False),
        "scrub": (bool, False),
        "limit": (int, False),
    },
    "admin_admission": {
        "force_level": (int, False),
        "reset": (bool, False),
    },
    "explain": {
        "bbox": (list, False),
        "keywords": (list, False),
        "friend_ids": (list, True),
        "since": (int, False),
        "until": (int, False),
    },
}


def validate_request(endpoint: str, request: Dict[str, Any]) -> Dict[str, Any]:
    """Check field presence and types against the endpoint's schema.

    Booleans are rejected where ints are expected (bool subclasses int
    in Python, which would let ``true`` slip into numeric fields).
    """
    schema = REQUEST_SCHEMAS.get(endpoint)
    if schema is None:
        raise ValidationError("unknown endpoint %r" % endpoint)
    if not isinstance(request, dict):
        raise ValidationError("request body must be a JSON object")
    unknown = set(request) - set(schema)
    if unknown:
        raise ValidationError(
            "unknown fields %s for endpoint %r" % (sorted(unknown), endpoint)
        )
    for name, (types, required) in schema.items():
        if name not in request or request[name] is None:
            if required:
                raise ValidationError(
                    "missing required field %r for endpoint %r" % (name, endpoint)
                )
            continue
        value = request[name]
        if isinstance(value, bool) and types in (int, (int, float)):
            raise ValidationError(
                "field %r must be numeric, got a boolean" % name
            )
        if not isinstance(value, types):
            raise ValidationError(
                "field %r has wrong type %s" % (name, type(value).__name__)
            )
    return request
