"""REST/JSON API layer.

"The frontend applications communicate with the backend through a REST
API.  A specific JSON format has been defined in order to send requests
to the backend and return results to the user." (paper Section 2)
"""

from .rest import RestApi
from .json_format import validate_request, ApiResponse

__all__ = ["RestApi", "validate_request", "ApiResponse"]
