"""Threshold-algorithm top-k early termination for the query fan-out.

The exhaustive personalized path (ROADMAP item 3's complaint) has every
region decode and ship its *complete* per-POI aggregate list, and the
web tier ranks only at the end — a k=10 query over 6000 friends pays a
full JSON attribute parse for every distinct POI in every region.  This
module implements threshold-algorithm (TA) pruning in the style of
"Efficient Top K Temporal Spatial Keyword Search": regions emit
score-sorted partial batches with a monotone upper bound on anything
they have not emitted yet, and the merger maintains the running k-th
score threshold, short-circuiting region emission the moment its bound
proves nothing else from that region can enter the top k.

Two invariants make the pruned answer *byte-identical* to the
exhaustive one (the differential oracle suite in
``tests/test_topk_oracle.py`` asserts this over hundreds of seeded
workloads, and ``tests/test_topk_properties.py`` proves the bound math
directly):

1. **Scans always complete.**  The per-(region, POI) ``(grade_sum,
   count)`` aggregates are exact before any emission starts: the grade
   of every cell comes from the positional ``decode_grade`` slice, so
   phase A needs *zero* full payload parses.  What early termination
   avoids is the expensive half — per-POI attribute decoding, partial
   shipping, and web-tier merging — never the aggregation itself, so no
   top-k member can ever lose a contribution.
2. **Candidates resolve exactly on discovery.**  The moment any region
   emits a POI, the merger random-access *probes* every other region's
   completed aggregate map (a dict lookup, no decode) and folds the
   contributions in ascending region order — the same float-addition
   order as the exhaustive web-tier merge.  A candidate's global score
   is therefore final at entry; later emission can only *discover new*
   candidates, which is exactly what the frontier bounds cap.

Attribute decoding — the expensive full JSON parse per POI — is
deferred all the way to the end: emission ships bare ``(poi_id,
grade_sum, count)`` triples, and once the merge terminates the merger
ranks its candidates with the web tier's documented key and performs
TA's final random-access fetch for *exactly the k winners* (filtered
queries additionally decode per emitted item to evaluate the
spatial/textual predicate, and those parses are memoized).  An
unfiltered k=10 query therefore decodes ~10 payloads regardless of how
many thousand distinct POIs the friend set touched.

Bound math (proved in the property suite):

- ``hotness`` (score = global visit count): a region sorted by local
  count has frontier ``f_r`` = next unemitted count, so an undiscovered
  POI's global count is at most the sum of the frontiers of the regions
  that have not finished.  Regions are cancelled greedily while the
  running sum of cancelled frontiers stays strictly below the k-th
  candidate's score.
- ``interest`` (score = global mean grade): the global mean is a
  weighted average of per-region local means, hence bounded by their
  maximum.  A region sorted by local mean has frontier ``f_r`` = next
  unemitted local mean, so an undiscovered POI's global mean is at most
  the max frontier; any region whose frontier falls strictly below the
  threshold is individually prunable.

Strict inequality everywhere means a POI tying the k-th score is always
discovered, so ties are resolved by the ranker's documented stable key
``(-score, -visit_count, poi_id)`` identically in both paths.

Cancellation rides the existing :mod:`repro.hbase.cancellation`
plumbing: each stream carries its own :class:`CancellationToken` that
the merger trips with reason ``topk_proof``; the per-query deadline
token (when armed) is checkpointed during emission too, so a deadline
abort (degraded answer, region listed missing) is distinguishable in
traces from a proof abort (complete by proof, coverage untouched).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...errors import QueryCancelled
from ...hbase.cancellation import (
    CancellationToken,
    REASON_DEADLINE,
    REASON_TOPK_PROOF,
)
from ...hbase.coprocessor import StreamingPartial
from ..serialization import decode_json


class TopKPartialStream(StreamingPartial):
    """One region's score-sorted partial, emitted in bounded batches.

    Built by :class:`~repro.core.modules.query_answering.
    VisitScanCoprocessor` after its (always complete) aggregation scan.
    ``items`` is the region's per-POI ``(poi_id, grade_sum, count)``
    list sorted descending by the query's *local* sort key (count for
    hotness, local mean for interest) with ``poi_id`` as the stable
    tie-break; ``aggregates`` is the same data as a dict for O(1)
    random-access probes; ``raw`` maps each POI to one representative
    raw payload (attribute decoding is deferred to the merger's final
    fetch of the k winners, which is the entire saving); ``attrs`` is
    pre-seeded from scan-cache hits — a warm cache means even the
    winners cost no parse at all.
    """

    __slots__ = (
        "region_id",
        "top_k",
        "hotness",
        "batch",
        "items",
        "aggregates",
        "raw",
        "attrs",
        "bbox",
        "wanted",
        "span",
        "cells_scanned",
        "prune_token",
        "deadline_token",
        "cursor",
        "emitted",
        "skipped",
        "probe_hits",
        "cells_decoded",
        "finished",
        "pruned",
        "aborted",
        "_verdicts",
    )

    def __init__(
        self,
        region_id: int,
        items: List[Tuple[int, float, int]],
        aggregates: Dict[int, tuple],
        raw: Dict[int, bytes],
        attrs: Dict[int, tuple],
        top_k: int,
        hotness: bool,
        batch: int,
        bbox: Optional[Any] = None,
        wanted: Optional[set] = None,
        span: Optional[Any] = None,
        cells_scanned: int = 0,
        deadline_token: Optional[CancellationToken] = None,
    ) -> None:
        self.region_id = region_id
        self.top_k = top_k
        self.hotness = hotness
        self.batch = max(1, batch)
        self.items = items
        self.aggregates = aggregates
        self.raw = raw
        self.attrs = attrs
        self.bbox = bbox
        self.wanted = wanted or set()
        self.span = span
        self.cells_scanned = cells_scanned
        #: The merger's proof-abort switch: tripping it with reason
        #: ``topk_proof`` stops emission at the next checkpoint.  Using
        #: a real token (not a bare flag) keeps the short-circuit on the
        #: same cooperative-cancellation plumbing deadline aborts use.
        self.prune_token = CancellationToken()
        self.deadline_token = deadline_token
        self.cursor = 0
        self.emitted = 0
        #: Emission-order items examined but rejected by the query's
        #: spatial/textual filter (their decode is still charged).
        self.skipped = 0
        self.probe_hits = 0
        self.cells_decoded = 0
        self.finished = not items
        self.pruned = False
        self.aborted = False
        self._verdicts: Dict[int, bool] = {}

    # ------------------------------------------------------------ bounds

    def frontier(self) -> Optional[float]:
        """Local sort key of the next unemitted item — the monotone
        non-increasing upper bound on anything this region has not
        shipped yet.  None once the region is exhausted."""
        if self.cursor >= len(self.items):
            return None
        poi_id, grade_sum, count = self.items[self.cursor]
        return float(count) if self.hotness else grade_sum / count

    @property
    def remaining(self) -> int:
        return len(self.items) - self.cursor

    @property
    def shipped(self) -> int:
        """Items that actually crossed the (simulated) wire: emitted
        sorted-access entries plus random-access probe answers.  Drives
        the web tier's per-item merge cost in the timeline."""
        return self.emitted + self.probe_hits

    @property
    def cells_avoided(self) -> int:
        """Per-POI aggregates never examined — each one an attribute
        decode plus a shipped-and-merged partial the exhaustive path
        would have paid for."""
        return self.remaining

    # ---------------------------------------------------------- emission

    def _attrs_for(self, poi_id: int) -> tuple:
        attrs = self.attrs.get(poi_id)
        if attrs is None:
            payload = decode_json(self.raw[poi_id])
            self.cells_decoded += 1
            attrs = (
                payload.get("name", ""),
                payload.get("lat", 0.0),
                payload.get("lon", 0.0),
                tuple(payload.get("keywords", ())),
            )
            self.attrs[poi_id] = attrs
        return attrs

    def _passes_filter(self, poi_id: int) -> bool:
        verdict = self._verdicts.get(poi_id)
        if verdict is None:
            name, lat, lon, poi_keywords = self._attrs_for(poi_id)
            verdict = not (
                (
                    self.bbox is not None
                    and not self.bbox.contains_coords(lat, lon)
                )
                or (
                    self.wanted
                    and not (
                        self.wanted
                        & {str(k).lower() for k in poi_keywords}
                    )
                )
            )
            self._verdicts[poi_id] = verdict
        return verdict

    def next_batch(self) -> List[Tuple[int, float, int]]:
        """Emit up to ``batch`` filter-passing ``(poi_id, grade_sum,
        count)`` triples in sort-key order.  No attribute decode happens
        here for unfiltered queries — the merger fetches attributes for
        the final winners only; a spatial/textual filter forces a
        (memoized) decode per examined item to evaluate the predicate.
        Raises :class:`QueryCancelled` when the query's deadline token
        trips mid-emission; returns ``[]`` once exhausted or
        proof-pruned."""
        out: List[Tuple[int, float, int]] = []
        items = self.items
        filtered = self.bbox is not None or bool(self.wanted)
        while len(out) < self.batch and self.cursor < len(items):
            if self.prune_token.cancelled:
                # The merger proved the rest cannot enter the top k.
                return out
            if self.deadline_token is not None:
                # Emission work is charged at record cost on top of the
                # scan's spend, so a blown deadline stops decoding here.
                self.deadline_token.checkpoint(
                    self.cells_scanned + self.cursor
                )
            poi_id, grade_sum, count = items[self.cursor]
            self.cursor += 1
            if filtered and not self._passes_filter(poi_id):
                self.skipped += 1
                continue
            out.append((poi_id, grade_sum, count))
        self.emitted += len(out)
        if self.cursor >= len(items):
            self.finished = True
        return out

    def probe(self, poi_id: int) -> Optional[Tuple[float, int]]:
        """Random access: this region's exact ``(grade_sum, count)`` for
        one POI, independent of the emission cursor (phase A completed,
        so the aggregate map is total).  No attribute decode."""
        entry = self.aggregates.get(poi_id)
        if entry is None:
            return None
        self.probe_hits += 1
        return entry

    # -------------------------------------------------------- short-circuit

    def short_circuit(self, reason: str = REASON_TOPK_PROOF) -> None:
        """Merger-driven early termination of this region's emission.

        ``topk_proof`` means the region is *complete by proof*: every
        unemitted item is strictly below the global threshold, so the
        answer is exact without it — coverage is untouched and the
        region must never appear in ``missing_regions``.  A deadline
        reason instead marks the stream aborted (degraded semantics).
        """
        self.prune_token.cancel(reason)
        if reason == REASON_TOPK_PROOF:
            self.pruned = True
        else:
            self.aborted = True
        if self.span is not None:
            if reason == REASON_TOPK_PROOF:
                self.span.tag("pruned_early", True)
            else:
                self.span.tag("cancel_reason", reason)
            self.span.tag("topk_emitted", self.emitted)
            self.span.tag("topk_avoided", self.cells_avoided)


class TopKMerger:
    """Web-tier threshold-algorithm merge over region partial streams.

    ``merge`` drives sorted access (``next_batch``) in rounds and
    random-access probes on candidate discovery, maintains the running
    k-th-score threshold, and short-circuits streams whose frontier
    provably cannot matter.  Once emission terminates it ranks the
    candidate set with the web tier's documented key ``(-score,
    -visit_count, poi_id)``, keeps exactly the top k, and only then
    decodes attributes — TA's final random-access fetch — from each
    winner's discovering region.  Returns those k exact 6-tuples plus a
    stats dict for counters, spans and the EXPLAIN surface.  (Trimming
    here is sound because the downstream ranker orders with the same
    total key: the k survivors are precisely the rows it would keep.)
    """

    def __init__(
        self,
        k: int,
        hotness: bool,
        deadline_token: Optional[CancellationToken] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.hotness = hotness
        self.deadline_token = deadline_token

    # ------------------------------------------------------------- merge

    def merge(
        self, streams: List[TopKPartialStream]
    ) -> Tuple[List[tuple], Dict[str, Any]]:
        streams = sorted(streams, key=lambda s: s.region_id)
        #: poi_id -> [grade_sum, count]; exact at entry.
        candidates: Dict[int, list] = {}
        #: Exact global scores, maintained alongside ``candidates``.
        scores: Dict[int, float] = {}
        #: poi_id -> the stream that first emitted it; the final
        #: attribute fetch for a winner goes to this region (attribute
        #: rows are per-POI constants, so any region's copy is
        #: byte-identical to the one the exhaustive merge would keep).
        discoverers: Dict[int, TopKPartialStream] = {}
        rounds = 0
        probes = 0
        #: Sum of cancelled-stream frontiers (hotness); an undiscovered
        #: POI living only in cancelled streams is bounded by it.
        cancelled_bound = 0.0
        threshold: Optional[float] = None
        deadline_hit = False

        def resolve(poi_id: int) -> None:
            """Fold the POI's exact global aggregate in ascending region
            order — the same float-addition order as the exhaustive
            web-tier merge, so scores are byte-identical."""
            nonlocal probes
            entry = None
            for s in streams:
                contrib = s.probe(poi_id)
                probes += 1
                if contrib is None:
                    continue
                if entry is None:
                    entry = [contrib[0], contrib[1]]
                else:
                    entry[0] += contrib[0]
                    entry[1] += contrib[1]
            if entry is None:  # pragma: no cover - emitter always has it
                return
            candidates[poi_id] = entry
            scores[poi_id] = (
                float(entry[1]) if self.hotness else entry[0] / entry[1]
            )

        def kth_score() -> Optional[float]:
            if len(scores) < self.k:
                return None
            ranked = sorted(scores.values(), reverse=True)
            return ranked[self.k - 1]

        active = [s for s in streams if not s.finished]
        while active:
            rounds += 1
            for stream in active:
                try:
                    batch = stream.next_batch()
                except QueryCancelled:
                    deadline_hit = True
                    break
                for poi_id, _gs, _cnt in batch:
                    if poi_id not in candidates:
                        discoverers[poi_id] = stream
                        resolve(poi_id)
            if deadline_hit:
                break
            threshold = kth_score()
            if threshold is not None:
                # Short-circuit pass: strict inequality guarantees a
                # POI tying the k-th score is still discovered, so the
                # ranker's tie-break sees identical candidates.
                for stream in active:
                    if stream.finished or stream.pruned:
                        continue
                    frontier = stream.frontier()
                    if frontier is None:
                        continue
                    if self.hotness:
                        if cancelled_bound + frontier < threshold:
                            cancelled_bound += frontier
                            stream.short_circuit(REASON_TOPK_PROOF)
                    elif frontier < threshold:
                        stream.short_circuit(REASON_TOPK_PROOF)
            active = [
                s for s in active
                if not (s.finished or s.pruned)
            ]

        if deadline_hit:
            for stream in streams:
                if not (stream.finished or stream.pruned):
                    stream.short_circuit(REASON_DEADLINE)

        # Rank with the web tier's exact key, trim to k, and only then
        # pay the attribute decode — for precisely these winners.
        ranked = sorted(
            candidates.items(),
            key=lambda kv: (-scores[kv[0]], -kv[1][1], kv[0]),
        )
        merged = []
        for poi_id, entry in ranked[: self.k]:
            name, lat, lon, _kw = discoverers[poi_id]._attrs_for(poi_id)
            merged.append((poi_id, entry[0], entry[1], name, lat, lon))
        stats = {
            "rounds": rounds,
            "probes": probes,
            "candidates": len(candidates),
            "cells_avoided": sum(s.cells_avoided for s in streams),
            "cells_decoded": sum(s.cells_decoded for s in streams),
            "pruned_regions": sum(1 for s in streams if s.pruned),
            "aborted_regions": sorted(
                s.region_id for s in streams if s.aborted
            ),
            "threshold": threshold,
        }
        return merged, stats
