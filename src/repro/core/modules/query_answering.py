"""Query Answering Module — the paper's core query path (Section 2.2).

Non-personalized queries (no friend list) become SQL selects against the
POI repository.  Personalized queries fan out to HBase coprocessors:
each region-local endpoint scans the visits of the friends whose salted
keys it owns, filters by the user's criteria, aggregates per POI, sorts,
and returns its partial top list; the web-server tier merges partials
into the final answer — exactly the mechanism behind Figures 2 and 3.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import DegradedResultWarning, QueryError
from ...geo import BoundingBox
from ...hbase import Coprocessor, CoprocessorContext
from ..repositories.poi import POIRepository
from ..caching import HotPOICache, SingleFlight
from ..repositories.visits import (
    FAMILY,
    SCHEMA_NORMALIZED,
    VisitsRepository,
)
from ..serialization import decode_json
from ..tracing import NULL_TRACER, Tracer
from .topk import TopKMerger, TopKPartialStream

SORT_INTEREST = "interest"
SORT_HOTNESS = "hotness"


@dataclass
class SearchQuery:
    """A search request (paper Section 2.2's parameter list).

    ``friend_ids`` non-empty makes the query personalized.
    """

    bbox: Optional[BoundingBox] = None
    keywords: Tuple = ()
    friend_ids: Tuple = ()
    since: Optional[int] = None
    until: Optional[int] = None
    sort_by: str = SORT_INTEREST
    limit: int = 10
    #: Client-supplied end-to-end deadline (ms).  Propagated through the
    #: fan-out, where it tightens the config deadline and arms
    #: cooperative cancellation: region scans abort mid-scan once their
    #: simulated spend blows the budget (the answer then degrades to the
    #: surviving partials).  None — the default — changes nothing.
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sort_by not in (SORT_INTEREST, SORT_HOTNESS):
            raise QueryError(
                "sort_by must be %r or %r" % (SORT_INTEREST, SORT_HOTNESS)
            )
        if self.limit < 1:
            raise QueryError("limit must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise QueryError("deadline_ms must be positive")
        self.keywords = tuple(k.lower() for k in self.keywords)
        self.friend_ids = tuple(self.friend_ids)

    @property
    def personalized(self) -> bool:
        return bool(self.friend_ids)


@dataclass(frozen=True)
class ScoredPOI:
    """One result row."""

    poi_id: int
    name: str
    lat: float
    lon: float
    score: float
    visit_count: int


@dataclass
class SearchResult:
    """Result rows plus execution metadata for the benchmarks."""

    pois: List[ScoredPOI]
    personalized: bool
    #: Simulated end-to-end latency (coprocessor path only).
    latency_ms: float = 0.0
    records_scanned: int = 0
    regions_used: int = 0
    #: Regions never invoked because client-side routing proved they
    #: own none of the query's friends.
    regions_pruned: int = 0
    #: Visit payloads fully JSON-decoded region-side; lazy decoding keeps
    #: this far below ``records_scanned`` (one parse per POI per region).
    cells_decoded: int = 0
    #: True when one or more regions never answered (within the fan-out's
    #: retry/hedge budget) and the ranking ran on the surviving partials.
    degraded: bool = False
    #: Region ids whose visits are missing from ``pois``.
    missing_regions: Tuple = ()
    #: Fraction of invoked regions that contributed (1.0 when exact).
    coverage: float = 1.0
    #: Per-friend region scan cache hits/misses summed across the
    #: fan-out (both 0 when no cache is attached).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Trace id of the query's span tree (None when tracing is off);
    #: also rides along as the latency histogram's exemplar.
    trace_id: Optional[int] = None
    #: Fan-out recovery work spent answering this query.
    retries: int = 0
    hedges: int = 0
    #: Threshold-algorithm accounting (0 outside top-k mode): per-POI
    #: aggregates the merger proved irrelevant and never decoded,
    #: shipped or merged, and regions whose emission it short-circuited.
    #: A pruned-early region is complete *by proof* — it never appears
    #: in ``missing_regions`` and does not lower ``coverage``.
    cells_avoided: int = 0
    regions_pruned_early: int = 0


@dataclass(frozen=True)
class _VisitScanRequest:
    """What the coprocessor endpoint receives, per query.

    ``per_region_limit`` of 0 ships every per-POI aggregate the region
    produced (the default: per-POI aggregates are already tiny compared
    with raw visits, and shipping them all keeps global top-k *exact*
    under mean-based ranking).  A positive limit truncates the sorted
    partial list, trading exactness for transfer size.
    """

    friend_ids: Tuple
    bbox: Optional[Tuple]  # (min_lat, min_lon, max_lat, max_lon)
    keywords: Tuple
    since: Optional[int]
    until: Optional[int]
    per_region_limit: int = 0
    #: True when the client already routed ``friend_ids`` to this
    #: region, so the endpoint can skip per-friend ownership probing.
    routed: bool = False
    #: Non-zero engages threshold-algorithm streaming mode: the endpoint
    #: returns a :class:`~repro.core.modules.topk.TopKPartialStream`
    #: (score-sorted incremental emission with a monotone upper bound)
    #: instead of a finished partial list.  Mutually exclusive with
    #: ``per_region_limit`` — a truncated partial has no sound bound.
    top_k: int = 0
    #: Streaming mode's local sort key: visit count (True) or mean grade.
    hotness: bool = False
    #: Sorted-access batch size per merger round in streaming mode.
    topk_batch: int = 16


class VisitScanCoprocessor(Coprocessor):
    """Region-local personalized aggregation.

    Per the paper: "each coprocessor operates into a specific HBase
    region, eliminates the visits that do not satisfy the user defined
    criteria, aggregates multiple visits referring to the same POI and
    sorts the candidate POIs according to the aggregated scores."

    The endpoint aggregates straight from row keys and raw payload
    dicts — no :class:`VisitStruct` is built per cell.  Payload decoding
    is lazy: the POI id comes from fixed row-key offsets, and because the
    replicated POI attributes (name/lat/lon/keywords) are per-POI
    constants, a POI's full payload is parsed once per region — repeat
    visits extract just the grade positionally, and visits to a
    filter-rejected POI skip decoding entirely.  ``cells_decoded`` in
    the context counters (full payload parses) makes the saving
    observable.
    """

    name = "visit-scan"

    def run(self, context: CoprocessorContext, request: _VisitScanRequest):
        if request.top_k > 0 and request.per_region_limit == 0:
            return self._run_topk(context, request)
        bbox = (
            BoundingBox.from_tuple(request.bbox)
            if request.bbox is not None
            else None
        )
        wanted = set(request.keywords)
        filtered = bbox is not None or bool(wanted)
        cache = context.cache
        window = (request.since, request.until)
        # poi_id -> [grade_sum, count, name, lat, lon]
        aggregates: Dict[int, list] = {}
        #: Per-request filter memo: poi_id -> accepted?  (Cache entries
        #: are filter-independent, so the verdict is computed at fold
        #: time from the attribute memo.)
        verdicts: Dict[int, bool] = {}
        #: Per-run attribute memo: poi_id -> (name, lat, lon, keywords).
        #: One full payload parse per distinct POI per invocation —
        #: exactly the lazy-decoding contract of the single-pass loop
        #: this replaced; cache hits seed it without any parse.
        attrs: Dict[int, tuple] = {}
        cache_hits = 0
        cache_misses = 0
        cells_decoded = 0
        cells_scanned = 0
        time_range_keys = VisitsRepository.time_range_keys
        user_prefix = VisitsRepository.user_prefix
        decode_grade = VisitsRepository.decode_grade
        scan = context.scan_uncounted
        #: Cooperative-cancellation probe cadence; None on the default
        #: path keeps the per-cell loop token-free.
        token = context.cancellation
        check_every = token.check_every if token is not None else 0

        stage = context.trace("region.aggregate")
        for friend_id in request.friend_ids:
            if not request.routed:
                prefix = user_prefix(friend_id)
                if not context.contains_row(prefix + b"\x00"):
                    # Another region owns this friend's salted key range.
                    continue
            # ---- per-friend unfiltered aggregate: cache, else scan ----
            partial_items = None
            if cache is not None:
                cached = cache.lookup(
                    context.region_id, friend_id, window, context.data_seqid
                )
                if cached is not None:
                    cache_hits += 1
                    partial_items = cached.partial
                    for poi_id, poi_attrs in cached.attrs.items():
                        if poi_id not in attrs:
                            attrs[poi_id] = poi_attrs
                else:
                    cache_misses += 1
            if partial_items is None:
                # Stamp with the seqid *before* scanning: a write racing
                # with this scan bumps it, so the stored entry is stale
                # on arrival and no lookup will ever accept it.
                seqid = context.data_seqid if cache is not None else 0
                friend_cells = 0
                # poi_id -> [grade_sum, count], first-encounter order.
                partial: Dict[int, list] = {}
                start, stop = time_range_keys(
                    friend_id, request.since, request.until
                )
                for cell in scan(FAMILY, start, stop):
                    friend_cells += 1
                    if token is not None and not (
                        (cells_scanned + friend_cells) % check_every
                    ):
                        # Deadline-blown or abandoned queries stop here,
                        # mid-scan, instead of finishing work nobody can
                        # use.  Account the partial scan before raising
                        # so the cost model still charges it.
                        try:
                            token.checkpoint(cells_scanned + friend_cells)
                        except Exception:
                            context.add_scanned(cells_scanned + friend_cells)
                            context.count("cells_decoded", cells_decoded)
                            raise
                    # Cheap key-only decode: poi id at fixed row offsets.
                    poi_id = int.from_bytes(cell.row[21:29], "big")
                    entry = partial.get(poi_id)
                    if entry is not None:
                        # Known POI: only the grade is needed, and a
                        # positional slice beats a full JSON parse.
                        entry[0] += decode_grade(cell.value)
                        entry[1] += 1
                        continue
                    if poi_id in attrs:
                        grade = decode_grade(cell.value)
                    else:
                        payload = decode_json(cell.value)
                        cells_decoded += 1
                        grade = payload["grade"]
                        attrs[poi_id] = (
                            payload.get("name", ""),
                            payload.get("lat", 0.0),
                            payload.get("lon", 0.0),
                            tuple(payload.get("keywords", ())),
                        )
                    partial[poi_id] = [grade, 1]
                cells_scanned += friend_cells
                partial_items = tuple(
                    (poi_id, entry[0], entry[1])
                    for poi_id, entry in partial.items()
                )
                if cache is not None:
                    cache.store(
                        context.region_id,
                        friend_id,
                        window,
                        seqid,
                        partial_items,
                        {item[0]: attrs[item[0]] for item in partial_items},
                        cells=friend_cells,
                    )
            # ---- fold: apply this request's filters, then aggregate ----
            # Identical fold structure whether the partial came from the
            # cache or a fresh scan, so answers are bit-identical.
            for poi_id, grade_sum, count in partial_items:
                agg = aggregates.get(poi_id)
                if agg is not None:
                    agg[0] += grade_sum
                    agg[1] += count
                    continue
                name, lat, lon, poi_keywords = attrs[poi_id]
                if filtered:
                    decision = verdicts.get(poi_id)
                    if decision is None:
                        decision = not (
                            (
                                bbox is not None
                                and not bbox.contains_coords(lat, lon)
                            )
                            or (
                                wanted
                                and not (
                                    wanted
                                    & {
                                        str(k).lower()
                                        for k in poi_keywords
                                    }
                                )
                            )
                        )
                        verdicts[poi_id] = decision
                    if not decision:
                        continue
                aggregates[poi_id] = [grade_sum, count, name, lat, lon]

        stage.tag("cells_scanned", cells_scanned)
        stage.tag("cells_decoded", cells_decoded)
        stage.finish()

        context.add_scanned(cells_scanned)
        context.count("cells_decoded", cells_decoded)
        if cache is not None:
            # Marker span: per-region cache effectiveness, visible as a
            # ``cache.lookup`` child in the query's fan-out trace.
            context.trace(
                "cache.lookup",
                friends=len(request.friend_ids),
                hits=cache_hits,
                misses=cache_misses,
            ).finish()
            context.count("cache_hits", cache_hits)
            context.count("cache_misses", cache_misses)
        with context.trace("region.sort") as sort_stage:
            partial = [
                (poi_id, entry[0], entry[1], entry[2], entry[3], entry[4])
                for poi_id, entry in aggregates.items()
            ]
            # Region-local sort by aggregated grade; optionally truncate.
            partial.sort(key=lambda item: item[1], reverse=True)
            sort_stage.tag("partials", len(partial))
        if request.per_region_limit > 0:
            return partial[: request.per_region_limit]
        return partial

    def _run_topk(
        self, context: CoprocessorContext, request: _VisitScanRequest
    ) -> TopKPartialStream:
        """Streaming (threshold-algorithm) mode: aggregate *exactly* as
        the exhaustive path does, but defer everything downstream of the
        aggregation — attribute decoding, filtering, shipping — into a
        score-sorted :class:`TopKPartialStream` the merger drains in
        bounded batches and can cancel mid-emission.

        The scan itself always completes (aggregates must be exact for
        byte-identity), and it needs *zero* full payload parses: the POI
        id comes from row-key offsets and the grade from the positional
        ``decode_grade`` slice.  One representative raw payload per POI
        is kept so emitted items can decode attributes lazily; cache
        hits pre-seed the attribute memo, so warm streams emit decode-
        free.  Cache *misses are not stored back*: a scan-cache entry
        must carry parsed attributes for every POI in the partial, which
        is exactly the work this mode exists to avoid.
        """
        window = (request.since, request.until)
        cache = context.cache
        # poi_id -> [grade_sum, count]; identical per-friend float fold
        # (and thus bit-identical sums) as the exhaustive path.
        aggregates: Dict[int, list] = {}
        #: poi_id -> one raw payload, for lazy attribute decode.
        raw: Dict[int, bytes] = {}
        #: poi_id -> (name, lat, lon, keywords), cache-hit seeded.
        attrs: Dict[int, tuple] = {}
        cache_hits = 0
        cache_misses = 0
        cells_scanned = 0
        time_range_keys = VisitsRepository.time_range_keys
        user_prefix = VisitsRepository.user_prefix
        decode_grade = VisitsRepository.decode_grade
        scan = context.scan_uncounted
        token = context.cancellation
        check_every = token.check_every if token is not None else 0

        stage = context.trace("region.aggregate", topk=request.top_k)
        for friend_id in request.friend_ids:
            if not request.routed:
                prefix = user_prefix(friend_id)
                if not context.contains_row(prefix + b"\x00"):
                    continue
            partial_items = None
            if cache is not None:
                cached = cache.lookup(
                    context.region_id, friend_id, window, context.data_seqid
                )
                if cached is not None:
                    cache_hits += 1
                    partial_items = cached.partial
                    for poi_id, poi_attrs in cached.attrs.items():
                        if poi_id not in attrs:
                            attrs[poi_id] = poi_attrs
                else:
                    cache_misses += 1
            if partial_items is None:
                friend_cells = 0
                partial: Dict[int, list] = {}
                start, stop = time_range_keys(
                    friend_id, request.since, request.until
                )
                for cell in scan(FAMILY, start, stop):
                    friend_cells += 1
                    if token is not None and not (
                        (cells_scanned + friend_cells) % check_every
                    ):
                        try:
                            token.checkpoint(cells_scanned + friend_cells)
                        except Exception:
                            context.add_scanned(cells_scanned + friend_cells)
                            raise
                    poi_id = int.from_bytes(cell.row[21:29], "big")
                    entry = partial.get(poi_id)
                    if entry is not None:
                        entry[0] += decode_grade(cell.value)
                        entry[1] += 1
                        continue
                    if poi_id not in attrs and poi_id not in raw:
                        raw[poi_id] = cell.value
                    partial[poi_id] = [decode_grade(cell.value), 1]
                cells_scanned += friend_cells
                partial_items = tuple(
                    (poi_id, entry[0], entry[1])
                    for poi_id, entry in partial.items()
                )
            # Unfiltered fold — filtering moves to emission time, where
            # attributes are decoded lazily.  Per-POI addition order is
            # friend order either way, so sums are bit-identical.
            for poi_id, grade_sum, count in partial_items:
                agg = aggregates.get(poi_id)
                if agg is None:
                    aggregates[poi_id] = [grade_sum, count]
                else:
                    agg[0] += grade_sum
                    agg[1] += count

        stage.tag("cells_scanned", cells_scanned)
        stage.tag("pois", len(aggregates))
        stage.finish()
        context.add_scanned(cells_scanned)
        if cache is not None:
            context.trace(
                "cache.lookup",
                friends=len(request.friend_ids),
                hits=cache_hits,
                misses=cache_misses,
            ).finish()
            context.count("cache_hits", cache_hits)
            context.count("cache_misses", cache_misses)

        hotness = request.hotness
        with context.trace("region.sort") as sort_stage:
            agg_tuples = {
                poi_id: (entry[0], entry[1])
                for poi_id, entry in aggregates.items()
            }
            if hotness:
                items = sorted(
                    (
                        (poi_id, gs, cnt)
                        for poi_id, (gs, cnt) in agg_tuples.items()
                    ),
                    key=lambda item: (-item[2], item[0]),
                )
            else:
                items = sorted(
                    (
                        (poi_id, gs, cnt)
                        for poi_id, (gs, cnt) in agg_tuples.items()
                    ),
                    key=lambda item: (-(item[1] / item[2]), item[0]),
                )
            sort_stage.tag("partials", len(items))
        return TopKPartialStream(
            region_id=context.region_id,
            items=items,
            aggregates=agg_tuples,
            raw=raw,
            attrs=attrs,
            top_k=request.top_k,
            hotness=hotness,
            batch=request.topk_batch,
            bbox=(
                BoundingBox.from_tuple(request.bbox)
                if request.bbox is not None
                else None
            ),
            wanted=set(request.keywords),
            span=context.span,
            cells_scanned=cells_scanned,
            deadline_token=token,
        )

    # merge() default (list concatenation) is right: the web-server tier
    # does the cross-region aggregation in QueryAnsweringModule.

    def stream_merge(self, streams, deadline_token=None):
        """Threshold-algorithm merge of per-region streams; returns the
        ``(merged_six_tuples, stats)`` pair the fan-out engine folds into
        the call result.  Every candidate POI appears exactly once with
        its *global* aggregate, so the web tier's ``_merge_partials``
        fold is a plain insert pass."""
        first = streams[0]
        merger = TopKMerger(
            k=first.top_k,
            hotness=first.hotness,
            deadline_token=deadline_token,
        )
        return merger.merge(streams)

    def validate_partial(self, partial) -> bool:
        """Region partials are lists of 6-tuples
        ``(poi_id, grade_sum, count, name, lat, lon)`` — or, in
        streaming mode, an unstarted :class:`TopKPartialStream`; anything
        else — including the injector's corruption marker — is rejected
        and the invocation goes through retry/hedge like a raised
        error."""
        if not super().validate_partial(partial):
            return False
        if isinstance(partial, TopKPartialStream):
            return isinstance(partial.items, list) and all(
                isinstance(item, tuple) and len(item) == 3
                for item in partial.items
            )
        return isinstance(partial, list) and all(
            isinstance(item, tuple) and len(item) == 6 for item in partial
        )


class QueryAnsweringModule:
    """Routes queries to the SQL path or the coprocessor path.

    ``tracer`` (see :mod:`repro.core.tracing`) makes every personalized
    query emit a span tree — ``query.personalized`` → ``route`` →
    ``fanout`` (with per-region ``region.scan`` children) → ``merge`` →
    ``rank`` — retrievable through the tracer's ring buffer and the
    ``admin_traces`` endpoint.  The default is the shared disabled
    tracer: spans only observe, so results are identical either way.
    """

    def __init__(
        self,
        poi_repository: POIRepository,
        visits_repository: VisitsRepository,
        tracer: Optional[Tracer] = None,
        metrics: Optional[object] = None,
        hot_poi_cache: Optional[HotPOICache] = None,
        coalesce: bool = False,
        event_log: Optional[object] = None,
        admission: Optional[object] = None,
        topk_config: Optional[object] = None,
    ) -> None:
        self.pois = poi_repository
        self.visits = visits_repository
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        #: Optional wide-event log: one canonical event per personalized
        #: query, carrying the full cost account and the trace id.
        self.event_log = event_log
        #: Optional epoch-stamped cache over non-personalized answers
        #: (invalidated by HotIn refreshes and POI writes).
        self.hot_poi_cache = hot_poi_cache
        #: Single-flight table deduplicating identical concurrent
        #: personalized queries; None when coalescing is off.  The
        #: platform enables it from ``config.cache.coalesce``; direct
        #: constructions default to off so single-threaded callers pay
        #: nothing.
        self.single_flight: Optional[SingleFlight] = (
            SingleFlight() if coalesce else None
        )
        #: Optional admission controller (``repro.core.admission``).
        #: Consulted for brownout query shaping (stale cache serves,
        #: shrunk per-region partials, capped k); None — the default —
        #: keeps every query exactly as shaped by its caller.
        self.admission = admission
        #: Optional :class:`~repro.config.TopKConfig`.  When enabled,
        #: personalized queries run the threshold-algorithm streaming
        #: path (:mod:`repro.core.modules.topk`); otherwise — the
        #: default — the exhaustive path runs byte-identically to a
        #: build without the module.
        self.topk = topk_config
        self._coprocessor = VisitScanCoprocessor()

    # -------------------------------------------------------- public API

    def search(self, query: SearchQuery) -> SearchResult:
        """Answer one query.

        With coalescing enabled, identical personalized queries that
        arrive while one is in flight share that flight's fan-out and
        result instead of re-executing it (``queries.coalesced`` counts
        the shared calls)."""
        if query.personalized:
            if self.single_flight is not None:
                result, coalesced = self.single_flight.do(
                    self._coalesce_key(query),
                    lambda: self.search_personalized_batch([query])[0],
                )
                if coalesced and self.metrics is not None:
                    self.metrics.increment("queries.coalesced")
                return result
            return self.search_personalized_batch([query])[0]
        with self.tracer.span(
            "query.non_personalized", keywords=len(query.keywords)
        ):
            return self._search_sql(query)

    @staticmethod
    def _coalesce_key(query: SearchQuery) -> Tuple:
        """Full query identity — every field that can change the answer."""
        return (
            query.bbox.as_tuple() if query.bbox else None,
            query.keywords,
            query.friend_ids,
            query.since,
            query.until,
            query.sort_by,
            query.limit,
            query.deadline_ms,
        )

    def search_personalized_batch(
        self, queries: Sequence[SearchQuery]
    ) -> List[SearchResult]:
        """Answer several personalized queries *concurrently*.

        All queries' coprocessor tasks share the simulated cluster, so
        their latencies include contention — Figure 3's setup.

        Route-then-stream: each query's friend list is partitioned per
        region client-side, every region receives only its own friends,
        and regions owning no friends are never invoked.
        """
        tracer = self.tracer
        #: Brownout query shaping (None outside a brownout): shrink each
        #: region's shipped partial and cap k, trading exactness for
        #: survival — results are flagged ``degraded``.
        shape = (
            self.admission.query_shape()
            if self.admission is not None
            else None
        )
        per_region_limit = shape["per_region_limit"] if shape else 0
        routed_requests = []
        route_items = []
        roots = []
        fanouts = []
        for query in queries:
            if not query.personalized:
                raise QueryError("batch path requires personalized queries")
            root = tracer.span(
                "query.personalized",
                friends=len(query.friend_ids),
                sort_by=query.sort_by,
                limit=query.limit,
            )
            with tracer.span("route", parent=root) as route_span:
                routed = self._route_query(
                    query, per_region_limit=per_region_limit
                )
                route_span.tag("regions_used", len(routed))
            routed_requests.append(routed)
            route_items.append(len(query.friend_ids))
            roots.append(root)
            # The fan-out span stays open across the shared executor
            # pass below; the HBase client parents every region.scan
            # span under it and adds straggler attribution.
            fanouts.append(tracer.span("fanout", parent=root))
        deadlines = [query.deadline_ms for query in queries]
        calls = self.visits.cluster.coprocessor_exec_routed(
            self.visits.table.name,
            self._coprocessor,
            routed_requests,
            route_items=route_items,
            tracer=tracer,
            trace_parents=fanouts,
            deadlines=(
                deadlines if any(d is not None for d in deadlines) else None
            ),
        )
        results = []
        for query, call, root, fanout in zip(queries, calls, roots, fanouts):
            fanout.finish()
            with tracer.span("merge", parent=root) as merge_span:
                merged = self._merge_partials(query, call)
                merge_span.tag("partials", len(call.result))
                merge_span.tag("pois", len(merged))
            with tracer.span("rank", parent=root) as rank_span:
                result = self._rank(
                    query, merged, call,
                    max_k=shape["max_k"] if shape else None,
                )
                rank_span.tag("returned", len(result.pois))
            if shape is not None:
                # Browned-out answers are honest about being shaped:
                # same flag partial-coverage answers carry.
                result.degraded = True
                if self.metrics is not None:
                    self.metrics.increment("admission.browned_out")
            root.tag("latency_ms", call.latency_ms)
            root.tag("records_scanned", call.records_scanned)
            root.tag("regions_used", len(call.per_region_records))
            root.tag("regions_pruned", call.regions_pruned)
            if call.degraded:
                root.tag("degraded", True)
                root.tag("missing_regions", list(call.missing_regions))
                root.tag("coverage", call.coverage)
                warnings.warn(
                    DegradedResultWarning(
                        "personalized query answered from partial results:"
                        " %d region(s) missing, coverage %.2f"
                        % (len(call.missing_regions), call.coverage)
                    ),
                    stacklevel=2,
                )
            root.finish()
            result.trace_id = root.trace_id
            result.retries = call.retries
            result.hedges = call.hedges
            self._emit_query_event(query, result)
            results.append(result)
        return results

    def _emit_query_event(self, query: SearchQuery, result: SearchResult) -> None:
        """One wide event per personalized query — the canonical log line
        carrying the full cost account, tail-sampled by the event log."""
        log = self.event_log
        if log is None:
            return
        slow_threshold = getattr(self.tracer, "slow_threshold_ms", None)
        slow = (
            slow_threshold is not None
            and result.latency_ms >= slow_threshold
        )
        log.emit(
            {
                "type": "query.personalized",
                "trace_id": result.trace_id,
                "latency_ms": result.latency_ms,
                "slow": slow,
                "degraded": result.degraded,
                "friends": len(query.friend_ids),
                "sort_by": query.sort_by,
                "limit": query.limit,
                "returned": len(result.pois),
                "records_scanned": result.records_scanned,
                "cells_decoded": result.cells_decoded,
                "regions_used": result.regions_used,
                "regions_pruned": result.regions_pruned,
                "missing_regions": list(result.missing_regions),
                "coverage": result.coverage,
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "retries": result.retries,
                "hedges": result.hedges,
                "cells_avoided": result.cells_avoided,
                "regions_pruned_early": result.regions_pruned_early,
            }
        )

    def _route_query(
        self, query: SearchQuery, per_region_limit: int = 0
    ) -> Dict:
        """Per-region scan requests for one personalized query: every
        region gets exactly the friends whose salted key ranges it owns."""
        routed = self.visits.route_friends(
            query.friend_ids, query.since, query.until
        )
        bbox = query.bbox.as_tuple() if query.bbox else None
        # Threshold-algorithm streaming engages only on the exact path:
        # a brownout's truncated partials have no sound bound, so a
        # positive per_region_limit falls back to exhaustive shipping.
        topk = self.topk
        top_k = 0
        topk_batch = 16
        if (
            topk is not None
            and getattr(topk, "enabled", False)
            and per_region_limit == 0
        ):
            top_k = query.limit
            topk_batch = getattr(topk, "batch_size", 16)
        return {
            region: _VisitScanRequest(
                friend_ids=tuple(friends),
                bbox=bbox,
                keywords=query.keywords,
                since=query.since,
                until=query.until,
                per_region_limit=per_region_limit,
                routed=True,
                top_k=top_k,
                hotness=query.sort_by == SORT_HOTNESS,
                topk_batch=topk_batch,
            )
            for region, friends in routed.items()
        }

    def explain_personalized(self, query: SearchQuery) -> Dict:
        """EXPLAIN for the coprocessor path: per-region work breakdown.

        Executes the query through the routed fan-out and returns, per
        invoked region, the records scanned, partial results shipped and
        the node serving it, plus the simulated end-to-end latency and
        the routing/decoding counters (``regions_pruned``,
        ``cells_merged``, ``cells_decoded``) — the profile an operator
        needs to spot hot regions, bad salt distribution, or a filter
        that decodes more payloads than it keeps.
        """
        if not query.personalized:
            raise QueryError("explain_personalized needs a personalized query")
        cluster = self.visits.cluster
        call = cluster.coprocessor_exec_routed(
            self.visits.table.name,
            self._coprocessor,
            [self._route_query(query)],
            route_items=[len(query.friend_ids)],
        )[0]
        placement = cluster.simulation.region_placement
        regions = [
            {
                "region_id": region_id,
                "node": placement.get(region_id),
                "records_scanned": records,
                "results_returned": call.per_region_results.get(region_id, 0),
            }
            for region_id, records in sorted(call.per_region_records.items())
        ]
        records = [r["records_scanned"] for r in regions]
        return {
            "friends": len(query.friend_ids),
            "regions": regions,
            "regions_pruned": call.regions_pruned,
            "latency_ms": call.latency_ms,
            "records_total": sum(records),
            "records_max_region": max(records) if records else 0,
            "cells_merged": sum(records),
            "cells_decoded": call.counters.get("cells_decoded", 0),
            "skew": (
                max(records) / (sum(records) / len(records))
                if records and sum(records) else 0.0
            ),
            "degraded": call.degraded,
            "missing_regions": list(call.missing_regions),
            "coverage": call.coverage,
            "retries": call.retries,
            "hedges": call.hedges,
            "topk": {
                "enabled": call.counters.get("topk.rounds", 0) > 0,
                "rounds": call.counters.get("topk.rounds", 0),
                "probes": call.counters.get("topk.probes", 0),
                "candidates": call.counters.get("topk.candidates", 0),
                "cells_avoided": call.counters.get("topk.cells_avoided", 0),
                "pruned_regions": call.counters.get(
                    "topk.pruned_regions", 0
                ),
            },
        }

    # ---------------------------------------------------------- internals

    def merge_and_rank(self, query: SearchQuery, call) -> SearchResult:
        """Web-tier merge + rank in one step: the path for ablations and
        tests that drive the coprocessor fan-out directly (untraced)."""
        return self._rank(query, self._merge_partials(query, call), call)

    def _merge_partials(self, query: SearchQuery, call) -> Dict[int, list]:
        """Web-tier merge: fold per-region partial aggregates per POI."""
        merged: Dict[int, list] = {}
        for poi_id, grade_sum, count, name, lat, lon in call.result:
            entry = merged.get(poi_id)
            if entry is None:
                merged[poi_id] = [grade_sum, count, name, lat, lon]
            else:
                entry[0] += grade_sum
                entry[1] += count
        return merged

    def _rank(
        self,
        query: SearchQuery,
        merged: Dict[int, list],
        call,
        max_k: Optional[int] = None,
    ) -> SearchResult:
        """Web-tier rank: score merged aggregates and keep the top-k.

        ``max_k`` is the brownout cap on result size: under overload the
        admission controller shrinks k so the response ships less state,
        and the result is flagged degraded by the caller."""
        limit = query.limit if max_k is None else min(query.limit, max_k)
        scored = []
        for poi_id, (grade_sum, count, name, lat, lon) in merged.items():
            if query.sort_by == SORT_INTEREST:
                score = grade_sum / count  # mean friend opinion
            else:
                score = float(count)  # crowd concentration
            scored.append(
                ScoredPOI(
                    poi_id=poi_id,
                    name=name,
                    lat=lat,
                    lon=lon,
                    score=score,
                    visit_count=count,
                )
            )
        scored.sort(key=lambda p: (-p.score, -p.visit_count, p.poi_id))
        return SearchResult(
            pois=scored[:limit],
            personalized=True,
            latency_ms=call.latency_ms,
            records_scanned=call.records_scanned,
            regions_used=len(call.per_region_records),
            regions_pruned=call.regions_pruned,
            cells_decoded=call.counters.get("cells_decoded", 0),
            degraded=call.degraded,
            missing_regions=tuple(call.missing_regions),
            coverage=call.coverage,
            cache_hits=call.counters.get("cache_hits", 0),
            cache_misses=call.counters.get("cache_misses", 0),
            cells_avoided=call.counters.get("topk.cells_avoided", 0),
            regions_pruned_early=call.counters.get(
                "topk.pruned_regions", 0
            ),
        )

    def _search_sql(self, query: SearchQuery) -> SearchResult:
        cache = self.hot_poi_cache
        if cache is not None:
            key = (
                query.bbox.as_tuple() if query.bbox else None,
                query.keywords,
                query.sort_by,
                query.limit,
            )
            # Brownout level 1: serve whatever the cache holds, even an
            # epoch- or version-stale entry, and flag the result
            # degraded.  Freshness is the first thing traded away under
            # overload — a slightly old hot-POI list beats a rejection.
            if self.admission is not None and self.admission.stale_ok():
                stale = cache.get_stale(key)
                if stale is not None:
                    if self.metrics is not None:
                        self.metrics.increment("admission.stale_served")
                    return SearchResult(
                        pois=list(stale), personalized=False, degraded=True
                    )
            # Read the stamp *before* running the select: a write
            # landing in between makes the stored stamp stale, never
            # the other way around.
            version = self.pois.version
            rows = cache.get(key, version)
            if rows is None:
                rows = tuple(self._sql_rows(query))
                cache.store(key, version, rows)
            # Fresh result object per call; the row tuples are shared
            # but immutable (ScoredPOI is frozen).
            return SearchResult(pois=list(rows), personalized=False)
        return SearchResult(pois=self._sql_rows(query), personalized=False)

    def _sql_rows(self, query: SearchQuery) -> List[ScoredPOI]:
        pois = self.pois.search(
            bbox=query.bbox,
            keywords=query.keywords or None,
            sort_by=query.sort_by,
            limit=query.limit,
        )
        return [
            ScoredPOI(
                poi_id=p.poi_id,
                name=p.name,
                lat=p.lat,
                lon=p.lon,
                score=p.interest if query.sort_by == SORT_INTEREST else p.hotness,
                visit_count=0,
            )
            for p in pois
        ]

    # ------------------------------------------------- ablation baseline

    def search_personalized_client_side(self, query: SearchQuery) -> SearchResult:
        """The no-coprocessor baseline: the web server pulls every
        friend's visits over the (simulated) wire and aggregates locally.

        Scans the same data but all records cross the network and the
        aggregation runs on one machine — the strategy the coprocessor
        design replaces.  Used by ``bench_ablation_coprocessors``.
        """
        if not query.personalized:
            raise QueryError("client-side path requires a personalized query")
        merged: Dict[int, list] = {}
        records = 0
        normalized = self.visits.schema_mode == SCHEMA_NORMALIZED
        for friend_id in query.friend_ids:
            for visit in self.visits.visits_of_user(
                friend_id, query.since, query.until
            ):
                records += 1
                if normalized:
                    poi = self.pois.get(visit.poi_id)
                    if poi is None:
                        continue
                    lat, lon, name = poi.lat, poi.lon, poi.name
                    keywords = poi.keywords
                else:
                    lat, lon, name = visit.lat, visit.lon, visit.poi_name
                    keywords = visit.keywords
                if query.bbox is not None and not query.bbox.contains_coords(
                    lat, lon
                ):
                    continue
                if query.keywords and not (
                    set(query.keywords) & {k.lower() for k in keywords}
                ):
                    continue
                entry = merged.get(visit.poi_id)
                if entry is None:
                    merged[visit.poi_id] = [visit.grade, 1, name, lat, lon]
                else:
                    entry[0] += visit.grade
                    entry[1] += 1

        cm = self.visits.cluster.simulation.cost_model
        # Single-core aggregation + every record over the wire.
        latency_s = (
            cm.rpc_latency_s * 2
            + records * cm.cost_per_record_s
            + records * cm.merge_cost_per_item_s * 4
        )
        scored = []
        for poi_id, (grade_sum, count, name, lat, lon) in merged.items():
            score = (
                grade_sum / count
                if query.sort_by == SORT_INTEREST
                else float(count)
            )
            scored.append(
                ScoredPOI(
                    poi_id=poi_id,
                    name=name,
                    lat=lat,
                    lon=lon,
                    score=score,
                    visit_count=count,
                )
            )
        scored.sort(key=lambda p: (-p.score, -p.visit_count, p.poi_id))
        return SearchResult(
            pois=scored[: query.limit],
            personalized=True,
            latency_ms=latency_s * 1e3,
            records_scanned=records,
            regions_used=0,
        )
