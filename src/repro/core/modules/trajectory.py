"""Semantic trajectory inference (paper Sections 1–2).

"Inference of the user's semantic trajectory through the combination of
her GPS traces with background information such as maps, check-ins,
user comments" — a semantic trajectory being "a timestamped sequence of
POIs summarizing user's activity during the day."

The classic pipeline: stay-point detection over the raw trace (Li et
al., 2008), then matching each stay to the nearest known POI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...config import JobsConfig
from ...datagen.gps import GPSPoint
from ...errors import ValidationError
from ...geo import GeoPoint
from ..repositories.gps_traces import GPSTracesRepository
from ..repositories.poi import POI, POIRepository
from ..repositories.text_repo import TextRepository


@dataclass(frozen=True)
class StayPoint:
    """A dwell: the user lingered within ``radius_m`` for ``>= min_stay``."""

    lat: float
    lon: float
    arrival: int
    departure: int

    @property
    def duration_s(self) -> int:
        return self.departure - self.arrival

    @property
    def location(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


@dataclass(frozen=True)
class SemanticStop:
    """A stay matched to a POI (or left anonymous)."""

    stay: StayPoint
    poi: Optional[POI]
    comment: str = ""


@dataclass
class SemanticTrajectory:
    """The day's timestamped POI sequence."""

    user_id: int
    stops: List[SemanticStop]

    def poi_names(self) -> List[str]:
        return [s.poi.name if s.poi else "Unknown place" for s in self.stops]


def detect_stay_points(
    points: Sequence[GPSPoint],
    radius_m: float = 80.0,
    min_stay_s: int = 900,
) -> List[StayPoint]:
    """Stay-point detection: grow a window while all points remain within
    ``radius_m`` of the anchor; emit when the dwell lasted ``min_stay_s``."""
    if radius_m <= 0:
        raise ValidationError("radius_m must be positive")
    if min_stay_s <= 0:
        raise ValidationError("min_stay_s must be positive")
    pts = sorted(points, key=lambda p: p.timestamp)
    stays: List[StayPoint] = []
    i = 0
    n = len(pts)
    while i < n:
        anchor = GeoPoint(pts[i].lat, pts[i].lon)
        j = i + 1
        while j < n:
            if anchor.distance_m(GeoPoint(pts[j].lat, pts[j].lon)) > radius_m:
                break
            j += 1
        duration = pts[j - 1].timestamp - pts[i].timestamp
        if duration >= min_stay_s:
            cluster = pts[i:j]
            stays.append(
                StayPoint(
                    lat=sum(p.lat for p in cluster) / len(cluster),
                    lon=sum(p.lon for p in cluster) / len(cluster),
                    arrival=cluster[0].timestamp,
                    departure=cluster[-1].timestamp,
                )
            )
            i = j
        else:
            i += 1
    return stays


class TrajectoryModule:
    """Builds semantic trajectories from stored traces + POIs + comments."""

    def __init__(
        self,
        gps_repository: GPSTracesRepository,
        poi_repository: POIRepository,
        text_repository: TextRepository,
        config: Optional[JobsConfig] = None,
        stay_radius_m: float = 80.0,
        min_stay_s: int = 900,
        poi_match_radius_m: float = 120.0,
    ) -> None:
        self.gps = gps_repository
        self.pois = poi_repository
        self.texts = text_repository
        self.config = config or JobsConfig()
        self.stay_radius_m = stay_radius_m
        self.min_stay_s = min_stay_s
        self.poi_match_radius_m = poi_match_radius_m

    def infer(
        self, user_id: int, since: int, until: int
    ) -> SemanticTrajectory:
        """The user's semantic trajectory over ``[since, until)``."""
        trace = self.gps.user_trace(user_id, since, until)
        stays = detect_stay_points(
            trace, radius_m=self.stay_radius_m, min_stay_s=self.min_stay_s
        )
        stops: List[SemanticStop] = []
        for stay in stays:
            poi = self.pois.nearest_within(
                stay.location, self.poi_match_radius_m
            )
            comment = ""
            if poi is not None:
                # Enrich with the user's own comment during the stay.
                comments = self.texts.comments(
                    user_id, poi.poi_id, stay.arrival, stay.departure + 1
                )
                if comments:
                    comment = comments[0].text
            stops.append(SemanticStop(stay=stay, poi=poi, comment=comment))
        return SemanticTrajectory(user_id=user_id, stops=stops)
