"""Text Processing Module (paper Section 2.2).

"Performs sentiment analysis to all textual information the platform
collects through the Data Collection Module.  Comments from check-ins
and POI reviews are classified, real-time and in-memory, as positive or
negative.  The score which results from the sentiment analysis is
persisted to the datastore along with the text itself."
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ...config import SentimentConfig
from ...errors import NotTrainedError
from ...text import SentimentPipeline, TrainingReport
from ..repositories.text_repo import CommentRecord, TextRepository


class TextProcessingModule:
    """Classifies comments and persists (text, score) pairs."""

    def __init__(
        self,
        text_repository: TextRepository,
        config: Optional[SentimentConfig] = None,
    ) -> None:
        self.texts = text_repository
        self.pipeline = SentimentPipeline(config or SentimentConfig.optimized())

    def train(
        self, labeled_documents: Sequence[Tuple[str, int]]
    ) -> TrainingReport:
        """Train the classifier on a Tripadvisor-style corpus."""
        return self.pipeline.train(labeled_documents)

    @property
    def is_trained(self) -> bool:
        return self.pipeline.classifier.is_trained

    def score(self, text: str) -> float:
        """P(positive) for one comment — the visit grade's source."""
        return self.pipeline.score(text)

    def process_comment(
        self, user_id: int, poi_id: int, timestamp: int, text: str
    ) -> CommentRecord:
        """Classify and persist one comment; returns what was stored.

        Empty comments get a neutral 0.5 — a check-in without text
        carries no opinion either way.
        """
        if not self.is_trained:
            raise NotTrainedError(
                "Text Processing Module used before classifier training"
            )
        sentiment = self.score(text) if text.strip() else 0.5
        record = CommentRecord(
            user_id=user_id,
            poi_id=poi_id,
            timestamp=timestamp,
            text=text,
            sentiment=sentiment,
        )
        self.texts.store(record)
        return record
