"""Processing modules (paper Section 2.2)."""

from .user_management import UserManagementModule, PlatformUser
from .data_collection import DataCollectionModule
from .text_processing import TextProcessingModule
from .event_detection import EventDetectionModule
from .hotin_update import HotInUpdateModule
from .query_answering import (
    QueryAnsweringModule,
    SearchQuery,
    SearchResult,
    ScoredPOI,
)
from .trending import TrendingModule, TrendingQuery
from .trajectory import TrajectoryModule, StayPoint, SemanticTrajectory
from .blog import BlogModule

__all__ = [
    "UserManagementModule",
    "PlatformUser",
    "DataCollectionModule",
    "TextProcessingModule",
    "EventDetectionModule",
    "HotInUpdateModule",
    "QueryAnsweringModule",
    "SearchQuery",
    "SearchResult",
    "ScoredPOI",
    "TrendingModule",
    "TrendingQuery",
    "TrajectoryModule",
    "StayPoint",
    "SemanticTrajectory",
    "BlogModule",
]
