"""User Management Module (paper Section 2.2).

"MoDisSENSE does not require a username or password.  The signing-in
process is carried out only with the use of the social network
credentials.  The registration workflow follows the OAuth protocol ...
Being an authorized member of the platform, the user can connect to the
MoDisSENSE account more social networks."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import AuthenticationError, PluginError, ValidationError
from ...social import AccessToken, SocialNetworkPlugin


@dataclass
class PlatformUser:
    """A registered MoDisSENSE account.

    ``tokens`` maps network name -> the live access token; a network is
    "linked" while a token for it is held.
    """

    user_id: int
    display_name: str
    tokens: Dict[str, AccessToken] = field(default_factory=dict)

    @property
    def linked_networks(self) -> List[str]:
        return sorted(self.tokens)

    def network_id(self, network: str) -> str:
        try:
            return self.tokens[network].network_user_id
        except KeyError:
            raise PluginError(
                "user %d has not linked %r" % (self.user_id, network)
            ) from None


class UserManagementModule:
    """Registration, login and network linking via OAuth."""

    def __init__(self, plugins: Dict[str, SocialNetworkPlugin]) -> None:
        self._plugins = plugins
        self._users: Dict[int, PlatformUser] = {}
        self._by_network_id: Dict[tuple, int] = {}
        self._next_id = 1

    def _plugin(self, network: str) -> SocialNetworkPlugin:
        try:
            return self._plugins[network]
        except KeyError:
            raise PluginError("no plugin registered for %r" % network) from None

    # ---------------------------------------------------------- register

    def register(
        self, network: str, network_user_id: str, password: str, now: float
    ) -> PlatformUser:
        """Sign up (or back in) with social credentials.

        If the (network, id) pair is already bound to an account, this
        is a login: the token is refreshed on the existing user.
        """
        plugin = self._plugin(network)
        oauth = getattr(plugin, "oauth", None)
        if oauth is None:
            raise PluginError("plugin %r has no OAuth provider" % network)
        token = oauth.authorize(network_user_id, password, now)

        key = (network, network_user_id)
        existing_id = self._by_network_id.get(key)
        if existing_id is not None:
            user = self._users[existing_id]
            user.tokens[network] = token
            return user

        profile = plugin.get_profile(token)
        user = PlatformUser(
            user_id=self._next_id,
            display_name=profile.name,
            tokens={network: token},
        )
        self._next_id += 1
        self._users[user.user_id] = user
        self._by_network_id[key] = user.user_id
        return user

    def link_network(
        self,
        user_id: int,
        network: str,
        network_user_id: str,
        password: str,
        now: float,
    ) -> PlatformUser:
        """Connect an additional social network to an existing account."""
        user = self.get(user_id)
        key = (network, network_user_id)
        bound = self._by_network_id.get(key)
        if bound is not None and bound != user_id:
            raise AuthenticationError(
                "%s account %r is already linked to another user"
                % (network, network_user_id)
            )
        plugin = self._plugin(network)
        token = plugin.oauth.authorize(network_user_id, password, now)
        user.tokens[network] = token
        self._by_network_id[key] = user_id
        return user

    def unlink_network(self, user_id: int, network: str) -> None:
        user = self.get(user_id)
        token = user.tokens.pop(network, None)
        if token is not None:
            self._plugin(network).oauth.revoke(token.token)
            self._by_network_id.pop((network, token.network_user_id), None)

    # ------------------------------------------------------------- reads

    def get(self, user_id: int) -> PlatformUser:
        try:
            return self._users[user_id]
        except KeyError:
            raise ValidationError("no platform user %r" % user_id) from None

    def all_users(self) -> List[PlatformUser]:
        return [self._users[uid] for uid in sorted(self._users)]

    def validate_token(self, user_id: int, network: str, now: float) -> AccessToken:
        """Check the stored token is still valid with the network."""
        user = self.get(user_id)
        token = user.tokens.get(network)
        if token is None:
            raise AuthenticationError(
                "user %d has not linked %r" % (user_id, network)
            )
        return self._plugin(network).oauth.validate(token.token, now)
