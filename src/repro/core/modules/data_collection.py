"""Data Collection Module (paper Section 2.2).

"Periodically, the Data Collection Module scans in parallel all the
authorized users of MoDisSENSE; each worker scans a different set of
users.  For each user and for all connected social networks, it
downloads all the interesting updates from the user's social profile"
— check-ins with comments, and status updates.  Collected data is
classified in-memory and lands in the repositories.

Visits are stored for the user *and their friends* (the Visits
Repository recommendation path needs friends' histories), keyed by the
numeric id embedded in the network user id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...errors import PluginError
from ...social import CheckIn, SocialNetworkPlugin
from ..repositories.poi import POIRepository
from ..repositories.social_info import SocialInfoRepository
from ..repositories.visits import VisitsRepository, VisitStruct
from .text_processing import TextProcessingModule
from .user_management import PlatformUser, UserManagementModule


#: Pseudo-POI id for texts that are not attached to any place (status
#: updates); the Text Repository's key needs *some* POI component.
NO_POI = 0


@dataclass
class CollectionReport:
    """What one periodic collection run ingested."""

    users_scanned: int = 0
    networks_scanned: int = 0
    friends_stored: int = 0
    checkins_ingested: int = 0
    comments_classified: int = 0
    statuses_seen: int = 0
    statuses_classified: int = 0


def numeric_id(network_user_id: str) -> int:
    """The platform-wide numeric id embedded in a network user id."""
    digits = "".join(ch for ch in network_user_id if ch.isdigit())
    if not digits:
        raise PluginError(
            "network user ids must embed a numeric id, got %r" % network_user_id
        )
    return int(digits)


class DataCollectionModule:
    """The periodic ingest job."""

    def __init__(
        self,
        user_management: UserManagementModule,
        plugins: Dict[str, SocialNetworkPlugin],
        social_info: SocialInfoRepository,
        visits: VisitsRepository,
        text_processing: TextProcessingModule,
        poi_repository: POIRepository,
    ) -> None:
        self.users = user_management
        self.plugins = plugins
        self.social_info = social_info
        self.visits = visits
        self.text_processing = text_processing
        self.pois = poi_repository
        #: Per-(user, network) collection high-water marks.
        self._collected_until: Dict[tuple, int] = {}

    # --------------------------------------------------------------- run

    def run(self, now: int) -> CollectionReport:
        """Scan every authorized user; ingest updates since the last run."""
        report = CollectionReport()
        for user in self.users.all_users():
            report.users_scanned += 1
            for network in user.linked_networks:
                self._collect_user_network(user, network, now, report)
        return report

    def _collect_user_network(
        self, user: PlatformUser, network: str, now: int, report: CollectionReport
    ) -> None:
        plugin = self.plugins[network]
        token = self.users.validate_token(user.user_id, network, float(now))
        report.networks_scanned += 1

        # Friends list -> Social Info Repository (compressed).
        friends = plugin.get_friends(token)
        self.social_info.store_friends(user.user_id, network, friends, now)
        report.friends_stored += len(friends)

        since = self._collected_until.get((user.user_id, network), 0)
        watched = [token.network_user_id] + [f.network_user_id for f in friends]
        for watched_id in watched:
            checkins = plugin.get_checkins(token, watched_id, since, now)
            for checkin in checkins:
                self._ingest_checkin(checkin, report)
            statuses = plugin.get_status_updates(token, watched_id, since, now)
            report.statuses_seen += len(statuses)
            for status in statuses:
                self._ingest_status(status, report)
        self._collected_until[(user.user_id, network)] = now

    def _ingest_status(self, status, report: CollectionReport) -> None:
        """Classify a plain status update and keep it in the Text
        Repository (keyed to the :data:`NO_POI` pseudo-place): status
        text carries opinion signal the paper's "interesting updates"
        include even without a check-in."""
        if not status.text.strip():
            return
        self.text_processing.process_comment(
            user_id=numeric_id(status.network_user_id),
            poi_id=NO_POI,
            timestamp=status.timestamp,
            text=status.text,
        )
        report.statuses_classified += 1

    # ------------------------------------------------------------ ingest

    def _ingest_checkin(self, checkin: CheckIn, report: CollectionReport) -> None:
        visitor_id = numeric_id(checkin.network_user_id)

        # Classify the accompanying comment; its score is the grade.
        record = self.text_processing.process_comment(
            user_id=visitor_id,
            poi_id=checkin.poi_id,
            timestamp=checkin.timestamp,
            text=checkin.comment,
        )
        report.comments_classified += 1

        poi = self.pois.get(checkin.poi_id)
        if poi is not None:
            visit = VisitStruct(
                user_id=visitor_id,
                poi_id=poi.poi_id,
                timestamp=checkin.timestamp,
                grade=record.sentiment,
                poi_name=poi.name,
                lat=poi.lat,
                lon=poi.lon,
                keywords=poi.keywords,
                hotness=poi.hotness,
                interest=poi.interest,
            )
        else:
            # Check-in at a place the platform does not know yet: keep
            # the visit with coordinates only; Event Detection may later
            # register the POI.
            visit = VisitStruct(
                user_id=visitor_id,
                poi_id=checkin.poi_id,
                timestamp=checkin.timestamp,
                grade=record.sentiment,
                lat=checkin.lat,
                lon=checkin.lon,
            )
        self.visits.store(visit)
        report.checkins_ingested += 1
