"""Trending-events queries (paper Sections 1–2).

"MoDisSENSE can resolve the query: show me the three hottest places in
Melbourne visited by my x specific Foursquare friends the last y hours"
— a personalized trending query with configurable time granularity.
The non-personalized variant ("five hottest places in town yesterday
night") ranks by global crowd concentration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...errors import QueryError
from ...geo import BoundingBox
from .query_answering import (
    QueryAnsweringModule,
    ScoredPOI,
    SearchQuery,
    SearchResult,
    SORT_HOTNESS,
)


@dataclass
class TrendingQuery:
    """"k hottest places in bbox over the last ``window_s`` seconds"."""

    now: int
    window_s: int
    bbox: Optional[BoundingBox] = None
    friend_ids: Tuple = ()
    limit: int = 5

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise QueryError("window_s must be positive")
        if self.limit < 1:
            raise QueryError("limit must be >= 1")
        self.friend_ids = tuple(self.friend_ids)

    @property
    def since(self) -> int:
        return self.now - self.window_s


class TrendingModule:
    """Trending queries are hotness-sorted searches over a time window."""

    def __init__(self, query_answering: QueryAnsweringModule) -> None:
        self._qa = query_answering

    def trending(self, query: TrendingQuery) -> SearchResult:
        """Top-k POIs by visit concentration in the window.

        With friends given, the concentration is measured over *their*
        visits via the coprocessor path; otherwise over the global
        hotness metric maintained by the HotIn job.
        """
        search = SearchQuery(
            bbox=query.bbox,
            friend_ids=query.friend_ids,
            since=query.since,
            until=query.now,
            sort_by=SORT_HOTNESS,
            limit=query.limit,
        )
        return self._qa.search(search)
