"""Blog creation, editing and publishing (paper Sections 1, 4).

"The correlation of spatio-temporal information provided by the GPS
traces with POI related texts automatically produces a daily blog with
the user's activity.  The produced blog can be manually updated by the
user and can be shared in Facebook or Twitter."
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional

from ...errors import PluginError, ValidationError
from ...social import SocialNetworkPlugin
from ..repositories.blogs import BlogEntry, BlogsRepository, BlogVisit
from .trajectory import SemanticTrajectory, TrajectoryModule
from .user_management import UserManagementModule


class BlogModule:
    """Semi-automatic blog workflow over semantic trajectories."""

    def __init__(
        self,
        trajectory_module: TrajectoryModule,
        blogs_repository: BlogsRepository,
        user_management: UserManagementModule,
        plugins: Dict[str, SocialNetworkPlugin],
    ) -> None:
        self.trajectories = trajectory_module
        self.blogs = blogs_repository
        self.users = user_management
        self.plugins = plugins

    # ---------------------------------------------------------- creation

    def generate_daily_blog(
        self, user_id: int, day_start: int, day_end: int
    ) -> BlogEntry:
        """Infer the day's trajectory and persist it as an editable blog."""
        trajectory = self.trajectories.infer(user_id, day_start, day_end)
        visits = [
            BlogVisit(
                poi_id=stop.poi.poi_id if stop.poi else 0,
                poi_name=stop.poi.name if stop.poi else "Unknown place",
                arrival=stop.stay.arrival,
                departure=stop.stay.departure,
                note=stop.comment,
            )
            for stop in trajectory.stops
        ]
        day = _dt.datetime.utcfromtimestamp(day_start).strftime("%Y-%m-%d")
        return self.blogs.create(user_id=user_id, day=day, visits=visits)

    # ----------------------------------------------------------- editing

    def reorder_visits(self, blog_id: int, new_order: List[int]) -> BlogEntry:
        """Apply the GUI's drag-reorder: ``new_order`` is a permutation of
        current visit indexes."""
        blog = self._get(blog_id)
        if sorted(new_order) != list(range(len(blog.visits))):
            raise ValidationError(
                "new_order must be a permutation of 0..%d" % (len(blog.visits) - 1)
            )
        reordered = [blog.visits[i] for i in new_order]
        self.blogs.update_visits(blog_id, reordered)
        return self._get(blog_id)

    def edit_visit_times(
        self, blog_id: int, visit_index: int, arrival: int, departure: int
    ) -> BlogEntry:
        """The GUI's arrival/departure editing (paper Figure 5b)."""
        blog = self._get(blog_id)
        if not 0 <= visit_index < len(blog.visits):
            raise ValidationError("no visit at index %r" % visit_index)
        visits = list(blog.visits)
        old = visits[visit_index]
        visits[visit_index] = BlogVisit(
            poi_id=old.poi_id,
            poi_name=old.poi_name,
            arrival=arrival,
            departure=departure,
            note=old.note,
        )
        self.blogs.update_visits(blog_id, visits)
        return self._get(blog_id)

    def annotate_visit(
        self, blog_id: int, visit_index: int, note: str
    ) -> BlogEntry:
        blog = self._get(blog_id)
        if not 0 <= visit_index < len(blog.visits):
            raise ValidationError("no visit at index %r" % visit_index)
        visits = list(blog.visits)
        old = visits[visit_index]
        visits[visit_index] = BlogVisit(
            poi_id=old.poi_id,
            poi_name=old.poi_name,
            arrival=old.arrival,
            departure=old.departure,
            note=note,
        )
        self.blogs.update_visits(blog_id, visits)
        return self._get(blog_id)

    # -------------------------------------------------------- publishing

    def publish(self, blog_id: int, network: str, now: float) -> BlogEntry:
        """Share the blog on a linked social network."""
        blog = self._get(blog_id)
        plugin = self.plugins.get(network)
        if plugin is None:
            raise PluginError("no plugin registered for %r" % network)
        token = self.users.validate_token(blog.user_id, network, now)
        plugin.publish(token, self.render_text(blog))
        self.blogs.mark_published(blog_id, network)
        return self._get(blog_id)

    @staticmethod
    def render_text(blog: BlogEntry) -> str:
        """Human-readable rendering used for the social post."""
        lines = [blog.title]
        for visit in blog.visits:
            duration_min = max(0, (visit.departure - visit.arrival) // 60)
            line = "- %s (%d min)" % (visit.poi_name, duration_min)
            if visit.note:
                line += ": %s" % visit.note
            lines.append(line)
        return "\n".join(lines)

    def _get(self, blog_id: int) -> BlogEntry:
        blog = self.blogs.get(blog_id)
        if blog is None:
            raise ValidationError("no blog with id %r" % blog_id)
        return blog
