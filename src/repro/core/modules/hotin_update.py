"""HotIn Update Module (paper Section 2.2).

"Hotness and interest are inferred by an aggregation over all visits
persisted in Visits Repository within a configurable time frame T.  In
order to aggregate hotness and interest, a MapReduce job configured with
a scanner over all visits in T, is instantiated."

- **hotness** = number of visits to the POI in T (crowd concentration);
- **interest** = mean sentiment grade of those visits (friend opinion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...mapreduce import JobRunner, MapReduceJob
from ..repositories.poi import POIRepository
from ..repositories.visits import VisitsRepository


@dataclass
class HotInReport:
    """What one periodic run did."""

    window: Tuple[int, int]
    visits_scanned: int
    pois_updated: int
    pois_unknown: int


class HotInUpdateModule:
    """The periodic hotness/interest aggregation job."""

    def __init__(
        self,
        visits_repository: VisitsRepository,
        poi_repository: POIRepository,
        runner: Optional[JobRunner] = None,
        num_mappers: int = 8,
    ) -> None:
        self.visits = visits_repository
        self.pois = poi_repository
        self.num_mappers = num_mappers
        self._runner = runner

    def run(self, since: int, until: int) -> HotInReport:
        """Aggregate over visits in ``[since, until)`` and write back."""
        records = list(self.visits.all_visits(since, until))

        def mapper(visit, emit, counters):
            emit(visit.poi_id, (1, visit.grade))

        def combiner(poi_id, values, emit, counters):
            count = sum(v[0] for v in values)
            grade_sum = sum(v[1] for v in values)
            emit(poi_id, (count, grade_sum))

        def reducer(poi_id, values, emit, counters):
            count = sum(v[0] for v in values)
            grade_sum = sum(v[1] for v in values)
            emit(poi_id, (count, grade_sum / count if count else 0.0))

        job = MapReduceJob(
            name="hotin-update",
            mapper=mapper,
            combiner=combiner,
            reducer=reducer,
            num_mappers=self.num_mappers,
            num_reducers=max(2, self.num_mappers // 2),
        )
        runner = self._runner or JobRunner(max_workers=self.num_mappers)
        try:
            result = runner.run(job, records)
        finally:
            if self._runner is None:
                runner.shutdown()

        updated = 0
        unknown = 0
        for poi_id, (count, mean_grade) in result.pairs:
            if self.pois.update_hotin(
                poi_id, hotness=float(count), interest=mean_grade
            ):
                updated += 1
            else:
                unknown += 1
        return HotInReport(
            window=(since, until),
            visits_scanned=len(records),
            pois_updated=updated,
            pois_unknown=unknown,
        )
