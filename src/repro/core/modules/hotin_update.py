"""HotIn Update Module (paper Section 2.2) — batch and incremental.

"Hotness and interest are inferred by an aggregation over all visits
persisted in Visits Repository within a configurable time frame T.  In
order to aggregate hotness and interest, a MapReduce job configured with
a scanner over all visits in T, is instantiated."

- **hotness** = number of visits to the POI in T (crowd concentration);
- **interest** = mean sentiment grade of those visits (friend opinion).

Two maintenance strategies coexist:

- :class:`HotInUpdateModule.run` is the paper's periodic batch MapReduce
  recompute over the full visits window — correct but as stale as its
  period and as expensive as the table is large.
- :class:`IncrementalHotIn` keeps the same aggregates maintained from
  visit *deltas* as the streaming ingest tier lands them: per-POI,
  per-event-timestamp ``(count, grade_sum)`` cells that any window can
  be summed from exactly.  Hotness freshness becomes one applier batch,
  not one batch-job period.
- :meth:`HotInUpdateModule.reconcile` demotes the MapReduce job to a
  periodic verification pass: it recomputes the window from the table
  (the source of truth), compares against the incremental state, and
  repairs any divergence (out-of-band writes, a crashed applier's lost
  fold) — repair is idempotent because it *replaces* window state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...mapreduce import JobRunner, MapReduceJob
from ..repositories.poi import POIRepository
from ..repositories.visits import VisitsRepository


@dataclass
class HotInReport:
    """What one periodic run did."""

    window: Tuple[int, int]
    visits_scanned: int
    pois_updated: int
    pois_unknown: int


@dataclass
class ReconcileReport:
    """Outcome of one incremental-vs-batch verification pass."""

    window: Tuple[int, int]
    visits_scanned: int
    #: Distinct POIs present in either the batch truth or the
    #: incremental window state.
    pois_checked: int
    #: POIs whose incremental ``(count, grade_sum)`` diverged from the
    #: batch recompute (including missing/extra POIs).
    mismatched: int
    #: Window repairs applied to the incremental state (== mismatched).
    repaired: int
    #: POI-repository rows rewritten from the recomputed truth.
    pois_updated: int

    @property
    def in_sync(self) -> bool:
        return self.mismatched == 0


#: One streamed visit delta: ``(poi_id, event_timestamp, grade)``.
HotInDelta = Tuple[int, int, float]


class IncrementalHotIn:
    """Delta-maintained hotness/interest aggregates.

    State is ``poi_id -> {event_timestamp -> [count, grade_sum]}``:
    exact enough that *any* time window sums to precisely what the batch
    MapReduce recompute over the same visits produces (same counts, same
    float ``grade_sum`` whenever grade addition is order-insensitive —
    the reconciliation pass repairs the residue when it is not).  Folds
    are commutative, so applier threads may interleave freely and a
    load-aware repartition never corrupts the state.

    Memory is bounded by :meth:`prune`, which drops cells older than the
    retention horizon (windows reaching below a pruned timestamp are the
    batch job's business again).

    Thread-safe: every method takes the internal lock; :meth:`fold` is
    called concurrently by per-partition applier workers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_poi: Dict[int, Dict[int, List[float]]] = {}
        #: POIs touched since the last :meth:`refresh_pois`.
        self._dirty: Set[int] = set()
        self.deltas_folded = 0
        #: Highest event timestamp folded so far (event-time watermark).
        self.watermark = 0
        #: Timestamps below this were pruned; window queries reaching
        #: below it are refused as unanswerable from incremental state.
        self.pruned_below = 0

    # ------------------------------------------------------------- folds

    def fold(self, deltas: Iterable[HotInDelta]) -> int:
        """Absorb streamed visit deltas; returns how many were folded."""
        folded = 0
        with self._lock:
            by_poi = self._by_poi
            dirty = self._dirty
            for poi_id, timestamp, grade in deltas:
                cells = by_poi.get(poi_id)
                if cells is None:
                    cells = by_poi[poi_id] = {}
                slot = cells.get(timestamp)
                if slot is None:
                    cells[timestamp] = [1, grade]
                else:
                    slot[0] += 1
                    slot[1] += grade
                dirty.add(poi_id)
                folded += 1
                if timestamp > self.watermark:
                    self.watermark = timestamp
            self.deltas_folded += folded
        return folded

    @property
    def dirty_count(self) -> int:
        """POIs with folded-but-unpublished deltas (freshness input)."""
        with self._lock:
            return len(self._dirty)

    # ----------------------------------------------------------- queries

    def _window_sum(
        self, poi_id: int, since: Optional[int], until: Optional[int]
    ) -> Tuple[int, float]:
        cells = self._by_poi.get(poi_id, {})
        count = 0
        grade_sum = 0.0
        for ts, (c, gsum) in cells.items():
            if since is not None and ts < since:
                continue
            if until is not None and ts >= until:
                continue
            count += c
            grade_sum += gsum
        return count, grade_sum

    def snapshot(
        self, since: Optional[int] = None, until: Optional[int] = None
    ) -> Dict[int, Tuple[int, float]]:
        """``{poi_id: (count, grade_sum)}`` over ``[since, until)`` —
        the comparable form of the batch reducer's pre-division state.
        POIs with no in-window visits are omitted, matching the batch
        job's output domain."""
        with self._lock:
            out: Dict[int, Tuple[int, float]] = {}
            for poi_id in self._by_poi:
                count, grade_sum = self._window_sum(poi_id, since, until)
                if count:
                    out[poi_id] = (count, grade_sum)
            return out

    def pairs(
        self, since: Optional[int] = None, until: Optional[int] = None
    ) -> List[Tuple[int, Tuple[int, float]]]:
        """``(poi_id, (count, mean_grade))`` pairs — the exact shape the
        batch reducer emits, for oracle comparisons."""
        return [
            (poi_id, (count, grade_sum / count))
            for poi_id, (count, grade_sum) in sorted(
                self.snapshot(since, until).items()
            )
        ]

    # ----------------------------------------------------------- updates

    def refresh_pois(
        self,
        pois: POIRepository,
        since: Optional[int] = None,
        until: Optional[int] = None,
        only_dirty: bool = True,
    ) -> int:
        """Push current window aggregates into the POI repository.

        With ``only_dirty`` (the applier's per-batch mode) only POIs
        touched since the previous refresh are rewritten — the batch
        job's full-table rewrite becomes a handful of row updates per
        ingest batch.  Returns the number of POI rows updated.
        """
        with self._lock:
            targets = list(self._dirty if only_dirty else self._by_poi)
            self._dirty.clear()
        updated = 0
        for poi_id in targets:
            with self._lock:
                count, grade_sum = self._window_sum(poi_id, since, until)
            if count == 0:
                continue
            if pois.update_hotin(
                poi_id, hotness=float(count), interest=grade_sum / count
            ):
                updated += 1
        return updated

    def repair_window(
        self,
        poi_id: int,
        since: Optional[int],
        until: Optional[int],
        count: int,
        grade_sum: float,
    ) -> None:
        """Replace one POI's in-window state with recomputed truth.

        Drops every cell in ``[since, until)`` and installs a single
        synthetic cell carrying the batch-true aggregate, stamped at the
        window start (so later windows covering this one still sum
        correctly).  Idempotent — re-running a repair is a no-op.
        """
        with self._lock:
            cells = self._by_poi.setdefault(poi_id, {})
            for ts in [
                t
                for t in cells
                if (since is None or t >= since)
                and (until is None or t < until)
            ]:
                del cells[ts]
            if count:
                anchor = since if since is not None else 0
                cells[anchor] = [count, grade_sum]
                if anchor > self.watermark:
                    self.watermark = anchor
            elif not cells:
                del self._by_poi[poi_id]
            self._dirty.add(poi_id)

    def prune(self, before_ts: int) -> int:
        """Drop cells with ``timestamp < before_ts``; returns how many.

        Bounds memory to the retention horizon the reconciliation window
        needs; anything older is batch-job territory.
        """
        removed = 0
        with self._lock:
            for poi_id in list(self._by_poi):
                cells = self._by_poi[poi_id]
                stale = [ts for ts in cells if ts < before_ts]
                for ts in stale:
                    del cells[ts]
                removed += len(stale)
                if not cells:
                    del self._by_poi[poi_id]
            if before_ts > self.pruned_below:
                self.pruned_below = before_ts
        return removed

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "pois_tracked": len(self._by_poi),
                "timestamp_cells": sum(
                    len(c) for c in self._by_poi.values()
                ),
                "dirty_pois": len(self._dirty),
                "deltas_folded": self.deltas_folded,
                "watermark": self.watermark,
                "pruned_below": self.pruned_below,
            }


class HotInUpdateModule:
    """The periodic hotness/interest aggregation job."""

    def __init__(
        self,
        visits_repository: VisitsRepository,
        poi_repository: POIRepository,
        runner: Optional[JobRunner] = None,
        num_mappers: int = 8,
    ) -> None:
        self.visits = visits_repository
        self.pois = poi_repository
        self.num_mappers = num_mappers
        self._runner = runner

    def _aggregate(self, since: int, until: int, name: str):
        """Run the MapReduce aggregation; returns ``(pairs, n_records)``
        where pairs are ``(poi_id, (count, grade_sum))``."""
        records = list(self.visits.all_visits(since, until))

        def mapper(visit, emit, counters):
            emit(visit.poi_id, (1, visit.grade))

        def combiner(poi_id, values, emit, counters):
            count = sum(v[0] for v in values)
            grade_sum = sum(v[1] for v in values)
            emit(poi_id, (count, grade_sum))

        def reducer(poi_id, values, emit, counters):
            count = sum(v[0] for v in values)
            grade_sum = sum(v[1] for v in values)
            emit(poi_id, (count, grade_sum))

        job = MapReduceJob(
            name=name,
            mapper=mapper,
            combiner=combiner,
            reducer=reducer,
            num_mappers=self.num_mappers,
            num_reducers=max(2, self.num_mappers // 2),
        )
        runner = self._runner or JobRunner(max_workers=self.num_mappers)
        try:
            result = runner.run(job, records)
        finally:
            if self._runner is None:
                runner.shutdown()
        return result.pairs, len(records)

    def run(self, since: int, until: int) -> HotInReport:
        """Aggregate over visits in ``[since, until)`` and write back."""
        pairs, scanned = self._aggregate(since, until, "hotin-update")
        updated = 0
        unknown = 0
        for poi_id, (count, grade_sum) in pairs:
            if self.pois.update_hotin(
                poi_id,
                hotness=float(count),
                interest=grade_sum / count if count else 0.0,
            ):
                updated += 1
            else:
                unknown += 1
        return HotInReport(
            window=(since, until),
            visits_scanned=scanned,
            pois_updated=updated,
            pois_unknown=unknown,
        )

    def reconcile(
        self, incremental: IncrementalHotIn, since: int, until: int
    ) -> ReconcileReport:
        """Verify-and-repair pass: batch recompute vs incremental state.

        The visits table is the source of truth.  Any POI whose
        incremental ``(count, grade_sum)`` over the window differs from
        the recompute — a crashed applier's lost fold, an out-of-band
        :meth:`VisitsRepository.store`, float drift from fold-order
        differences — has its window state *replaced* with the truth and
        its POI-repository row rewritten.  Replacement makes the pass
        idempotent: a second run over the same window repairs nothing.
        """
        pairs, scanned = self._aggregate(since, until, "hotin-reconcile")
        truth: Dict[int, Tuple[int, float]] = {
            poi_id: (count, grade_sum) for poi_id, (count, grade_sum) in pairs
        }
        observed = incremental.snapshot(since, until)
        mismatched = [
            poi_id
            for poi_id in set(truth) | set(observed)
            if truth.get(poi_id) != observed.get(poi_id)
        ]
        updated = 0
        for poi_id in mismatched:
            count, grade_sum = truth.get(poi_id, (0, 0.0))
            incremental.repair_window(poi_id, since, until, count, grade_sum)
            if count and self.pois.update_hotin(
                poi_id, hotness=float(count), interest=grade_sum / count
            ):
                updated += 1
        return ReconcileReport(
            window=(since, until),
            visits_scanned=scanned,
            pois_checked=len(set(truth) | set(observed)),
            mismatched=len(mismatched),
            repaired=len(mismatched),
            pois_updated=updated,
        )
