"""Event Detection Module (paper Section 2.2).

"A distributed, Hadoop-based implementation of the DBSCAN clustering
algorithm is employed ... processes in parallel the updates of GPS
Traces Repository in order to find traces of high density; high density
traces imply the existence of a new POI.  In order to avoid detecting
already known POIs, traces falling near to existing POIs in POI
Repository are filtered out."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...clustering import mr_dbscan
from ...clustering.dbscan import cluster_centroid
from ...config import JobsConfig
from ...geo import BoundingBox, GeoPoint
from ..repositories.gps_traces import GPSTracesRepository
from ..repositories.poi import POI, POIRepository


@dataclass
class DetectionReport:
    """Outcome of one periodic detection run."""

    traces_scanned: int
    traces_after_filter: int
    clusters_found: int
    pois_created: List[POI]


class EventDetectionModule:
    """Periodic new-POI / trending-event discovery."""

    def __init__(
        self,
        gps_repository: GPSTracesRepository,
        poi_repository: POIRepository,
        config: Optional[JobsConfig] = None,
    ) -> None:
        self.gps = gps_repository
        self.pois = poi_repository
        self.config = config or JobsConfig()

    def run(
        self, since: Optional[int] = None, until: Optional[int] = None
    ) -> DetectionReport:
        """Cluster the window's traces and register new POIs."""
        since = since if since is not None else self.gps.processed_until
        points = list(self.gps.scan_window(since, until))
        total = len(points)

        # Known-POI filter: drop traces near an existing POI.
        radius = self.config.known_poi_filter_radius_m
        filtered = [
            p
            for p in points
            if self.pois.nearest_within(GeoPoint(p.lat, p.lon), radius) is None
        ]

        geo_points = [GeoPoint(p.lat, p.lon) for p in filtered]
        result = mr_dbscan(
            geo_points,
            eps_m=self.config.dbscan_eps_m,
            min_points=self.config.dbscan_min_points,
        )

        created: List[POI] = []
        next_id = self.pois.next_poi_id()
        for cluster_id, members in sorted(result.cluster_members().items()):
            centroid = cluster_centroid(geo_points, members)
            poi = POI(
                poi_id=next_id,
                name="Detected event #%d" % next_id,
                lat=centroid.lat,
                lon=centroid.lon,
                keywords=("event", "trending"),
                category="event",
                hotness=float(len(members)),
                auto_detected=True,
            )
            self.pois.add(poi)
            created.append(poi)
            next_id += 1

        if points:
            self.gps.processed_until = max(p.timestamp for p in points) + 1

        return DetectionReport(
            traces_scanned=total,
            traces_after_filter=len(filtered),
            clusters_found=result.num_clusters,
            pois_created=created,
        )
