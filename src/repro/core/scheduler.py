"""Periodic batch-job scheduling over simulated time.

The paper's processing modules run "periodically" (Data Collection,
HotIn Update, Event Detection).  :class:`PeriodicScheduler` drives them
against a simulated clock: callers advance time, the scheduler fires
whichever jobs are due, in deterministic registration order — so tests
and examples can replay whole platform days reproducibly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ValidationError
from .. import threadreg
from .tracing import NULL_TRACER, Tracer


@dataclass
class ScheduledJob:
    """One periodic job: fires every ``period_s`` simulated seconds.

    ``callback(now)`` receives the firing time; its return value is kept
    in :attr:`last_result` for inspection.
    """

    name: str
    period_s: float
    callback: Callable
    next_fire_at: float
    enabled: bool = True
    #: Cron semantics (the default): a job that missed N periods fires N
    #: times, once per missed window — right for batch pipelines where
    #: every window must be processed.  ``catch_up=False`` gives
    #: level-triggered semantics: after firing, the next deadline skips
    #: straight past ``new_now`` — right for scrape/sample jobs where
    #: replaying a simulated day as 86 400 back-to-back scrapes of the
    #: *same* current state would be pure waste.
    catch_up: bool = True
    #: Whether the brownout ladder may pause this job under overload.
    #: Background batch work (HotIn folds, scrubs, rebalances) is
    #: pausable; liveness- and observability-critical jobs (telemetry
    #: scrape, supervisor heartbeat, the admission tick itself) are not.
    pausable: bool = False
    #: Pause state (see :meth:`PeriodicScheduler.pause`).  A paused job
    #: keeps its registration but never fires; resuming re-anchors its
    #: next deadline one period out — missed windows are *not* replayed,
    #: matching the overload contract that deferred background work is
    #: shed, not queued.
    paused: bool = False
    fire_count: int = 0
    last_result: Any = None
    #: Firings whose callback raised; the job keeps its schedule.
    failure_count: int = 0
    #: ``"ExcType: message"`` of the most recent failure, None after a
    #: successful firing.
    last_error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValidationError("period_s must be positive")


class PeriodicScheduler:
    """A deterministic simulated-time job scheduler.

    Jobs fire when ``advance_to`` crosses their deadline; a job that
    missed several periods fires once per missed period (catch-up),
    matching cron-like semantics for batch pipelines where every window
    must be processed.
    """

    def __init__(
        self,
        start_at: float = 0.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.now = start_at
        self._jobs: Dict[str, ScheduledJob] = {}
        self._order: List[str] = []
        #: Observability sinks: every firing emits a ``scheduler.job``
        #: span and a per-job wall-time histogram (no-ops when unset).
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics

    def register(
        self,
        name: str,
        period_s: float,
        callback: Callable,
        first_fire_at: Optional[float] = None,
        catch_up: bool = True,
        pausable: bool = False,
    ) -> ScheduledJob:
        """Add a job; first firing defaults to one period from now."""
        if name in self._jobs:
            raise ValidationError("job %r already registered" % name)
        job = ScheduledJob(
            name=name,
            period_s=period_s,
            callback=callback,
            next_fire_at=(
                first_fire_at if first_fire_at is not None
                else self.now + period_s
            ),
            catch_up=catch_up,
            pausable=pausable,
        )
        self._jobs[name] = job
        self._order.append(name)
        return job

    def job(self, name: str) -> ScheduledJob:
        try:
            return self._jobs[name]
        except KeyError:
            raise ValidationError("no job named %r" % name) from None

    def set_enabled(self, name: str, enabled: bool) -> None:
        self.job(name).enabled = enabled

    def pause(self, name: str) -> None:
        """Stop ``name`` firing until :meth:`resume` — idempotent."""
        self.job(name).paused = True

    def resume(self, name: str) -> None:
        """Un-pause ``name``, level-triggered: the next deadline is one
        period from *now* and the windows missed while paused are never
        replayed — paused background work is shed, not queued."""
        job = self.job(name)
        if not job.paused:
            return
        job.paused = False
        job.next_fire_at = self.now + job.period_s

    def pause_pausable(self) -> List[str]:
        """Pause every job registered ``pausable`` (the brownout ladder's
        level-3 rung); returns the names newly paused."""
        paused = []
        for name in self._order:
            job = self._jobs[name]
            if job.pausable and not job.paused:
                job.paused = True
                paused.append(name)
        if paused and self.metrics is not None:
            self.metrics.increment("scheduler.jobs_paused", len(paused))
        return paused

    def resume_pausable(self) -> List[str]:
        """Resume every paused pausable job; returns the names resumed."""
        resumed = []
        for name in self._order:
            job = self._jobs[name]
            if job.pausable and job.paused:
                self.resume(name)
                resumed.append(name)
        if resumed and self.metrics is not None:
            self.metrics.increment("scheduler.jobs_resumed", len(resumed))
        return resumed

    def advance_to(self, new_now: float) -> List[tuple]:
        """Move the clock forward, firing due jobs.

        Returns the firing log: ``(fire_time, job_name, result)`` tuples
        in execution order.
        """
        if new_now < self.now:
            raise ValidationError(
                "time cannot move backwards (%r -> %r)" % (self.now, new_now)
            )
        log: List[tuple] = []
        # Fire in global time order; ties break by registration order.
        while True:
            due = [
                self._jobs[name]
                for name in self._order
                if self._jobs[name].enabled
                and not self._jobs[name].paused
                and self._jobs[name].next_fire_at <= new_now
            ]
            if not due:
                break
            job = min(
                due, key=lambda j: (j.next_fire_at, self._order.index(j.name))
            )
            fire_time = job.next_fire_at
            self.now = fire_time
            span = self.tracer.span(
                "scheduler.job", job=job.name, fire_at=fire_time
            )
            wall_start = time.perf_counter()
            previous_component = threadreg.push_component("scheduler")
            try:
                # One job's crash must not starve its later periods or
                # the other jobs: record the failure and keep firing.
                job.last_result = job.callback(fire_time)
                job.last_error = None
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                job.last_result = None
                job.failure_count += 1
                job.last_error = "%s: %s" % (type(exc).__name__, exc)
                span.tag("error", type(exc).__name__)
                if self.metrics is not None:
                    self.metrics.increment(
                        "scheduler.job_failures", labels={"job": job.name}
                    )
            finally:
                threadreg.pop_component(previous_component)
                wall_ms = (time.perf_counter() - wall_start) * 1e3
                span.finish()
            if self.metrics is not None:
                self.metrics.increment(
                    "scheduler.fired", labels={"job": job.name}
                )
                self.metrics.record_latency(
                    "scheduler.job_wall", wall_ms, labels={"job": job.name}
                )
            job.fire_count += 1
            if job.catch_up:
                job.next_fire_at = fire_time + job.period_s
            else:
                # Level-triggered: skip every missed window so a large
                # time jump costs one firing, not one per period.
                missed = int((new_now - fire_time) / job.period_s) + 1
                job.next_fire_at = fire_time + missed * job.period_s
            log.append((fire_time, job.name, job.last_result))
        self.now = new_now
        return log

    def advance_by(self, seconds: float) -> List[tuple]:
        """Convenience: ``advance_to(now + seconds)``."""
        return self.advance_to(self.now + seconds)


def build_platform_scheduler(platform, start_at: float = 0.0) -> PeriodicScheduler:
    """Wire a scheduler with the paper's three periodic modules.

    Periods come from the platform's :class:`~repro.config.JobsConfig`;
    the HotIn job aggregates over its configured trailing window.
    """
    scheduler = PeriodicScheduler(
        start_at=start_at,
        tracer=getattr(platform, "tracer", None),
        metrics=getattr(platform, "metrics", None),
    )
    jobs = platform.config.jobs

    scheduler.register(
        "data_collection",
        jobs.data_collection_period_s,
        lambda now: platform.collect(int(now)),
        pausable=True,
    )
    if getattr(platform, "ingest", None) is not None:
        # Streaming ingest keeps hotness fresh incrementally; the batch
        # MapReduce is demoted to a periodic verify-and-repair pass, and
        # the load-aware rebalancer gets its observation-window check.
        ingest_cfg = platform.config.ingest
        scheduler.register(
            "hotin_reconcile",
            ingest_cfg.reconcile_period_s,
            lambda now: platform.reconcile_hotin(
                int(now - jobs.hotin_window_s), int(now)
            ),
            pausable=True,
        )
        if ingest_cfg.rebalance_enabled:
            scheduler.register(
                "ingest_rebalance",
                ingest_cfg.rebalance_period_s,
                lambda now: platform.ingest.maybe_rebalance(),
                pausable=True,
            )
    else:
        scheduler.register(
            "hotin_update",
            jobs.hotin_update_period_s,
            lambda now: platform.run_hotin(
                int(now - jobs.hotin_window_s), int(now)
            ),
            pausable=True,
        )
    scheduler.register(
        "event_detection",
        jobs.event_detection_period_s,
        lambda now: platform.detect_events(until=int(now)),
        pausable=True,
    )
    if getattr(platform, "telemetry", None) is not None:
        # One scrape per simulated second while time advances normally;
        # level-triggered (catch_up=False) so replaying a whole platform
        # day costs one scrape, not 86 400 scrapes of identical state.
        scheduler.register(
            "telemetry_scrape",
            platform.config.telemetry.scrape_period_s,
            lambda now: platform.telemetry.tick(now),
            catch_up=False,
        )
    if getattr(platform, "scan_cache", None) is not None:
        # Reap scan-cache entries no lookup can accept anymore.  The
        # simulated firing time is deliberately ignored: TTL stamps are
        # wall-clock (time.monotonic), so the sweep must use the cache's
        # own clock, not the scheduler's.
        scheduler.register(
            "cache_maintenance",
            platform.config.cache.sweep_period_s,
            lambda now: platform.sweep_caches(),
            pausable=True,
        )
    if getattr(platform, "supervisor", None) is not None:
        # Heartbeat + scrub are level-triggered: a large jump costs one
        # tick each, and the lease check compares against the *new* now,
        # so a crash during a long idle stretch is still detected at the
        # first tick after the jump.  Drill tests advance in sub-lease
        # steps to measure honest detection latency.
        sup_cfg = platform.config.supervisor
        scheduler.register(
            "supervisor_heartbeat",
            sup_cfg.heartbeat_period_s,
            lambda now: platform.supervisor.heartbeat_tick(now),
            catch_up=False,
        )
        scheduler.register(
            "storage_scrub",
            sup_cfg.scrub_period_s,
            lambda now: platform.supervisor.scrub_tick(now),
            catch_up=False,
            pausable=True,
        )
    if getattr(platform, "admission", None) is not None:
        # The ladder's clock: evaluate overload signals and move the
        # brownout level.  Level-triggered and NOT pausable — the ladder
        # must keep ticking to ever step back down, and replaying missed
        # ticks after a jump would fast-forward the hysteresis.
        scheduler.register(
            "admission_tick",
            platform.config.admission.tick_period_s,
            lambda now: platform.admission.tick(now),
            catch_up=False,
        )
        platform.admission.attach_scheduler(scheduler)
    return scheduler
