"""Value serialization for HBase cells.

HBase stores opaque bytes; the platform stores JSON — compact, debuggable
and schema-tolerant, which matters when the Data Collection Module adds
fields over time.  zlib compression is applied to friend lists, matching
the paper's "compressed list" of friends (Section 2.1).
"""

from __future__ import annotations

import json
import zlib
from typing import Any

from ..errors import StorageError


def encode_json(value: Any) -> bytes:
    """Serialize a JSON-compatible value to UTF-8 bytes."""
    try:
        return json.dumps(value, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as exc:
        raise StorageError("value is not JSON-serializable: %s" % exc) from exc


def decode_json(data: bytes) -> Any:
    """Inverse of :func:`encode_json`."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError("cell does not hold valid JSON: %s" % exc) from exc


def encode_compressed_json(value: Any) -> bytes:
    """JSON + zlib, for large values like friend lists."""
    return zlib.compress(encode_json(value), level=6)


def decode_compressed_json(data: bytes) -> Any:
    try:
        return decode_json(zlib.decompress(data))
    except zlib.error as exc:
        raise StorageError("cell is not zlib-compressed JSON: %s" % exc) from exc


def encode_float(value: float) -> bytes:
    """Fixed-format float encoding for numeric cells."""
    return repr(float(value)).encode("ascii")


def decode_float(data: bytes) -> float:
    try:
        return float(data.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise StorageError("cell does not hold a float: %s" % exc) from exc
