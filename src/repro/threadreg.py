"""Thread → component registry for the sampling profiler.

The continuous profiler (:mod:`repro.core.telemetry.profiler`) samples
``sys._current_frames()`` and must attribute each thread's samples to a
platform component — fan-out workers, ingest appliers, scheduler jobs,
REST handlers.  Thread objects cannot carry that attribution portably,
so this module keeps a process-wide ``ident -> component`` map.

It lives at the top of the package on purpose: ``repro.hbase``,
``repro.core.scheduler`` and ``repro.core.api`` all register here, and a
registry inside ``repro.core.telemetry`` would create an import cycle
(``repro.core`` → ``platform`` → ``hbase`` → ``telemetry`` → ...).
This module therefore imports nothing from ``repro``.

Two registration styles:

- :func:`register_current_thread` — permanent, for dedicated worker
  threads (executor pools via their initializer, ingest appliers);
- :func:`push_component` / :func:`pop_component` — scoped, for threads
  that wear different hats over time (the main thread is "rest" while
  inside ``RestApi.handle`` and "scheduler" while a job callback runs).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = [
    "register_current_thread",
    "unregister_current_thread",
    "push_component",
    "pop_component",
    "component_of",
    "snapshot",
]

_lock = threading.Lock()
_components: Dict[int, str] = {}


def register_current_thread(component: str) -> None:
    """Permanently attribute the calling thread's samples to ``component``."""
    with _lock:
        _components[threading.get_ident()] = component


def unregister_current_thread() -> None:
    with _lock:
        _components.pop(threading.get_ident(), None)


def push_component(component: str) -> Optional[str]:
    """Scoped attribution: returns the previous component (restore it
    with :func:`pop_component` in a ``finally`` block)."""
    ident = threading.get_ident()
    with _lock:
        previous = _components.get(ident)
        _components[ident] = component
    return previous


def pop_component(previous: Optional[str]) -> None:
    ident = threading.get_ident()
    with _lock:
        if previous is None:
            _components.pop(ident, None)
        else:
            _components[ident] = previous


def component_of(ident: int) -> Optional[str]:
    with _lock:
        return _components.get(ident)


def snapshot() -> Dict[int, str]:
    """A point-in-time copy of the whole map (one profiler sample)."""
    with _lock:
        return dict(_components)
