"""A Hadoop-style MapReduce engine, in process.

The platform's batch jobs — HotIn aggregation, MR-DBSCAN event
detection, classifier training — run as MapReduce jobs here exactly as
they do on the paper's Hadoop cluster: input splits feed mappers,
optional combiners pre-aggregate map output, a partitioner routes keys
to reducers, and reducers emit the final pairs.  Mappers and reducers
execute on a thread pool sized to the simulated cluster.
"""

from .job import MapReduceJob, JobResult, Counters
from .io import InputSplit, make_splits
from .partitioner import HashPartitioner, RangePartitioner
from .runner import JobRunner

__all__ = [
    "MapReduceJob",
    "JobResult",
    "Counters",
    "InputSplit",
    "make_splits",
    "HashPartitioner",
    "RangePartitioner",
    "JobRunner",
]
