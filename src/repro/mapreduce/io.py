"""Input splits: how a job's input is carved up for mappers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

from ..errors import MapReduceError


@dataclass
class InputSplit:
    """One mapper's slice of the input."""

    split_id: int
    records: List[Any]

    def __len__(self) -> int:
        return len(self.records)


def make_splits(records: Sequence[Any], num_splits: int) -> List[InputSplit]:
    """Divide ``records`` into up to ``num_splits`` contiguous splits.

    Contiguity matters: jobs whose input is pre-sorted (e.g. HBase scans)
    keep key locality inside a split, which makes combiners effective.
    Fewer splits are returned when there are fewer records than splits.
    """
    if num_splits < 1:
        raise MapReduceError("num_splits must be >= 1, got %r" % num_splits)
    records = list(records)
    if not records:
        return []
    num_splits = min(num_splits, len(records))
    base = len(records) // num_splits
    extra = len(records) % num_splits
    splits: List[InputSplit] = []
    start = 0
    for i in range(num_splits):
        size = base + (1 if i < extra else 0)
        splits.append(InputSplit(split_id=i, records=records[start : start + size]))
        start += size
    return splits
