"""Job execution: map → combine → shuffle → sort → reduce."""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster import ParallelExecutor
from ..errors import MapReduceError
from .io import InputSplit, make_splits
from .job import Counters, JobResult, MapReduceJob


class _NoopPhase:
    """Phase-span stand-in when no tracer is configured (keeps
    ``mapreduce`` free of a ``core`` import)."""

    __slots__ = ()

    def tag(self, key: str, value: Any) -> "_NoopPhase":
        return self

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_PHASE = _NoopPhase()


class JobRunner:
    """Runs jobs with map/reduce tasks on a shared thread pool.

    ``max_workers`` models the Hadoop cluster's task slots; the paper's
    batch tier shares machines with HBase, so platform code sizes it
    from the same :class:`~repro.config.ClusterConfig`.

    ``tracer``/``metrics`` (both optional) give the batch tier the same
    observability as the query tier: each run emits a ``mapreduce.job``
    span with ``map``/``shuffle``/``reduce`` phase children, plus
    per-job wall-time histograms labeled by job name.
    """

    def __init__(
        self,
        max_workers: int = 8,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self._executor = ParallelExecutor(
            max_workers=max_workers, component="mapreduce"
        )
        self.tracer = tracer
        self.metrics = metrics

    def run(self, job: MapReduceJob, records: Sequence[Any]) -> JobResult:
        """Execute one job over ``records`` and return its output."""
        tracer = self.tracer
        root = (
            tracer.span("mapreduce.job", job=job.name, records=len(records))
            if tracer is not None
            else None
        )
        wall_start = time.perf_counter()
        try:
            result = self._run_phases(job, records, tracer, root)
        finally:
            if root is not None:
                root.finish()
        if self.metrics is not None:
            wall_ms = (time.perf_counter() - wall_start) * 1e3
            self.metrics.increment("mapreduce.jobs", labels={"job": job.name})
            self.metrics.record_latency(
                "mapreduce.job_wall", wall_ms, labels={"job": job.name}
            )
            self.metrics.set_gauge(
                "mapreduce.last_output_pairs",
                len(result.pairs),
                labels={"job": job.name},
            )
        return result

    def _run_phases(
        self,
        job: MapReduceJob,
        records: Sequence[Any],
        tracer: Optional[Any],
        root: Optional[Any],
    ) -> JobResult:
        def phase(name: str, **tags):
            if tracer is None:
                return _NOOP_PHASE
            return tracer.span(name, parent=root, **tags)

        splits = make_splits(records, job.num_mappers)
        counters = Counters()
        if not splits:
            return JobResult(
                job_name=job.name,
                pairs=[],
                counters=counters,
                map_tasks=0,
                reduce_tasks=0,
            )

        # ---- map phase (parallel over splits)
        with phase("map", tasks=len(splits)):
            map_outputs = self._executor.map_ordered(
                lambda split: self._run_map_task(job, split), splits
            )

        # ---- shuffle: group by reducer partition, then by key
        with phase("shuffle") as shuffle_span:
            partitions: List[Dict[Any, List[Any]]] = [
                {} for _ in range(job.num_reducers)
            ]
            shuffled = 0
            for task_pairs, task_counters in map_outputs:
                counters.merge(task_counters)
                for key, value in task_pairs:
                    idx = job.partitioner.partition(key, job.num_reducers)
                    partitions[idx].setdefault(key, []).append(value)
                    shuffled += 1
            shuffle_span.tag("pairs", shuffled)

        # ---- reduce phase (parallel over non-empty partitions)
        busy = [(i, p) for i, p in enumerate(partitions) if p]
        with phase("reduce", tasks=len(busy)):
            reduce_outputs = self._executor.map_ordered(
                lambda item: self._run_reduce_task(job, item[1]), busy
            )

            pairs: List[Tuple[Any, Any]] = []
            for task_pairs, task_counters in reduce_outputs:
                counters.merge(task_counters)
                pairs.extend(task_pairs)
            # Deterministic output order regardless of scheduling.
            pairs.sort(key=lambda kv: repr(kv[0]))

        return JobResult(
            job_name=job.name,
            pairs=pairs,
            counters=counters,
            map_tasks=len(splits),
            reduce_tasks=len(busy),
        )

    # ------------------------------------------------------------- tasks

    @staticmethod
    def _run_map_task(job: MapReduceJob, split: InputSplit):
        counters = Counters()
        out: List[Tuple[Any, Any]] = []

        def emit(key: Any, value: Any) -> None:
            out.append((key, value))

        for record in split.records:
            job.mapper(record, emit, counters)
            counters.increment("map.records_in")
        counters.increment("map.records_out", len(out))

        if job.combiner is not None:
            grouped: Dict[Any, List[Any]] = {}
            for key, value in out:
                grouped.setdefault(key, []).append(value)
            combined: List[Tuple[Any, Any]] = []

            def emit_combined(key: Any, value: Any) -> None:
                combined.append((key, value))

            for key, values in grouped.items():
                job.combiner(key, values, emit_combined, counters)
            counters.increment("combine.records_out", len(combined))
            out = combined

        return out, counters

    @staticmethod
    def _run_reduce_task(job: MapReduceJob, grouped: Dict[Any, List[Any]]):
        counters = Counters()
        out: List[Tuple[Any, Any]] = []

        def emit(key: Any, value: Any) -> None:
            out.append((key, value))

        # Hadoop presents keys to a reducer in sorted order.
        for key in sorted(grouped, key=repr):
            job.reducer(key, grouped[key], emit, counters)
            counters.increment("reduce.keys_in")
        counters.increment("reduce.records_out", len(out))
        return out, counters

    def shutdown(self) -> None:
        self._executor.shutdown()

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
