"""Job specification and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import MapReduceError
from .partitioner import HashPartitioner


class Counters:
    """Hadoop-style job counters, aggregated across tasks."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._counts.items():
            self.increment(name, value)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


@dataclass
class MapReduceJob:
    """A job: map over records, optionally combine, partition, reduce.

    ``mapper(record, emit, counters)`` calls ``emit(key, value)`` any
    number of times.  ``reducer(key, values, emit, counters)`` receives
    all values for its key.  ``combiner`` has the reducer signature and
    runs on each mapper's local output — it must be algebraically safe to
    apply repeatedly (sums, mins, maxes).
    """

    name: str
    mapper: Callable
    reducer: Callable
    combiner: Optional[Callable] = None
    partitioner: Any = field(default_factory=HashPartitioner)
    num_reducers: int = 4
    num_mappers: int = 4

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise MapReduceError("num_reducers must be >= 1")
        if self.num_mappers < 1:
            raise MapReduceError("num_mappers must be >= 1")


@dataclass
class JobResult:
    """Output pairs plus counters and task statistics."""

    job_name: str
    pairs: List[Tuple[Any, Any]]
    counters: Counters
    map_tasks: int
    reduce_tasks: int

    def as_dict(self) -> Dict[Any, Any]:
        """Output as a dict — valid when keys are unique (one reducer
        emit per key), which all platform jobs guarantee."""
        out = dict(self.pairs)
        if len(out) != len(self.pairs):
            raise MapReduceError(
                "job %r emitted duplicate keys; use .pairs" % self.job_name
            )
        return out
