"""Partitioners: route intermediate keys to reducers."""

from __future__ import annotations

import bisect
from typing import Any, List, Sequence

from ..errors import MapReduceError


class HashPartitioner:
    """Hadoop's default: ``hash(key) mod num_reducers``.

    Python's ``hash`` is salted per-process for str/bytes, which would
    make reducer assignment non-deterministic across runs; a small FNV-1a
    keeps the choice stable, which tests rely on.
    """

    def partition(self, key: Any, num_reducers: int) -> int:
        if num_reducers < 1:
            raise MapReduceError("num_reducers must be >= 1")
        return self._fnv(repr(key).encode("utf-8")) % num_reducers

    @staticmethod
    def _fnv(data: bytes) -> int:
        h = 0xCBF29CE484222325
        for byte in data:
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h


class RangePartitioner:
    """Routes keys by sorted boundary points — total-order partitioning.

    Used by jobs whose reducers must receive contiguous key ranges, such
    as the MR-DBSCAN merge step (cluster ids are grid-cell ordered).
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        self._boundaries: List[Any] = list(boundaries)
        if self._boundaries != sorted(self._boundaries):
            raise MapReduceError("range boundaries must be sorted")

    def partition(self, key: Any, num_reducers: int) -> int:
        idx = bisect.bisect_right(self._boundaries, key)
        return min(idx, num_reducers - 1)
