"""Command-line interface: quick reproductions without pytest.

``python -m repro <command>`` supports:

- ``describe`` — stand up a platform and print its deployment summary;
- ``figure2`` — a reduced Figure 2 sweep (latency vs friends);
- ``figure4`` — a reduced Figure 4 sweep (accuracy vs training size);
- ``classify TEXT ...`` — train the sentiment pipeline and score text;
- ``stem WORD ...`` — run the Porter stemmer.

The full, assertion-checked reproductions live in ``benchmarks/``; the
CLI trades fidelity for a seconds-long turnaround.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import List, Optional

from .config import ClusterConfig, PlatformConfig, SentimentConfig


def _print_table(title: str, header, rows) -> None:
    cells = [list(map(str, header))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    print("\n=== %s ===" % title)
    for i, row in enumerate(cells):
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            print("  ".join("-" * w for w in widths))


def cmd_describe(args) -> int:
    from .core import MoDisSENSE
    from .datagen import generate_pois

    platform = MoDisSENSE(PlatformConfig.paper(args.nodes))
    platform.load_pois(generate_pois(count=args.pois, seed=2015))
    print(json.dumps(platform.describe(), indent=2, sort_keys=True))
    platform.shutdown()
    return 0


def cmd_figure2(args) -> int:
    import random

    from .cluster import ClusterSimulation, Task
    from .core import MoDisSENSE
    from .core.modules.query_answering import _VisitScanRequest
    from .datagen import generate_pois, generate_visits

    users = args.users
    config = PlatformConfig(
        cluster=ClusterConfig(
            num_nodes=16, regions_per_table=32, cost_per_record_us=175.0
        )
    )
    platform = MoDisSENSE(config)
    pois = generate_pois(count=2000, seed=2015)
    platform.load_pois(pois)
    platform.load_visits(
        generate_visits(range(1, users + 1), pois, seed=2015,
                        mean=17.0, std=10.1)
    )

    friend_counts = [f for f in (500, 2000, 3500, 5000) if f < users]
    rng = random.Random(7)
    rows = []
    for friends in friend_counts:
        ids = tuple(rng.sample(range(1, users + 1), friends))
        request = _VisitScanRequest(
            friend_ids=ids, bbox=None, keywords=(), since=None, until=None
        )
        call = platform.hbase.coprocessor_exec(
            "visits", platform.query_answering._coprocessor, request
        )
        row = [friends]
        for nodes in (4, 8, 16):
            sim = ClusterSimulation(
                ClusterConfig(num_nodes=nodes, regions_per_table=32,
                              cost_per_record_us=175.0)
            )
            sim.place_regions(sorted(call.per_region_records))
            tasks = [
                Task(region_id=r, records_scanned=c,
                     results_returned=call.per_region_results.get(r, 0))
                for r, c in sorted(call.per_region_records.items())
            ]
            row.append("%.0f" % sim.run_query(tasks).latency_ms)
        rows.append(row)
    _print_table(
        "Figure 2 (quick): query latency (ms) vs friends",
        ["friends", "4 nodes", "8 nodes", "16 nodes"],
        rows,
    )
    platform.shutdown()
    return 0


def cmd_figure4(args) -> int:
    from .datagen import ReviewGenerator
    from .text import SentimentPipeline

    capacity = args.documents
    gen = ReviewGenerator(seed=2015, capacity=capacity,
                          noise_onset=0.05, max_noise=0.30)
    corpus = gen.labeled_texts(capacity)
    sizes = [capacity // 8, capacity // 4, capacity // 2, capacity]
    rows = []
    for size in sizes:
        train = corpus[:size]
        base = SentimentPipeline(SentimentConfig.baseline())
        opt = SentimentPipeline(SentimentConfig.optimized())
        base_acc = base.train(train).training_accuracy
        opt_acc = opt.train(train).training_accuracy
        rows.append([size, "%.1f%%" % (100 * base_acc),
                     "%.1f%%" % (100 * opt_acc)])
    _print_table(
        "Figure 4 (quick): training accuracy vs training size",
        ["documents", "baseline", "optimized"],
        rows,
    )
    return 0


def cmd_classify(args) -> int:
    from .datagen import ReviewGenerator
    from .text import SentimentPipeline

    pipeline = SentimentPipeline(SentimentConfig.optimized())
    pipeline.train(
        ReviewGenerator(seed=2015, capacity=8000,
                        noise_onset=0.5, max_noise=0.2).labeled_texts(3000)
    )
    for text in args.text:
        score = pipeline.score(text)
        label = "positive" if score >= 0.5 else "negative"
        print("%.3f  %-8s  %s" % (score, label, text))
    return 0


def cmd_stem(args) -> int:
    from .text import porter_stem

    for word in args.word:
        print("%s -> %s" % (word, porter_stem(word.lower())))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MoDisSENSE reproduction utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print a deployment summary")
    p.add_argument("--nodes", type=int, default=16, choices=(4, 8, 16))
    p.add_argument("--pois", type=int, default=1000)
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("figure2", help="quick Figure 2 sweep")
    p.add_argument("--users", type=int, default=4000)
    p.set_defaults(func=cmd_figure2)

    p = sub.add_parser("figure4", help="quick Figure 4 sweep")
    p.add_argument("--documents", type=int, default=8000)
    p.set_defaults(func=cmd_figure4)

    p = sub.add_parser("classify", help="score text with the classifier")
    p.add_argument("text", nargs="+")
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("stem", help="Porter-stem words")
    p.add_argument("word", nargs="+")
    p.set_defaults(func=cmd_stem)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
