"""Tests for the six datastore repositories."""

import pytest

from repro.config import ClusterConfig
from repro.core.repositories import (
    BlogVisit,
    BlogsRepository,
    CommentRecord,
    GPSTracesRepository,
    POI,
    POIRepository,
    SocialInfoRepository,
    TextRepository,
    VisitsRepository,
)
from repro.core.repositories.visits import VisitStruct
from repro.datagen.gps import GPSPoint
from repro.errors import QueryError, SchemaError, ValidationError
from repro.geo import BoundingBox, GeoPoint
from repro.hbase import HBaseCluster
from repro.social import FriendInfo
from repro.sqlstore import SqlEngine


@pytest.fixture()
def cluster():
    c = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
    yield c
    c.shutdown()


@pytest.fixture()
def poi_repo():
    return POIRepository(SqlEngine())


def make_poi(poi_id, lat=37.98, lon=23.73, **kwargs):
    defaults = dict(
        name="POI %d" % poi_id,
        keywords=("food", "dinner"),
        category="restaurant",
    )
    defaults.update(kwargs)
    return POI(poi_id=poi_id, lat=lat, lon=lon, **defaults)


class TestPOIRepository:
    def test_add_get(self, poi_repo):
        poi_repo.add(make_poi(1))
        got = poi_repo.get(1)
        assert got.name == "POI 1"
        assert poi_repo.get(99) is None

    def test_duplicate_id_rejected(self, poi_repo):
        poi_repo.add(make_poi(1))
        with pytest.raises(SchemaError):
            poi_repo.add(make_poi(1))

    def test_update_hotin(self, poi_repo):
        poi_repo.add(make_poi(1))
        assert poi_repo.update_hotin(1, hotness=12.0, interest=0.8)
        got = poi_repo.get(1)
        assert got.hotness == 12.0
        assert got.interest == 0.8
        assert not poi_repo.update_hotin(99, 1.0, 1.0)

    def test_search_bbox_and_keywords(self, poi_repo):
        poi_repo.add(make_poi(1, lat=37.98, lon=23.73, keywords=("food",)))
        poi_repo.add(make_poi(2, lat=40.64, lon=22.94, keywords=("food",)))
        poi_repo.add(make_poi(3, lat=37.99, lon=23.74, keywords=("coffee",)))
        athens = BoundingBox(37.9, 23.6, 38.1, 23.8)
        found = poi_repo.search(bbox=athens, keywords=["food"])
        assert [p.poi_id for p in found] == [1]

    def test_search_sorting(self, poi_repo):
        poi_repo.add(make_poi(1, hotness=1.0, interest=0.9))
        poi_repo.add(make_poi(2, lat=37.97, hotness=5.0, interest=0.2))
        by_hot = poi_repo.search(sort_by="hotness", limit=1)
        assert by_hot[0].poi_id == 2
        by_interest = poi_repo.search(sort_by="interest", limit=1)
        assert by_interest[0].poi_id == 1

    def test_invalid_sort_rejected(self, poi_repo):
        with pytest.raises(QueryError):
            poi_repo.search(sort_by="bogus")

    def test_nearest_within(self, poi_repo):
        poi_repo.add(make_poi(1, lat=37.9800, lon=23.7300))
        poi_repo.add(make_poi(2, lat=37.9810, lon=23.7310))
        near = poi_repo.nearest_within(GeoPoint(37.9801, 23.7301), radius_m=200)
        assert near.poi_id == 1
        assert poi_repo.nearest_within(GeoPoint(40.0, 25.0), radius_m=100) is None

    def test_next_poi_id(self, poi_repo):
        assert poi_repo.next_poi_id() == 1
        poi_repo.add(make_poi(41))
        assert poi_repo.next_poi_id() == 42


class TestSocialInfoRepository:
    def test_store_and_get(self, cluster):
        repo = SocialInfoRepository(cluster)
        friends = [FriendInfo("fb_%d" % i, "F%d" % i, "pic%d" % i) for i in range(50)]
        repo.store_friends(1, "facebook", friends, timestamp=10)
        got = repo.get_friends(1, "facebook")
        assert got == friends
        assert repo.get_friends(1, "twitter") == []
        assert repo.get_friends(2, "facebook") == []

    def test_multiple_networks(self, cluster):
        repo = SocialInfoRepository(cluster)
        repo.store_friends(1, "facebook", [FriendInfo("fb_2", "A", "p")], 10)
        repo.store_friends(1, "twitter", [FriendInfo("tw_3", "B", "p")], 11)
        assert repo.linked_networks(1) == ["facebook", "twitter"]
        both = repo.get_all_friends(1)
        assert set(both) == {"facebook", "twitter"}

    def test_newer_list_replaces(self, cluster):
        repo = SocialInfoRepository(cluster)
        repo.store_friends(1, "facebook", [FriendInfo("fb_2", "A", "p")], 10)
        repo.store_friends(1, "facebook", [FriendInfo("fb_3", "B", "p")], 20)
        got = repo.get_friends(1, "facebook")
        assert [f.network_user_id for f in got] == ["fb_3"]


class TestTextRepository:
    def test_store_and_query_by_user_poi_time(self, cluster):
        repo = TextRepository(cluster)
        for ts in (100, 200, 300):
            repo.store(CommentRecord(1, 7, ts, "text@%d" % ts, 0.7))
        repo.store(CommentRecord(1, 8, 150, "other poi", 0.3))
        repo.store(CommentRecord(2, 7, 150, "other user", 0.4))
        got = repo.comments(1, 7, since=100, until=300)
        assert [c.timestamp for c in got] == [100, 200]
        assert all(c.user_id == 1 and c.poi_id == 7 for c in got)

    def test_unbounded_window(self, cluster):
        repo = TextRepository(cluster)
        repo.store(CommentRecord(1, 7, 100, "a", 0.5))
        assert len(repo.comments(1, 7)) == 1

    def test_user_comments_across_pois(self, cluster):
        repo = TextRepository(cluster)
        repo.store(CommentRecord(1, 7, 100, "a", 0.5))
        repo.store(CommentRecord(1, 9, 200, "b", 0.5))
        repo.store(CommentRecord(3, 7, 100, "c", 0.5))
        got = repo.user_comments(1)
        assert {c.poi_id for c in got} == {7, 9}
        bounded = repo.user_comments(1, since=150)
        assert [c.poi_id for c in bounded] == [9]

    def test_roundtrip_with_awkward_ids(self, cluster):
        # ids whose byte encoding contains the separator byte 0x1f.
        repo = TextRepository(cluster)
        repo.store(CommentRecord(31, 0x1F1F, 0x1F, "tricky", 0.9))
        got = repo.comments(31, 0x1F1F)
        assert len(got) == 1
        assert got[0].timestamp == 0x1F
        assert got[0].text == "tricky"


class TestVisitsRepository:
    def test_store_and_scan_newest_first(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4)
        for ts in (100, 300, 200):
            repo.store(VisitStruct(user_id=5, poi_id=ts, timestamp=ts, grade=0.5))
        got = repo.visits_of_user(5)
        assert [v.timestamp for v in got] == [300, 200, 100]

    def test_time_window_is_key_range(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4)
        for ts in range(100, 200, 10):
            repo.store(VisitStruct(user_id=5, poi_id=ts, timestamp=ts, grade=0.5))
        got = repo.visits_of_user(5, since=120, until=160)
        assert [v.timestamp for v in got] == [150, 140, 130, 120]

    def test_users_isolated(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4)
        repo.store(VisitStruct(user_id=1, poi_id=1, timestamp=100, grade=0.1))
        repo.store(VisitStruct(user_id=2, poi_id=2, timestamp=100, grade=0.2))
        assert [v.poi_id for v in repo.visits_of_user(1)] == [1]
        assert [v.poi_id for v in repo.visits_of_user(2)] == [2]

    def test_replicated_schema_carries_poi_info(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4)
        repo.store(
            VisitStruct(
                user_id=1, poi_id=7, timestamp=100, grade=0.9,
                poi_name="Taverna", lat=37.98, lon=23.73,
                keywords=("food",),
            )
        )
        got = repo.visits_of_user(1)[0]
        assert got.poi_name == "Taverna"
        assert got.keywords == ("food",)

    def test_normalized_schema_drops_poi_info(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4, schema_mode="normalized")
        repo.store(
            VisitStruct(user_id=1, poi_id=7, timestamp=100, grade=0.9,
                        poi_name="Taverna", lat=37.98, lon=23.73)
        )
        got = repo.visits_of_user(1)[0]
        assert got.poi_name == ""
        assert got.poi_id == 7
        assert got.grade == 0.9

    def test_invalid_schema_mode(self, cluster):
        with pytest.raises(ValidationError):
            VisitsRepository(cluster, schema_mode="wat")

    def test_all_visits_window_filter(self, cluster):
        repo = VisitsRepository(cluster, num_regions=4)
        for uid in (1, 2, 3):
            for ts in (100, 500):
                repo.store(VisitStruct(user_id=uid, poi_id=uid, timestamp=ts,
                                       grade=0.5))
        windowed = list(repo.all_visits(since=200))
        assert len(windowed) == 3
        assert all(v.timestamp == 500 for v in windowed)

    def test_separator_byte_user_ids_roundtrip(self, cluster):
        # User 18's hash salt contains 0x1f; the regression this guards.
        repo = VisitsRepository(cluster, num_regions=4)
        for uid in (18, 31, 0x1F00):
            repo.store(VisitStruct(user_id=uid, poi_id=1, timestamp=100, grade=0.5))
        assert len(list(repo.all_visits())) == 3
        for uid in (18, 31, 0x1F00):
            assert [v.user_id for v in repo.visits_of_user(uid)] == [uid]


class TestGPSTracesRepository:
    def test_push_and_window_scan(self, cluster):
        repo = GPSTracesRepository(cluster)
        pts = [
            GPSPoint(user_id=1, lat=37.98, lon=23.73, timestamp=100),
            GPSPoint(user_id=2, lat=37.99, lon=23.74, timestamp=200),
            GPSPoint(user_id=1, lat=38.00, lon=23.75, timestamp=300),
        ]
        assert repo.push_many(pts) == 3
        got = list(repo.scan_window(since=150, until=301))
        assert {p.timestamp for p in got} == {200, 300}

    def test_user_trace_time_ordered(self, cluster):
        repo = GPSTracesRepository(cluster)
        repo.push(GPSPoint(user_id=1, lat=37.98, lon=23.73, timestamp=300))
        repo.push(GPSPoint(user_id=1, lat=37.99, lon=23.74, timestamp=100))
        repo.push(GPSPoint(user_id=2, lat=37.97, lon=23.72, timestamp=200))
        trace = repo.user_trace(1)
        assert [p.timestamp for p in trace] == [100, 300]

    def test_coordinates_roundtrip(self, cluster):
        repo = GPSTracesRepository(cluster)
        repo.push(GPSPoint(user_id=7, lat=37.123456, lon=23.654321, timestamp=50))
        got = list(repo.scan_window())[0]
        assert got.lat == pytest.approx(37.123456)
        assert got.lon == pytest.approx(23.654321)
        assert got.user_id == 7


class TestBlogsRepository:
    def _visits(self):
        return [
            BlogVisit(poi_id=1, poi_name="Cafe", arrival=100, departure=200),
            BlogVisit(poi_id=2, poi_name="Museum", arrival=300, departure=400),
        ]

    def test_create_and_get(self):
        repo = BlogsRepository(SqlEngine())
        blog = repo.create(user_id=1, day="2015-05-31", visits=self._visits())
        got = repo.get(blog.blog_id)
        assert got.day == "2015-05-31"
        assert [v.poi_name for v in got.visits] == ["Cafe", "Museum"]
        assert repo.get(999) is None

    def test_for_user_sorted_by_day(self):
        repo = BlogsRepository(SqlEngine())
        repo.create(1, "2015-06-02", self._visits())
        repo.create(1, "2015-06-01", self._visits())
        repo.create(2, "2015-06-03", self._visits())
        days = [b.day for b in repo.for_user(1)]
        assert days == ["2015-06-01", "2015-06-02"]

    def test_update_visits_validates_times(self):
        repo = BlogsRepository(SqlEngine())
        blog = repo.create(1, "2015-05-31", self._visits())
        bad = [BlogVisit(poi_id=1, poi_name="X", arrival=500, departure=100)]
        with pytest.raises(ValidationError):
            repo.update_visits(blog.blog_id, bad)

    def test_mark_published_idempotent(self):
        repo = BlogsRepository(SqlEngine())
        blog = repo.create(1, "2015-05-31", self._visits())
        repo.mark_published(blog.blog_id, "facebook")
        repo.mark_published(blog.blog_id, "facebook")
        assert repo.get(blog.blog_id).published_to == ("facebook",)
