"""Tests for scan filters (including range narrowing)."""

import pytest

from repro.hbase import (
    AndFilter,
    Cell,
    ColumnFilter,
    PrefixFilter,
    Region,
    RowRangeFilter,
    ScanFilter,
    TimestampRangeFilter,
    ValuePredicateFilter,
)


def cell(row, ts=1, value=b"v", qualifier=b"q", family="f"):
    return Cell(row=row, family=family, qualifier=qualifier, timestamp=ts,
                value=value)


class TestFilterSemantics:
    def test_base_filter_accepts_everything(self):
        f = ScanFilter()
        assert f.accept(cell(b"anything"))
        assert f.row_range() == (None, None)

    def test_prefix_filter_narrows_range(self):
        f = PrefixFilter(b"user1")
        start, stop = f.row_range()
        assert start == b"user1"
        assert stop == b"user2"
        assert f.accept(cell(b"user1-x"))
        assert not f.accept(cell(b"user2-x"))

    def test_row_range_filter(self):
        f = RowRangeFilter(b"c", b"g")
        assert not f.accept(cell(b"b"))
        assert f.accept(cell(b"c"))  # start inclusive
        assert f.accept(cell(b"f"))
        assert not f.accept(cell(b"g"))  # stop exclusive
        assert f.row_range() == (b"c", b"g")

    def test_unbounded_row_range(self):
        f = RowRangeFilter(None, b"m")
        assert f.accept(cell(b"a"))
        assert not f.accept(cell(b"z"))

    def test_column_filter(self):
        f = ColumnFilter("f", b"q1")
        assert f.accept(cell(b"r", qualifier=b"q1"))
        assert not f.accept(cell(b"r", qualifier=b"q2"))
        assert not f.accept(cell(b"r", qualifier=b"q1", family="g"))
        family_only = ColumnFilter("f")
        assert family_only.accept(cell(b"r", qualifier=b"anything"))

    def test_value_predicate_filter(self):
        f = ValuePredicateFilter(lambda v: v.startswith(b"keep"))
        assert f.accept(cell(b"r", value=b"keep-me"))
        assert not f.accept(cell(b"r", value=b"drop-me"))

    def test_timestamp_range_filter(self):
        f = TimestampRangeFilter(10, 20)
        assert not f.accept(cell(b"r", ts=9))
        assert f.accept(cell(b"r", ts=10))
        assert f.accept(cell(b"r", ts=19))
        assert not f.accept(cell(b"r", ts=20))

    def test_and_filter_conjunction(self):
        f = AndFilter([PrefixFilter(b"u"), TimestampRangeFilter(5, 15)])
        assert f.accept(cell(b"u1", ts=10))
        assert not f.accept(cell(b"u1", ts=20))
        assert not f.accept(cell(b"x1", ts=10))

    def test_and_filter_range_intersection(self):
        f = AndFilter([
            RowRangeFilter(b"b", b"y"),
            PrefixFilter(b"m"),  # [m, n)
        ])
        start, stop = f.row_range()
        assert start == b"m"
        assert stop == b"n"

    def test_and_filter_disjoint_ranges_scan_empty(self):
        region = Region(families=["f"])
        for row in (b"a", b"m", b"z"):
            region.put(cell(row))
        f = AndFilter([RowRangeFilter(b"a", b"c"), RowRangeFilter(b"x", None)])
        assert list(region.scan("f", scan_filter=f)) == []


class TestFiltersInsideRegionScan:
    def test_prefix_scan_skips_unrelated_rows(self):
        region = Region(families=["f"])
        for i in range(100):
            region.put(cell(b"user%02d" % i))
        rows = [c.row for c in region.scan("f", scan_filter=PrefixFilter(b"user5"))]
        assert rows == [b"user5%d" % i for i in range(10)]

    def test_value_filter_on_newest_version_only(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1, value=b"match"))
        region.put(cell(b"r", ts=2, value=b"nomatch"))
        f = ValuePredicateFilter(lambda v: v == b"match")
        # The newest version fails the filter; the shadowed older
        # version must NOT resurface.
        assert list(region.scan("f", scan_filter=f)) == []

    def test_combined_filters_in_scan(self):
        region = Region(families=["f"])
        region.put(cell(b"u1", ts=5, value=b"yes"))
        region.put(cell(b"u2", ts=50, value=b"yes"))
        region.put(cell(b"u3", ts=5, value=b"no"))
        f = AndFilter([
            TimestampRangeFilter(0, 10),
            ValuePredicateFilter(lambda v: v == b"yes"),
        ])
        rows = [c.row for c in region.scan("f", scan_filter=f)]
        assert rows == [b"u1"]
