"""Tests for relational schemas and heap tables."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.sqlstore import (
    Column,
    ColumnType,
    HashIndex,
    OrderedIndex,
    SpatialIndex,
    HeapTable,
    TableSchema,
)


def poi_schema():
    return TableSchema(
        name="pois",
        columns=[
            Column("poi_id", ColumnType.INTEGER),
            Column("name", ColumnType.TEXT),
            Column("lat", ColumnType.FLOAT),
            Column("lon", ColumnType.FLOAT),
            Column("keywords", ColumnType.TEXT_ARRAY, default=[]),
            Column("hotness", ColumnType.FLOAT, default=0.0),
            Column("notes", ColumnType.TEXT, nullable=True),
        ],
        primary_key="poi_id",
    )


def row(poi_id=1, **kwargs):
    base = {"poi_id": poi_id, "name": "x", "lat": 37.0, "lon": 23.0}
    base.update(kwargs)
    return base


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=[
                    Column("a", ColumnType.INTEGER),
                    Column("a", ColumnType.TEXT),
                ],
                primary_key="a",
            )

    def test_pk_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=[Column("a", ColumnType.INTEGER)],
                primary_key="b",
            )

    def test_type_validation(self):
        schema = poi_schema()
        with pytest.raises(SchemaError):
            schema.validate_row(row(name=42))
        with pytest.raises(SchemaError):
            schema.validate_row(row(lat="north"))
        with pytest.raises(SchemaError):
            schema.validate_row(row(keywords=["ok", 3]))

    def test_boolean_not_accepted_as_integer(self):
        schema = poi_schema()
        with pytest.raises(SchemaError):
            schema.validate_row(row(poi_id=True))

    def test_int_coerced_to_float(self):
        validated = poi_schema().validate_row(row(lat=37))
        assert validated["lat"] == 37.0
        assert isinstance(validated["lat"], float)

    def test_defaults_and_nullable(self):
        validated = poi_schema().validate_row(row())
        assert validated["hotness"] == 0.0
        assert validated["keywords"] == []
        assert validated["notes"] is None

    def test_missing_required_rejected(self):
        with pytest.raises(SchemaError):
            poi_schema().validate_row({"poi_id": 1})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            poi_schema().validate_row(row(bogus=1))


class TestHeapTable:
    def test_insert_and_get_by_pk(self):
        table = HeapTable(poi_schema())
        table.insert(row(poi_id=7, name="seven"))
        got = table.get_by_pk(7)
        assert got["name"] == "seven"
        assert table.get_by_pk(8) is None

    def test_pk_uniqueness(self):
        table = HeapTable(poi_schema())
        table.insert(row(poi_id=1))
        with pytest.raises(SchemaError):
            table.insert(row(poi_id=1))

    def test_update_maintains_indexes(self):
        table = HeapTable(poi_schema())
        table.create_index(OrderedIndex("hotness"))
        rid = table.insert(row(poi_id=1, hotness=1.0))
        table.update(rid, {"hotness": 9.0})
        index = table.index_for_column("hotness")
        assert index.lookup(9.0) == {rid}
        assert index.lookup(1.0) == set()

    def test_update_pk_collision_rejected(self):
        table = HeapTable(poi_schema())
        table.insert(row(poi_id=1))
        rid2 = table.insert(row(poi_id=2))
        with pytest.raises(SchemaError):
            table.update(rid2, {"poi_id": 1})

    def test_delete_cleans_indexes(self):
        table = HeapTable(poi_schema())
        table.create_index(HashIndex("name"))
        rid = table.insert(row(poi_id=1, name="gone"))
        table.delete(rid)
        assert table.index_for_column("name").lookup("gone") == set()
        assert len(table) == 0
        with pytest.raises(StorageError):
            table.delete(rid)

    def test_upsert(self):
        table = HeapTable(poi_schema())
        table.upsert(row(poi_id=1, name="first"))
        table.upsert(row(poi_id=1, name="second"))
        assert len(table) == 1
        assert table.get_by_pk(1)["name"] == "second"

    def test_index_backfill_on_create(self):
        table = HeapTable(poi_schema())
        for i in range(10):
            table.insert(row(poi_id=i, hotness=float(i)))
        table.create_index(OrderedIndex("hotness"))
        assert len(table.index_for_column("hotness")) == 10

    def test_duplicate_index_rejected(self):
        table = HeapTable(poi_schema())
        table.create_index(HashIndex("name"))
        with pytest.raises(StorageError):
            table.create_index(HashIndex("name"))

    def test_spatial_index_maintenance(self):
        table = HeapTable(poi_schema())
        table.create_index(SpatialIndex("lat", "lon"))
        rid = table.insert(row(poi_id=1, lat=37.5, lon=23.5))
        spatial = table.spatial_index()
        from repro.geo import BoundingBox

        assert spatial.search_bbox(BoundingBox(37, 23, 38, 24)) == {rid}
        table.update(rid, {"lat": 40.0, "lon": 22.0})
        assert spatial.search_bbox(BoundingBox(37, 23, 38, 24)) == set()
        assert spatial.search_bbox(BoundingBox(39, 21, 41, 23)) == {rid}

    def test_update_skips_indexes_on_unchanged_columns(self):
        """A hotness bump must not churn the spatial R-tree (the HOT
        update path the ingest tier's dirty-POI refresh rides on)."""
        table = HeapTable(poi_schema())
        table.create_index(SpatialIndex("lat", "lon"))
        table.create_index(OrderedIndex("hotness"))
        rid = table.insert(row(poi_id=1, lat=37.5, lon=23.5, hotness=1.0))
        spatial = table.spatial_index()

        calls = {"remove": 0, "insert": 0}
        real_remove, real_insert = spatial.remove, spatial.insert

        def counting_remove(key, r):
            calls["remove"] += 1
            return real_remove(key, r)

        def counting_insert(key, r):
            calls["insert"] += 1
            return real_insert(key, r)

        spatial.remove, spatial.insert = counting_remove, counting_insert
        try:
            table.update(rid, {"hotness": 9.0})
            assert calls == {"remove": 0, "insert": 0}
            # The changed column's index IS maintained.
            assert table.index_for_column("hotness").lookup(9.0) == {rid}
            # A genuine move still rewrites the spatial entry.
            table.update(rid, {"lat": 40.0})
            assert calls == {"remove": 1, "insert": 1}
        finally:
            spatial.remove, spatial.insert = real_remove, real_insert
        from repro.geo import BoundingBox

        assert spatial.search_bbox(BoundingBox(39, 23, 41, 24)) == {rid}

    def test_scan_returns_copies(self):
        table = HeapTable(poi_schema())
        table.insert(row(poi_id=1))
        for _rid, r in table.scan():
            r["name"] = "mutated"
        assert table.get_by_pk(1)["name"] == "x"
