"""Tests for cell serialization helpers and platform configuration."""

import pytest

from repro.config import (
    ClusterConfig,
    JobsConfig,
    PlatformConfig,
    SentimentConfig,
)
from repro.core.serialization import (
    decode_compressed_json,
    decode_float,
    decode_json,
    encode_compressed_json,
    encode_float,
    encode_json,
)
from repro.errors import ConfigError, StorageError


class TestSerialization:
    def test_json_roundtrip(self):
        value = {"name": "POI", "grade": 0.75, "keywords": ["a", "b"]}
        assert decode_json(encode_json(value)) == value

    def test_json_is_canonical(self):
        a = encode_json({"b": 1, "a": 2})
        b = encode_json({"a": 2, "b": 1})
        assert a == b  # sorted keys -> byte-identical cells

    def test_unserializable_rejected(self):
        with pytest.raises(StorageError):
            encode_json({"bad": object()})

    def test_invalid_bytes_rejected(self):
        with pytest.raises(StorageError):
            decode_json(b"\xff\xfe not json")

    def test_compressed_roundtrip_and_shrinks(self):
        friends = [{"id": "fb_%d" % i, "name": "Friend %d" % i,
                    "picture": "https://img/%d.jpg" % i} for i in range(500)]
        blob = encode_compressed_json(friends)
        assert decode_compressed_json(blob) == friends
        assert len(blob) < len(encode_json(friends)) / 2

    def test_compressed_rejects_plain_json(self):
        with pytest.raises(StorageError):
            decode_compressed_json(encode_json({"x": 1}))

    def test_float_roundtrip(self):
        for value in (0.0, -1.5, 3.14159, 1e-9, 2.0):
            assert decode_float(encode_float(value)) == value

    def test_float_invalid(self):
        with pytest.raises(StorageError):
            decode_float(b"not-a-float")


class TestConfigs:
    def test_cluster_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(cores_per_node=0)
        with pytest.raises(ConfigError):
            ClusterConfig(regions_per_table=0)

    def test_total_cores(self):
        assert ClusterConfig(num_nodes=4, cores_per_node=2).total_cores == 8

    def test_sentiment_presets(self):
        baseline = SentimentConfig.baseline()
        assert not baseline.use_tf
        assert not baseline.use_bigrams
        assert not baseline.use_bns
        assert baseline.min_occurrences == 0
        # Baseline keeps the preprocessing steps.
        assert baseline.stem and baseline.remove_stopwords and baseline.lowercase
        optimized = SentimentConfig.optimized()
        assert optimized.use_tf and optimized.use_bigrams and optimized.use_bns
        assert optimized.min_occurrences > 0

    def test_sentiment_validation(self):
        with pytest.raises(ConfigError):
            SentimentConfig(min_occurrences=-1)
        with pytest.raises(ConfigError):
            SentimentConfig(bns_keep_fraction=0.0)
        with pytest.raises(ConfigError):
            SentimentConfig(bns_keep_fraction=1.5)

    def test_jobs_validation(self):
        with pytest.raises(ConfigError):
            JobsConfig(dbscan_eps_m=0)
        with pytest.raises(ConfigError):
            JobsConfig(dbscan_min_points=0)

    def test_platform_presets(self):
        small = PlatformConfig.small()
        assert small.cluster.num_nodes == 4
        paper = PlatformConfig.paper(8)
        assert paper.cluster.num_nodes == 8
        with pytest.raises(ConfigError):
            PlatformConfig.paper(7)


class TestMergeAccounting:
    def test_results_drive_merge_cost(self):
        from repro.cluster import ClusterSimulation, Task

        sim = ClusterSimulation(ClusterConfig(num_nodes=2))
        sim.place_regions([0, 1])
        few = sim.run_query(
            [Task(region_id=0, records_scanned=1000, results_returned=1)]
        )
        many = sim.run_query(
            [Task(region_id=0, records_scanned=1000, results_returned=100000)]
        )
        assert many.latency_s > few.latency_s
        # Merge delta equals the cost model's per-item price exactly.
        cm = sim.cost_model
        assert many.latency_s - few.latency_s == pytest.approx(
            cm.merge_cost_s(100000 - 1)
        )
