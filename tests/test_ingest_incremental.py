"""Staleness oracle for the streaming ingest tier.

The incremental HotIn state must agree with a from-scratch batch
MapReduce recompute over the same visits — for any seeded interleaving
of producers, after crash/recover cycles, and across load-aware
repartitions.  Grades are dyadic rationals (exact in binary floating
point), so ``grade_sum`` equality is exact regardless of fold order;
the reconciliation pass is separately shown to repair any divergence.
"""

import random
import time

import pytest

from repro.config import ClusterConfig, IngestConfig, PlatformConfig
from repro.core.modules.hotin_update import IncrementalHotIn
from repro.core.platform import MoDisSENSE
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct

WINDOW = (0, 10_000)


def make_platform(**ingest_overrides):
    ingest_kwargs = dict(
        enabled=True,
        num_partitions=2,
        queue_capacity=1024,
        max_batch=64,
        rebalance_min_events=1,
    )
    ingest_kwargs.update(ingest_overrides)
    config = PlatformConfig(
        cluster=ClusterConfig(num_nodes=2, regions_per_table=8),
        ingest=IngestConfig(**ingest_kwargs),
    )
    platform = MoDisSENSE(config)
    for poi_id in range(1, 21):
        platform.poi_repository.add(
            POI(poi_id=poi_id, name="poi-%d" % poi_id,
                lat=38.0 + poi_id * 0.01, lon=23.7,
                keywords=("k%d" % poi_id,), category="test")
        )
    return platform


def make_visits(seed, n=300, num_users=40, num_pois=20):
    """Seeded visit stream with dyadic grades (order-exact float sums)."""
    rng = random.Random(seed)
    visits = [
        VisitStruct(
            user_id=rng.randrange(1, num_users + 1),
            poi_id=rng.randrange(1, num_pois + 1),
            timestamp=rng.randrange(WINDOW[0] + 1, WINDOW[1]),
            grade=rng.randrange(0, 21) * 0.25,
            poi_name="p",
        )
        for _ in range(n)
    ]
    # Distinct (user, ts, poi) triples: duplicate row keys would make the
    # table overwrite while the incremental state double-counts, which is
    # an application-semantics question, not an ingest-correctness one.
    seen = set()
    unique = []
    for v in visits:
        key = (v.user_id, v.timestamp, v.poi_id)
        if key not in seen:
            seen.add(key)
            unique.append(v)
    return unique


def batch_truth(platform, since, until):
    """From-scratch MapReduce recompute: ``{poi: (count, grade_sum)}``."""
    pairs, _scanned = platform.hotin_update._aggregate(
        since, until, "oracle"
    )
    return {poi_id: (count, gsum) for poi_id, (count, gsum) in pairs}


def wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestIncrementalOracle:
    @pytest.mark.parametrize("seed", [0, 7, 2015])
    def test_incremental_equals_batch_recompute(self, seed):
        with make_platform() as platform:
            visits = make_visits(seed)
            rng = random.Random(seed + 1)
            # Interleave submissions in random-sized chunks so applier
            # batches cut the stream differently every seed.
            i = 0
            while i < len(visits):
                chunk = visits[i:i + rng.randrange(1, 17)]
                platform.ingest_visits(chunk)
                i += len(chunk)
            assert platform.ingest.drain()

            truth = batch_truth(platform, *WINDOW)
            observed = platform.incremental_hotin.snapshot(*WINDOW)
            assert observed == truth

            report = platform.reconcile_hotin(*WINDOW)
            assert report.in_sync
            assert report.mismatched == 0

    def test_any_window_sums_exactly(self):
        with make_platform() as platform:
            platform.ingest_visits(make_visits(42))
            assert platform.ingest.drain()
            for since, until in [(0, 2500), (2500, 7500), (9000, 10_000)]:
                truth = batch_truth(platform, since, until)
                assert platform.incremental_hotin.snapshot(
                    since, until
                ) == truth

    def test_poi_rows_track_incremental_aggregates(self):
        with make_platform() as platform:
            visits = make_visits(3)
            platform.ingest_visits(visits)
            assert platform.ingest.drain()
            truth = batch_truth(platform, *WINDOW)
            for poi_id, (count, gsum) in truth.items():
                poi = platform.poi_repository.get(poi_id)
                assert poi.hotness == float(count)
                assert poi.interest == gsum / count
            # Freshness: the event-time watermark reached the stream's end.
            assert platform.incremental_hotin.watermark == max(
                v.timestamp for v in visits
            )


class TestReconcile:
    def test_reconcile_repairs_out_of_band_writes(self):
        with make_platform() as platform:
            platform.ingest_visits(make_visits(11, n=100))
            assert platform.ingest.drain()
            # Out-of-band single-put path: the table moves, the
            # incremental state does not.
            rogue = [
                VisitStruct(user_id=900 + i, poi_id=5, timestamp=500 + i,
                            grade=1.0)
                for i in range(4)
            ]
            for v in rogue:
                platform.visits_repository.store(v)
            truth = batch_truth(platform, *WINDOW)
            assert platform.incremental_hotin.snapshot(*WINDOW) != truth

            report = platform.reconcile_hotin(*WINDOW)
            assert not report.in_sync
            assert report.mismatched >= 1
            assert platform.incremental_hotin.snapshot(*WINDOW) == truth
            # Idempotent: a second pass over the same window is clean.
            assert platform.reconcile_hotin(*WINDOW).in_sync

    def test_reconcile_rewrites_poi_rows(self):
        with make_platform() as platform:
            platform.ingest_visits(make_visits(13, n=60))
            assert platform.ingest.drain()
            platform.poi_repository.update_hotin(
                1, hotness=9999.0, interest=-1.0
            )  # corrupt a row out of band
            # Force POI 1 into the mismatch set by storing a rogue visit.
            platform.visits_repository.store(
                VisitStruct(user_id=901, poi_id=1, timestamp=777, grade=0.5)
            )
            platform.reconcile_hotin(*WINDOW)
            truth = batch_truth(platform, *WINDOW)
            count, gsum = truth[1]
            poi = platform.poi_repository.get(1)
            assert poi.hotness == float(count)
            assert poi.interest == gsum / count


class TestCrashRecovery:
    def test_crash_between_commit_and_fold_loses_nothing(self):
        with make_platform(num_partitions=1, max_batch=512) as platform:
            tier = platform.ingest
            head = make_visits(21, n=80)
            platform.ingest_visits(head)
            assert tier.drain()
            before = platform.incremental_hotin.deltas_folded

            tier.inject_crash(0)
            tail = make_visits(22, n=40)
            # Keep (user, ts, poi) keys disjoint from the head stream.
            tail = [
                VisitStruct(user_id=v.user_id + 1000, poi_id=v.poi_id,
                            timestamp=v.timestamp, grade=v.grade)
                for v in tail
            ]
            platform.ingest_visits(tail)
            assert wait_for(lambda: tier.crashed_partitions() == [0])

            # The crashed batch group-committed durably but never folded:
            # the incremental state is now behind the table.
            assert platform.incremental_hotin.deltas_folded < (
                before + len(tail)
            )
            assert batch_truth(platform, *WINDOW) != (
                platform.incremental_hotin.snapshot(*WINDOW)
            ) or tier._queues[0].depth() > 0

            replayed = tier.recover(0)
            assert replayed >= 1  # the committed-but-unfolded suffix
            assert tier.drain()  # the queued remainder lands normally

            # Exactly-once: equality with the batch recompute rules out
            # both lost folds and WAL-replay double counts.
            truth = batch_truth(platform, *WINDOW)
            assert platform.incremental_hotin.snapshot(*WINDOW) == truth
            assert platform.incremental_hotin.deltas_folded == (
                before + len(tail)
            )
            assert platform.reconcile_hotin(*WINDOW).in_sync
            assert tier.recoveries == 1

    def test_recover_refuses_healthy_partition(self):
        with make_platform() as platform:
            from repro.errors import ValidationError

            with pytest.raises(ValidationError):
                platform.ingest.recover(0)


class TestRepartitioning:
    def test_rebalance_mid_stream_preserves_aggregates(self):
        with make_platform(num_partitions=3, max_batch=16) as platform:
            tier = platform.ingest
            visits = make_visits(31, n=400, num_users=60)
            third = len(visits) // 3
            platform.ingest_visits(visits[:third])
            event = tier.maybe_rebalance(force=True)
            platform.ingest_visits(visits[third:2 * third])
            tier.maybe_rebalance(force=True)
            platform.ingest_visits(visits[2 * third:])
            assert tier.drain()

            truth = batch_truth(platform, *WINDOW)
            assert platform.incremental_hotin.snapshot(*WINDOW) == truth
            if event is not None:
                assert event["from_partition"] != event["to_partition"]
                assert tier.rebalances >= 1
                assert tier.rebalance_log

    def test_hot_partition_donates_a_region(self):
        with make_platform(num_partitions=2) as platform:
            tier = platform.ingest
            with tier._lock:
                partition_of = dict(tier._partition_of)
            hot_regions = [r for r, p in partition_of.items() if p == 0]
            assert len(hot_regions) >= 2
            # Fabricate a skewed observation window: all load on 0.
            with tier._lock:
                tier._region_counts = {r: 100 for r in hot_regions}
            event = tier.maybe_rebalance()
            assert event is not None
            assert event["from_partition"] == 0
            assert event["to_partition"] == 1
            with tier._lock:
                assert tier._partition_of[event["moved_region"]] == 1

    def test_balanced_load_is_left_alone(self):
        with make_platform(num_partitions=2) as platform:
            tier = platform.ingest
            with tier._lock:
                partition_of = dict(tier._partition_of)
                tier._region_counts = {r: 50 for r in partition_of}
            assert tier.maybe_rebalance() is None


class TestSchedulerWiring:
    def test_reconcile_replaces_batch_job(self):
        from repro.core.scheduler import build_platform_scheduler

        with make_platform() as platform:
            scheduler = build_platform_scheduler(platform)
            names = set(scheduler._jobs)
            assert "hotin_reconcile" in names
            assert "ingest_rebalance" in names
            assert "hotin_update" not in names

            platform.ingest_visits(make_visits(5, n=50))
            assert platform.ingest.drain()
            period = platform.config.ingest.reconcile_period_s
            scheduler.advance_to(period + 1)
            job = scheduler.job("hotin_reconcile")
            assert job.fire_count == 1
            assert job.last_error is None

    def test_batch_job_kept_when_ingest_disabled(self):
        from repro.core.scheduler import build_platform_scheduler

        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=2, regions_per_table=4)
        )
        with MoDisSENSE(config) as platform:
            scheduler = build_platform_scheduler(platform)
            assert "hotin_update" in scheduler._jobs
            assert "hotin_reconcile" not in scheduler._jobs


class TestIncrementalUnit:
    def test_fold_and_window_sums(self):
        inc = IncrementalHotIn()
        inc.fold([(1, 10, 0.5), (1, 20, 1.0), (2, 10, 0.25)])
        assert inc.snapshot() == {1: (2, 1.5), 2: (1, 0.25)}
        assert inc.snapshot(since=15) == {1: (1, 1.0)}
        assert inc.snapshot(until=15) == {1: (1, 0.5), 2: (1, 0.25)}
        assert inc.pairs() == [(1, (2, 0.75)), (2, (1, 0.25))]

    def test_folds_commute(self):
        deltas = [(i % 3, i, 0.25 * (i % 5)) for i in range(50)]
        a, b = IncrementalHotIn(), IncrementalHotIn()
        a.fold(deltas)
        b.fold(reversed(deltas))
        assert a.snapshot() == b.snapshot()

    def test_prune_bounds_memory(self):
        inc = IncrementalHotIn()
        inc.fold([(1, ts, 1.0) for ts in range(10)])
        removed = inc.prune(5)
        assert removed == 5
        assert inc.pruned_below == 5
        assert inc.snapshot() == {1: (5, 5.0)}

    def test_repair_window_is_idempotent(self):
        inc = IncrementalHotIn()
        inc.fold([(1, 10, 1.0), (1, 20, 1.0)])
        inc.repair_window(1, 0, 100, count=5, grade_sum=2.5)
        assert inc.snapshot(0, 100) == {1: (5, 2.5)}
        inc.repair_window(1, 0, 100, count=5, grade_sum=2.5)
        assert inc.snapshot(0, 100) == {1: (5, 2.5)}
