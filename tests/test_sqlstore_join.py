"""Tests for the hash join."""

import pytest

from repro.errors import QueryError
from repro.sqlstore import (
    Column,
    ColumnType,
    Eq,
    JoinSpec,
    Query,
    SqlEngine,
    TableSchema,
    hash_join,
)


@pytest.fixture()
def engine():
    eng = SqlEngine()
    eng.create_table(
        TableSchema(
            name="pois",
            columns=[
                Column("poi_id", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("category", ColumnType.TEXT, default="misc"),
            ],
            primary_key="poi_id",
        )
    )
    eng.create_table(
        TableSchema(
            name="visits",
            columns=[
                Column("visit_id", ColumnType.INTEGER),
                Column("poi_id", ColumnType.INTEGER, nullable=True),
                Column("grade", ColumnType.FLOAT),
                Column("name", ColumnType.TEXT, default="visitor"),
            ],
            primary_key="visit_id",
        )
    )
    for poi_id, name, cat in [(1, "Cafe", "cafe"), (2, "Bar", "bar"),
                              (3, "Museum", "museum")]:
        eng.insert("pois", {"poi_id": poi_id, "name": name, "category": cat})
    for visit_id, poi_id, grade in [(10, 1, 0.9), (11, 1, 0.7), (12, 2, 0.4),
                                    (13, 99, 0.5), (14, None, 0.1)]:
        eng.insert("visits", {"visit_id": visit_id, "poi_id": poi_id,
                              "grade": grade})
    return eng


class TestHashJoin:
    def test_inner_join_matches(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois"),
                left_key="poi_id",
                right_key="poi_id",
            ),
        )
        # Visits 10, 11 (poi 1) and 12 (poi 2); 13 dangles, 14 is NULL.
        assert len(rows) == 3
        by_visit = {r["visit_id"]: r for r in rows}
        assert by_visit[10]["pois.name"] == "Cafe"
        assert by_visit[12]["pois.name"] == "Bar"

    def test_column_collision_prefixed(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois"),
                left_key="poi_id",
                right_key="poi_id",
            ),
        )
        # Both tables have "name": the visit's survives unprefixed.
        assert rows[0]["name"] == "visitor"
        assert "pois.name" in rows[0]

    def test_left_join_keeps_dangling_rows(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois"),
                left_key="poi_id",
                right_key="poi_id",
                kind="left",
            ),
        )
        assert len(rows) == 5
        dangling = next(r for r in rows if r["visit_id"] == 13)
        assert dangling["pois.name"] is None

    def test_null_keys_never_match(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois"),
                left_key="poi_id",
                right_key="poi_id",
            ),
        )
        assert all(r["visit_id"] != 14 for r in rows)

    def test_join_respects_where_clauses(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois", where=Eq("category", "cafe")),
                left_key="poi_id",
                right_key="poi_id",
            ),
        )
        assert {r["visit_id"] for r in rows} == {10, 11}

    def test_one_to_many_fanout(self, engine):
        rows = hash_join(
            engine,
            JoinSpec(
                left=Query(table="pois", where=Eq("poi_id", 1)),
                right=Query(table="visits"),
                left_key="poi_id",
                right_key="poi_id",
            ),
        )
        assert len(rows) == 2  # the cafe has two visits

    def test_invalid_kind(self, engine):
        with pytest.raises(QueryError):
            JoinSpec(
                left=Query(table="visits"),
                right=Query(table="pois"),
                left_key="poi_id",
                right_key="poi_id",
                kind="full_outer",
            )
