"""Property-based proofs of the threshold-algorithm invariants
(:mod:`repro.core.modules.topk`), driven directly on synthetic
per-region score distributions.

Invariants pinned here:

1. **Bound soundness / exactness** — for any generated distribution,
   merging the streams and ranking the candidates with the documented
   stable key ``(-score, -visit_count, poi_id)`` equals a brute-force
   fold-everything-then-rank run, bit-exactly, for both scoring modes.
2. **Frontier monotonicity** — each region's upper bound on its
   unemitted items never increases as emission advances.
3. **Never prunes a true top-k member** — every brute-force top-k POI
   is in the merger's candidate set; any *undiscovered* POI scores
   strictly below the final threshold (so it cannot even tie at k).
4. **Tie determinism** — distributions engineered for heavy score ties
   at the k-th position resolve identically pruned vs exhaustive
   (``_rank``'s key is total: ties fall through visit count to poi id).
"""

from hypothesis import given, settings, strategies as st

from repro.core.modules.query_answering import VisitScanCoprocessor
from repro.core.modules.topk import TopKMerger, TopKPartialStream

#: Grades mirror the data model: finite non-negative floats.
GRADES = st.floats(
    min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False
)

#: One region's visits: poi_id -> grades of that POI's visits there.
REGION = st.dictionaries(
    st.integers(min_value=1, max_value=30),
    st.lists(GRADES, min_size=1, max_size=5),
    max_size=12,
)

REGIONS = st.lists(REGION, min_size=1, max_size=5)

#: Tie-heavy variant: two distinct grades and tiny counts make score
#: collisions at the k-th position overwhelmingly likely.
TIE_REGION = st.dictionaries(
    st.integers(min_value=1, max_value=12),
    st.lists(st.sampled_from((1.0, 2.0)), min_size=1, max_size=3),
    max_size=8,
)

TIE_REGIONS = st.lists(TIE_REGION, min_size=1, max_size=4)


def build_streams(regions, k, hotness, batch):
    """Streams exactly as ``VisitScanCoprocessor._run_topk`` builds
    them: exact aggregates, local-key sort with poi_id tie-break, and a
    pre-seeded attribute memo (no filter, no lazy decode needed)."""
    streams = []
    for region_id, visits in enumerate(regions):
        aggregates = {
            pid: (_ordered_sum(grades), len(grades))
            for pid, grades in visits.items()
        }
        if hotness:
            items = sorted(
                ((pid, gs, cnt) for pid, (gs, cnt) in aggregates.items()),
                key=lambda item: (-item[2], item[0]),
            )
        else:
            items = sorted(
                ((pid, gs, cnt) for pid, (gs, cnt) in aggregates.items()),
                key=lambda item: (-(item[1] / item[2]), item[0]),
            )
        streams.append(
            TopKPartialStream(
                region_id=region_id,
                items=items,
                aggregates=aggregates,
                raw={},
                attrs={pid: ("p%d" % pid, 0.0, 0.0, ()) for pid in visits},
                top_k=k,
                hotness=hotness,
                batch=batch,
            )
        )
    return streams


def _ordered_sum(grades):
    """Left-to-right float fold, the region scan's addition order."""
    total = 0.0
    for grade in grades:
        total += grade
    return total


def brute_force(regions, k, hotness):
    """Fold every region's exact aggregate in ascending region order —
    the exhaustive web-tier merge — then rank with the documented key."""
    merged = {}
    for visits in regions:  # list index == region_id == ascending order
        for pid, grades in visits.items():
            gs, cnt = _ordered_sum(grades), len(grades)
            entry = merged.get(pid)
            if entry is None:
                merged[pid] = [gs, cnt]
            else:
                entry[0] += gs
                entry[1] += cnt
    scored = [
        (
            float(cnt) if hotness else gs / cnt,  # score
            cnt,
            pid,
        )
        for pid, (gs, cnt) in merged.items()
    ]
    scored.sort(key=lambda row: (-row[0], -row[1], row[2]))
    return merged, scored[:k]


def ranked_candidates(merged_six_tuples, k, hotness):
    scored = [
        (float(cnt) if hotness else gs / cnt, cnt, pid)
        for pid, gs, cnt, _name, _lat, _lon in merged_six_tuples
    ]
    scored.sort(key=lambda row: (-row[0], -row[1], row[2]))
    return scored[:k]


@settings(max_examples=120, deadline=None)
@given(
    regions=REGIONS,
    k=st.integers(min_value=1, max_value=8),
    hotness=st.booleans(),
    batch=st.integers(min_value=1, max_value=6),
)
def test_pruned_ranking_equals_bruteforce(regions, k, hotness, batch):
    """Invariant 1: bit-exact equality against fold-everything."""
    streams = build_streams(regions, k, hotness, batch)
    merged, stats = TopKMerger(k=k, hotness=hotness).merge(streams)
    brute_merged, brute_top = brute_force(regions, k, hotness)
    assert ranked_candidates(merged, k, hotness) == brute_top
    # Candidate aggregates are the exact global fold, bit for bit.
    for pid, gs, cnt, _n, _la, _lo in merged:
        assert (gs, cnt) == tuple(brute_merged[pid])
    assert stats["cells_avoided"] == sum(s.remaining for s in streams)


@settings(max_examples=80, deadline=None)
@given(
    regions=REGIONS,
    k=st.integers(min_value=1, max_value=8),
    hotness=st.booleans(),
    batch=st.integers(min_value=1, max_value=4),
)
def test_frontier_monotone_nonincreasing(regions, k, hotness, batch):
    """Invariant 2: a region's bound never rises as it emits."""
    for stream in build_streams(regions, k, hotness, batch):
        previous = None
        while True:
            frontier = stream.frontier()
            if frontier is None:
                break
            if previous is not None:
                assert frontier <= previous
            previous = frontier
            if not stream.next_batch() and stream.finished:
                break


@settings(max_examples=120, deadline=None)
@given(
    regions=REGIONS,
    k=st.integers(min_value=1, max_value=6),
    hotness=st.booleans(),
    batch=st.integers(min_value=1, max_value=4),
)
def test_threshold_never_prunes_a_topk_member(regions, k, hotness, batch):
    """Invariant 3: brute-force top-k ⊆ candidates, and everything left
    undiscovered scores strictly below the final threshold."""
    streams = build_streams(regions, k, hotness, batch)
    merged, stats = TopKMerger(k=k, hotness=hotness).merge(streams)
    brute_merged, brute_top = brute_force(regions, k, hotness)
    # The returned rows are exactly the true top k (the merger trims
    # with the ranker's total key before its final attribute fetch).
    assert {pid for pid, *_rest in merged} == {
        pid for _s, _c, pid in brute_top
    }
    # Discovery = emission: everything a cursor passed was a candidate
    # (no filters here), so the union of emitted prefixes is the
    # merger's candidate set.
    discovered = {
        pid
        for s in streams
        for pid, _gs, _cnt in s.items[: s.cursor]
    }
    assert {pid for _s, _c, pid in brute_top} <= discovered
    threshold = stats["threshold"]
    if threshold is None:
        # Fewer than k candidates exist globally: nothing may be pruned.
        assert discovered == set(brute_merged)
        assert stats["pruned_regions"] == 0
    else:
        for pid, (gs, cnt) in brute_merged.items():
            if pid not in discovered:
                score = float(cnt) if hotness else gs / cnt
                assert score < threshold
    # Proof-pruned streams really were short-circuited via their token.
    for stream in streams:
        if stream.pruned:
            assert stream.prune_token.cancelled
            assert stream.prune_token.reason == "topk_proof"


@settings(max_examples=120, deadline=None)
@given(
    regions=TIE_REGIONS,
    k=st.integers(min_value=1, max_value=5),
    hotness=st.booleans(),
    batch=st.integers(min_value=1, max_value=3),
)
def test_ties_at_kth_resolve_identically(regions, k, hotness, batch):
    """Invariant 4: tie-heavy distributions rank identically pruned vs
    exhaustive — the stable key leaves no room for divergence."""
    streams = build_streams(regions, k, hotness, batch)
    merged, _stats = TopKMerger(k=k, hotness=hotness).merge(streams)
    _brute_merged, brute_top = brute_force(regions, k, hotness)
    assert ranked_candidates(merged, k, hotness) == brute_top


@settings(max_examples=60, deadline=None)
@given(
    regions=REGIONS,
    k=st.integers(min_value=1, max_value=6),
    hotness=st.booleans(),
)
def test_stream_merge_endpoint_matches_merger(regions, k, hotness):
    """The coprocessor's ``stream_merge`` hook is the merger, not a
    divergent re-implementation."""
    streams_a = build_streams(regions, k, hotness, batch=4)
    streams_b = build_streams(regions, k, hotness, batch=4)
    via_endpoint, _ = VisitScanCoprocessor().stream_merge(streams_a)
    via_merger, _ = TopKMerger(k=k, hotness=hotness).merge(streams_b)
    assert sorted(via_endpoint) == sorted(via_merger)
