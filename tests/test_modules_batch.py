"""Tests for the batch modules: HotIn update, event detection, trajectory."""

import pytest

from repro.config import ClusterConfig, JobsConfig
from repro.core.modules.event_detection import EventDetectionModule
from repro.core.modules.hotin_update import HotInUpdateModule
from repro.core.modules.trajectory import (
    StayPoint,
    TrajectoryModule,
    detect_stay_points,
)
from repro.core.repositories.gps_traces import GPSTracesRepository
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.text_repo import CommentRecord, TextRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.datagen import generate_traces
from repro.datagen.gps import GPSPoint
from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.geo.distance import offset_point_m
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine


@pytest.fixture()
def cluster():
    c = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
    yield c
    c.shutdown()


class TestHotInUpdate:
    def test_aggregates_hotness_and_interest(self, cluster):
        pois = POIRepository(SqlEngine())
        pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                     keywords=(), category="cafe"))
        pois.add(POI(poi_id=2, name="B", lat=37.99, lon=23.74,
                     keywords=(), category="bar"))
        visits = VisitsRepository(cluster, num_regions=4)
        grades = {1: [0.8, 0.6, 1.0], 2: [0.2]}
        ts = 100
        for poi_id, gs in grades.items():
            for uid, g in enumerate(gs, start=1):
                visits.store(VisitStruct(user_id=uid, poi_id=poi_id,
                                         timestamp=ts, grade=g))
                ts += 1
        module = HotInUpdateModule(visits, pois, num_mappers=2)
        report = module.run(since=0, until=1000)
        assert report.visits_scanned == 4
        assert report.pois_updated == 2
        a = pois.get(1)
        assert a.hotness == 3.0
        assert a.interest == pytest.approx(0.8)
        b = pois.get(2)
        assert b.hotness == 1.0
        assert b.interest == pytest.approx(0.2)

    def test_window_excludes_outside_visits(self, cluster):
        pois = POIRepository(SqlEngine())
        pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                     keywords=(), category="cafe"))
        visits = VisitsRepository(cluster, num_regions=4)
        visits.store(VisitStruct(user_id=1, poi_id=1, timestamp=50, grade=1.0))
        visits.store(VisitStruct(user_id=1, poi_id=1, timestamp=500, grade=0.0))
        module = HotInUpdateModule(visits, pois, num_mappers=2)
        module.run(since=100, until=1000)
        assert pois.get(1).hotness == 1.0
        assert pois.get(1).interest == 0.0

    def test_unknown_pois_counted(self, cluster):
        pois = POIRepository(SqlEngine())
        visits = VisitsRepository(cluster, num_regions=4)
        visits.store(VisitStruct(user_id=1, poi_id=77, timestamp=10, grade=0.5))
        report = HotInUpdateModule(visits, pois, num_mappers=2).run(0, 100)
        assert report.pois_unknown == 1
        assert report.pois_updated == 0


class TestEventDetection:
    def _pois_repo(self, pois):
        repo = POIRepository(SqlEngine())
        for p in pois:
            repo.add(p)
        return repo

    def test_detects_hotspots_not_known_pois(self, cluster, small_pois):
        known = [
            POI(poi_id=p.poi_id, name=p.name, lat=p.lat, lon=p.lon,
                keywords=tuple(p.keywords), category=p.category)
            for p in small_pois[:40]
        ]
        pois = self._pois_repo(known)
        gps = GPSTracesRepository(cluster)
        scenario = generate_traces(
            user_ids=[1, 2, 3], known_pois=small_pois[:40],
            num_hotspots=4, points_per_hotspot=80, seed=12,
        )
        gps.push_many(scenario.points)
        module = EventDetectionModule(gps, pois, JobsConfig())
        report = module.run(since=0)
        assert report.traces_scanned == len(scenario.points)
        # Known-POI activity filtered before clustering.
        assert report.traces_after_filter < report.traces_scanned
        assert report.clusters_found == 4
        # Each created POI sits near a true hotspot center.
        for poi in report.pois_created:
            nearest = min(
                poi.location.distance_m(h) for h in scenario.hotspot_centers
            )
            assert nearest < 100.0
            assert poi.auto_detected

    def test_created_pois_are_queryable(self, cluster, small_pois):
        pois = self._pois_repo([])
        gps = GPSTracesRepository(cluster)
        scenario = generate_traces(
            user_ids=[1], known_pois=[], num_hotspots=2,
            points_per_hotspot=60, near_poi_points=0, background_points=50,
            seed=13,
        )
        gps.push_many(scenario.points)
        module = EventDetectionModule(gps, pois, JobsConfig())
        report = module.run(since=0)
        assert pois.count() == len(report.pois_created) == 2

    def test_incremental_runs_use_watermark(self, cluster):
        pois = self._pois_repo([])
        gps = GPSTracesRepository(cluster)
        scenario = generate_traces(
            user_ids=[1], known_pois=[], num_hotspots=1,
            points_per_hotspot=50, near_poi_points=0, background_points=0,
            seed=14, time_range=(0, 100),
        )
        gps.push_many(scenario.points)
        module = EventDetectionModule(gps, pois, JobsConfig())
        first = module.run()
        assert first.clusters_found == 1
        # Second run sees no new traces past the watermark.
        second = module.run()
        assert second.traces_scanned == 0
        assert second.clusters_found == 0


class TestStayPointDetection:
    def _dwell(self, lat, lon, t0, duration, n=10):
        return [
            GPSPoint(user_id=1, lat=lat, lon=lon,
                     timestamp=t0 + i * (duration // max(1, n - 1)))
            for i in range(n)
        ]

    def test_detects_single_dwell(self):
        points = self._dwell(37.98, 23.73, t0=0, duration=1800)
        stays = detect_stay_points(points, radius_m=80, min_stay_s=900)
        assert len(stays) == 1
        assert stays[0].duration_s >= 900

    def test_moving_trace_has_no_stays(self):
        points = [
            GPSPoint(user_id=1,
                     lat=offset_point_m(37.98, 23.73, 300.0 * i, 0)[0],
                     lon=23.73, timestamp=i * 60)
            for i in range(30)
        ]
        assert detect_stay_points(points, radius_m=80, min_stay_s=900) == []

    def test_two_dwells_with_travel_between(self):
        first = self._dwell(37.98, 23.73, t0=0, duration=1200)
        lat2, lon2 = offset_point_m(37.98, 23.73, 2000.0, 0.0)
        second = self._dwell(lat2, lon2, t0=3000, duration=1200)
        stays = detect_stay_points(first + second, radius_m=80, min_stay_s=900)
        assert len(stays) == 2
        assert stays[0].departure <= stays[1].arrival

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            detect_stay_points([], radius_m=0, min_stay_s=1)
        with pytest.raises(ValidationError):
            detect_stay_points([], radius_m=1, min_stay_s=0)


class TestTrajectoryModule:
    def test_infers_semantic_trajectory(self, cluster):
        pois = POIRepository(SqlEngine())
        pois.add(POI(poi_id=1, name="Cafe", lat=37.9800, lon=23.7300,
                     keywords=(), category="cafe"))
        pois.add(POI(poi_id=2, name="Museum", lat=37.9900, lon=23.7400,
                     keywords=(), category="museum"))
        gps = GPSTracesRepository(cluster)
        texts = TextRepository(cluster)
        # Dwell at the cafe 08:00-08:30, museum 10:00-10:40.
        for i in range(10):
            gps.push(GPSPoint(1, 37.98001, 23.73001, 28800 + i * 200))
        for i in range(10):
            gps.push(GPSPoint(1, 37.99001, 23.74, 36000 + i * 260))
        texts.store(CommentRecord(1, 1, 29000, "lovely espresso", 0.95))

        module = TrajectoryModule(gps, pois, texts)
        trajectory = module.infer(1, since=0, until=86400)
        assert trajectory.poi_names() == ["Cafe", "Museum"]
        assert trajectory.stops[0].comment == "lovely espresso"
        assert trajectory.stops[0].stay.arrival == 28800

    def test_unmatched_stay_is_anonymous(self, cluster):
        pois = POIRepository(SqlEngine())
        gps = GPSTracesRepository(cluster)
        texts = TextRepository(cluster)
        for i in range(10):
            gps.push(GPSPoint(1, 37.5, 23.5, 1000 + i * 200))
        trajectory = TrajectoryModule(gps, pois, texts).infer(1, 0, 10_000)
        assert len(trajectory.stops) == 1
        assert trajectory.stops[0].poi is None
        assert trajectory.poi_names() == ["Unknown place"]
