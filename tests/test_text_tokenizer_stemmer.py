"""Tests for tokenization, stopwords, Porter stemming and n-grams."""

import pytest

from repro.errors import ValidationError
from repro.text import Tokenizer, ngrams, porter_stem, unigrams_and_bigrams
from repro.text.stopwords import STOPWORDS


class TestPorterStemmer:
    # Reference pairs from Porter's original paper / test vocabulary.
    KNOWN = [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valenci", "valenc"),
        ("hesitanci", "hesit"),
        ("digitizer", "digit"),
        ("conformabli", "conform"),
        ("radicalli", "radic"),
        ("differentli", "differ"),
        ("vileli", "vile"),
        ("analogousli", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formaliti", "formal"),
        ("sensitiviti", "sensit"),
        ("sensibiliti", "sensibl"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electriciti", "electr"),
        ("electrical", "electr"),
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angulariti", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
    ]

    @pytest.mark.parametrize("word,stem", KNOWN)
    def test_known_pairs(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_pass_through(self):
        assert porter_stem("is") == "is"
        assert porter_stem("a") == "a"

    def test_idempotent_on_common_review_words(self):
        for word in ("delicious", "wonderful", "terrible", "services"):
            once = porter_stem(word)
            assert porter_stem(once) == once


class TestTokenizer:
    def test_lowercase_and_stopwords(self):
        t = Tokenizer(stem=False)
        tokens = t.tokenize("The Food WAS very Good")
        assert "the" not in tokens
        assert "was" not in tokens
        assert "food" in tokens
        assert "good" in tokens

    def test_stemming_applied(self):
        t = Tokenizer()
        assert "restaur" in t.tokenize("restaurants")

    def test_punctuation_and_numbers_dropped(self):
        t = Tokenizer(stem=False)
        tokens = t.tokenize("great!!! 100% value, 5 stars...")
        assert tokens == ["great", "value", "star"] or "great" in tokens

    def test_disabled_options(self):
        t = Tokenizer(lowercase=False, remove_stopwords=False, stem=False)
        tokens = t.tokenize("The CAT")
        assert tokens == ["The", "CAT"]

    def test_min_token_length(self):
        t = Tokenizer(stem=False, min_token_length=4)
        assert t.tokenize("cat door") == ["door"]

    def test_empty_input(self):
        assert Tokenizer().tokenize("") == []

    def test_stopword_list_sane(self):
        assert "the" in STOPWORDS
        assert "not" in STOPWORDS
        assert "food" not in STOPWORDS


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a_b", "b_c"]

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == ["a", "b"]

    def test_n_larger_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValidationError):
            ngrams(["a"], 0)

    def test_unigrams_and_bigrams(self):
        assert unigrams_and_bigrams(["x", "y", "z"]) == [
            "x", "y", "z", "x_y", "y_z",
        ]
