"""Tests for regions: writes, versioned reads, tombstones, compaction."""

import pytest

from repro.errors import ColumnFamilyNotFoundError, StorageError
from repro.hbase import Cell, Region
from repro.hbase.filters import PrefixFilter, TimestampRangeFilter


def put(region, row, ts=1, value=b"v", qualifier=b"q", family="f"):
    region.put(
        Cell(row=row, family=family, qualifier=qualifier, timestamp=ts, value=value)
    )


class TestRegionBasics:
    def test_needs_families(self):
        with pytest.raises(StorageError):
            Region(families=[])

    def test_put_get(self):
        region = Region(families=["f"])
        put(region, b"r1", value=b"hello")
        assert region.get(b"r1", "f", b"q") == b"hello"
        assert region.get(b"r2", "f", b"q") is None

    def test_unknown_family_rejected(self):
        region = Region(families=["f"])
        with pytest.raises(ColumnFamilyNotFoundError):
            region.get(b"r", "nope", b"q")

    def test_row_outside_range_rejected(self):
        region = Region(families=["f"], start_key=b"m", end_key=b"t")
        with pytest.raises(StorageError):
            put(region, b"a")
        put(region, b"p")  # inside

    def test_contains_row_boundaries(self):
        region = Region(families=["f"], start_key=b"m", end_key=b"t")
        assert region.contains_row(b"m")  # start inclusive
        assert not region.contains_row(b"t")  # end exclusive

    def test_newest_version_wins(self):
        region = Region(families=["f"])
        put(region, b"r", ts=1, value=b"one")
        put(region, b"r", ts=9, value=b"nine")
        put(region, b"r", ts=5, value=b"five")
        assert region.get(b"r", "f", b"q") == b"nine"

    def test_get_row_multiple_qualifiers(self):
        region = Region(families=["f"])
        put(region, b"r", qualifier=b"a", value=b"1")
        put(region, b"r", qualifier=b"b", value=b"2")
        assert region.get_row(b"r", "f") == {b"a": b"1", b"b": b"2"}


class TestDeletes:
    def test_tombstone_shadows_older_put(self):
        region = Region(families=["f"])
        put(region, b"r", ts=5, value=b"x")
        region.delete(b"r", "f", b"q", timestamp=6)
        assert region.get(b"r", "f", b"q") is None

    def test_newer_put_resurrects(self):
        region = Region(families=["f"])
        put(region, b"r", ts=5)
        region.delete(b"r", "f", b"q", timestamp=6)
        put(region, b"r", ts=7, value=b"back")
        assert region.get(b"r", "f", b"q") == b"back"

    def test_delete_survives_flush(self):
        region = Region(families=["f"])
        put(region, b"r", ts=5)
        region.flush()
        region.delete(b"r", "f", b"q", timestamp=6)
        assert region.get(b"r", "f", b"q") is None
        region.flush()
        assert region.get(b"r", "f", b"q") is None


class TestFlushCompact:
    def test_flush_preserves_reads(self):
        region = Region(families=["f"])
        for i in range(50):
            put(region, b"row%02d" % i, value=b"v%d" % i)
        region.flush()
        for i in range(50):
            assert region.get(b"row%02d" % i, "f", b"q") == b"v%d" % i
        assert region.store_file_count("f") == 1

    def test_compaction_collapses_files_and_versions(self):
        region = Region(families=["f"])
        for ts in range(1, 6):
            put(region, b"r", ts=ts, value=b"v%d" % ts)
            region.flush()
        assert region.store_file_count("f") == 5
        region.compact()
        assert region.store_file_count("f") == 1
        assert region.get(b"r", "f", b"q") == b"v5"
        # Only one live version remains after major compaction.
        assert region.approx_rows("f") == 1

    def test_compaction_drops_tombstoned_cells(self):
        region = Region(families=["f"])
        put(region, b"dead", ts=1)
        put(region, b"alive", ts=1)
        region.delete(b"dead", "f", b"q", timestamp=2)
        region.compact()
        assert region.get(b"dead", "f", b"q") is None
        assert region.get(b"alive", "f", b"q") == b"v"
        assert region.approx_rows("f") == 1

    def test_automatic_flush_on_threshold(self):
        region = Region(families=["f"], flush_threshold_bytes=500)
        for i in range(30):
            put(region, b"row%02d" % i, value=b"x" * 50)
        assert region.store_file_count("f") >= 1


class TestScan:
    def test_scan_merges_memstore_and_files(self):
        region = Region(families=["f"])
        put(region, b"a")
        region.flush()
        put(region, b"b")
        rows = [c.row for c in region.scan("f")]
        assert rows == [b"a", b"b"]

    def test_scan_yields_only_newest_live_version(self):
        region = Region(families=["f"])
        put(region, b"r", ts=1, value=b"old")
        region.flush()
        put(region, b"r", ts=2, value=b"new")
        cells = list(region.scan("f"))
        assert len(cells) == 1
        assert cells[0].value == b"new"

    def test_scan_skips_deleted(self):
        region = Region(families=["f"])
        put(region, b"a", ts=1)
        put(region, b"b", ts=1)
        region.delete(b"a", "f", b"q", timestamp=2)
        rows = [c.row for c in region.scan("f")]
        assert rows == [b"b"]

    def test_scan_with_prefix_filter(self):
        region = Region(families=["f"])
        for row in (b"user1-a", b"user1-b", b"user2-a"):
            put(region, row)
        rows = [c.row for c in region.scan("f", scan_filter=PrefixFilter(b"user1"))]
        assert rows == [b"user1-a", b"user1-b"]

    def test_scan_with_timestamp_filter(self):
        region = Region(families=["f"])
        put(region, b"a", ts=10)
        put(region, b"b", ts=20)
        put(region, b"c", ts=30)
        f = TimestampRangeFilter(15, 25)
        rows = [c.row for c in region.scan("f", scan_filter=f)]
        assert rows == [b"b"]

    def test_scan_clamped_to_region_range(self):
        region = Region(families=["f"], start_key=b"m", end_key=b"t")
        put(region, b"p")
        # Asking for a wider range must not escape the region.
        rows = [c.row for c in region.scan("f", b"a", b"z")]
        assert rows == [b"p"]
