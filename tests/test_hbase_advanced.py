"""Tests for advanced HBase features: versions, TTL, checkAndPut, batch."""

import pytest

from repro.errors import StorageError
from repro.hbase import Cell, HTable, Region, TableDescriptor


def cell(row, ts=1, value=b"v", qualifier=b"q"):
    return Cell(row=row, family="f", qualifier=qualifier, timestamp=ts,
                value=value)


class TestGetVersions:
    def test_newest_first_capped(self):
        region = Region(families=["f"])
        for ts in (1, 2, 3, 4, 5):
            region.put(cell(b"r", ts=ts, value=b"v%d" % ts))
        versions = region.get_versions(b"r", "f", b"q", max_versions=3)
        assert [c.timestamp for c in versions] == [5, 4, 3]
        assert versions[0].value == b"v5"

    def test_time_range(self):
        region = Region(families=["f"])
        for ts in (10, 20, 30, 40):
            region.put(cell(b"r", ts=ts))
        versions = region.get_versions(
            b"r", "f", b"q", max_versions=10, min_ts=15, max_ts=40
        )
        assert [c.timestamp for c in versions] == [30, 20]

    def test_tombstone_hides_older_versions(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1))
        region.put(cell(b"r", ts=2))
        region.delete(b"r", "f", b"q", timestamp=3)
        region.put(cell(b"r", ts=4, value=b"reborn"))
        versions = region.get_versions(b"r", "f", b"q", max_versions=10)
        assert [c.timestamp for c in versions] == [4]

    def test_versions_survive_flush(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1, value=b"old"))
        region.flush()
        region.put(cell(b"r", ts=2, value=b"new"))
        versions = region.get_versions(b"r", "f", b"q", max_versions=5)
        assert [c.value for c in versions] == [b"new", b"old"]

    def test_same_timestamp_rewrite_collapses(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=5, value=b"first"))
        region.flush()
        region.put(cell(b"r", ts=5, value=b"second"))
        versions = region.get_versions(b"r", "f", b"q", max_versions=5)
        assert len(versions) == 1
        assert versions[0].value == b"second"

    def test_invalid_max_versions(self):
        region = Region(families=["f"])
        with pytest.raises(StorageError):
            region.get_versions(b"r", "f", b"q", max_versions=0)

    def test_routed_through_table(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        for ts in (1, 2):
            table.put(cell(b"\x10row", ts=ts, value=b"v%d" % ts))
        versions = table.get_versions(b"\x10row", "f", b"q")
        assert [c.value for c in versions] == [b"v2", b"v1"]


class TestTTL:
    def test_expired_cells_invisible(self):
        region = Region(families=["f"])
        region.put(cell(b"old", ts=100))
        region.put(cell(b"new", ts=200))
        region.set_ttl_cutoff("f", 150)
        assert region.get(b"old", "f", b"q") is None
        assert region.get(b"new", "f", b"q") == b"v"

    def test_scan_skips_expired(self):
        region = Region(families=["f"])
        region.put(cell(b"a", ts=100))
        region.put(cell(b"b", ts=200))
        region.set_ttl_cutoff("f", 150)
        assert [c.row for c in region.scan("f")] == [b"b"]

    def test_compaction_reclaims_expired(self):
        region = Region(families=["f"])
        region.put(cell(b"old", ts=100))
        region.put(cell(b"new", ts=200))
        region.set_ttl_cutoff("f", 150)
        region.compact()
        assert region.approx_rows("f") == 1

    def test_cutoff_never_regresses(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=100))
        region.set_ttl_cutoff("f", 150)
        region.set_ttl_cutoff("f", 50)  # lower cutoff ignored
        assert region.get(b"r", "f", b"q") is None

    def test_per_family_isolation(self):
        region = Region(families=["f", "g"])
        region.put(cell(b"r", ts=100))
        region.put(Cell(row=b"r", family="g", qualifier=b"q",
                        timestamp=100, value=b"g"))
        region.set_ttl_cutoff("f", 150)
        assert region.get(b"r", "f", b"q") is None
        assert region.get(b"r", "g", b"q") == b"g"

    def test_table_wide_cutoff(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        table.put(cell(b"\x01a", ts=100))
        table.put(cell(b"\xf0b", ts=200))
        table.set_ttl_cutoff("f", 150)
        assert [c.row for c in table.scan("f")] == [b"\xf0b"]


class TestCheckAndPut:
    def test_put_when_absent(self):
        region = Region(families=["f"])
        ok = region.check_and_put(b"r", "f", b"q", None, cell(b"r", ts=1))
        assert ok
        assert region.get(b"r", "f", b"q") == b"v"

    def test_rejected_when_present_but_expected_absent(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1))
        ok = region.check_and_put(
            b"r", "f", b"q", None, cell(b"r", ts=2, value=b"clobber")
        )
        assert not ok
        assert region.get(b"r", "f", b"q") == b"v"

    def test_compare_and_swap(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1, value=b"a"))
        assert region.check_and_put(
            b"r", "f", b"q", b"a", cell(b"r", ts=2, value=b"b")
        )
        assert not region.check_and_put(
            b"r", "f", b"q", b"a", cell(b"r", ts=3, value=b"c")
        )
        assert region.get(b"r", "f", b"q") == b"b"

    def test_routed_through_table(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=2))
        assert table.check_and_put(b"row", "f", b"q", None, cell(b"row"))
        assert not table.check_and_put(b"row", "f", b"q", None, cell(b"row", ts=2))


class TestMutateBatch:
    def test_batch_applies_all(self):
        region = Region(families=["f"])
        written = region.mutate_batch([cell(b"a"), cell(b"b"), cell(b"c")])
        assert written == 3
        assert region.get(b"b", "f", b"q") == b"v"

    def test_validation_precedes_any_write(self):
        region = Region(families=["f"], start_key=b"m", end_key=b"t")
        with pytest.raises(StorageError):
            region.mutate_batch([cell(b"p"), cell(b"zzz")])  # zzz out of range
        # Nothing applied, not even the valid cell.
        assert region.get(b"p", "f", b"q") is None

    def test_cross_region_batch_through_table(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        cells = [cell(bytes([b]) + b"-row") for b in (0x01, 0x41, 0x81, 0xC1)]
        assert table.mutate_batch(cells) == 4
        for c in cells:
            assert table.get(c.row, "f", b"q") == b"v"
