"""Worker-thread lifecycle: pools are created lazily and must be released
by cluster/platform shutdown — a leaked ThreadPoolExecutor keeps its
threads alive for the whole process.
"""

import threading

from repro.cluster import ParallelExecutor
from repro.config import ClusterConfig
from repro.core.modules.query_answering import QueryAnsweringModule, SearchQuery
from repro.core.platform import MoDisSENSE
from repro.core.repositories.poi import POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine


def force_pool(cluster):
    """Run a real multi-region coprocessor query so the cluster's lazy
    fan-out pool actually spins up worker threads."""
    pois = POIRepository(SqlEngine())
    visits = VisitsRepository(cluster, num_regions=8)
    for uid in range(1, 20):
        visits.store(VisitStruct(user_id=uid, poi_id=1, timestamp=uid,
                                 grade=0.5, poi_name="p", lat=1.0, lon=2.0))
    qa = QueryAnsweringModule(pois, visits)
    res = qa.search(SearchQuery(friend_ids=tuple(range(1, 20))))
    assert res.records_scanned > 0
    return cluster._executor


class TestExecutorLifecycle:
    def test_cluster_shutdown_releases_pool_threads(self):
        baseline = threading.active_count()
        cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
        executor = force_pool(cluster)
        assert executor._pool is not None  # the query spun the pool up
        assert threading.active_count() > baseline
        cluster.shutdown()
        assert executor._pool is None
        assert threading.active_count() == baseline

    def test_cluster_context_manager_shuts_down(self):
        baseline = threading.active_count()
        with HBaseCluster(
            ClusterConfig(num_nodes=4, regions_per_table=8)
        ) as cluster:
            executor = force_pool(cluster)
            assert executor._pool is not None
        assert executor._pool is None
        assert threading.active_count() == baseline

    def test_shutdown_is_idempotent_and_cluster_stays_usable(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
        try:
            executor = force_pool(cluster)
            cluster.shutdown()
            cluster.shutdown()  # second call is a no-op
            assert executor._pool is None
            # A new pool is created lazily: queries still work after close.
            table = cluster.table("visits")
            assert len(table.regions) == 8
        finally:
            cluster.shutdown()

    def test_platform_shutdown_releases_all_pools(self):
        baseline = threading.active_count()
        with MoDisSENSE() as platform:
            executor = platform.hbase._executor
            # A multi-region personalized query spins the fan-out pool up.
            for uid in range(1, 20):
                platform.visits_repository.store(
                    VisitStruct(user_id=uid, poi_id=1, timestamp=10 + uid,
                                grade=0.9, poi_name="p", lat=1.0, lon=2.0)
                )
            platform.query_answering.search(
                SearchQuery(friend_ids=tuple(range(1, 20)))
            )
            assert executor._pool is not None
        assert executor._pool is None
        assert threading.active_count() == baseline

    def test_parallel_executor_context_manager(self):
        baseline = threading.active_count()
        with ParallelExecutor(max_workers=4) as ex:
            out = ex.map_ordered(lambda x: x * x, [1, 2, 3, 4])
            assert out == [1, 4, 9, 16]
        assert ex._pool is None
        assert threading.active_count() == baseline
