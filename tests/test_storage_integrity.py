"""Checksummed storage: verify-on-read, scrub-and-repair, quarantine.

The contract under test: a corrupt store-file block is NEVER silently
served — reads touching it raise :class:`ChecksumError` — and the
scheduled scrubber either rebuilds the block byte-identically from the
WAL (live tail + flush archive) or quarantines it so reads keep failing
loudly.  Disk corruption is injected through the seeded fault injector,
so every drill replays exactly.
"""

import pytest

from repro.config import (
    ClusterConfig,
    FaultsConfig,
    PlatformConfig,
    SupervisorConfig,
)
from repro.core.faults import FAULT_DISK
from repro.core.modules.query_answering import SearchQuery
from repro.core.platform import MoDisSENSE
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct
from repro.errors import ChecksumError, ConfigError
from repro.hbase import Cell, StoreFile


def _cells(n, family="d", ts=1):
    return [
        Cell(row=b"row%05d" % i, family=family, qualifier=b"q",
             timestamp=ts, value=b"value-%d" % i)
        for i in range(n)
    ]


def _platform(seed=42):
    cfg = PlatformConfig()
    cfg.cluster = ClusterConfig(num_nodes=4, regions_per_table=8)
    cfg.faults = FaultsConfig(enabled=True, seed=seed)
    cfg.supervisor = SupervisorConfig(enabled=True)
    p = MoDisSENSE(cfg)
    p.poi_repository.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                             keywords=("x",), category="cafe"))
    for uid in range(1, 40):
        p.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",)))
    return p


QUERY = SearchQuery(friend_ids=tuple(range(1, 40)), sort_by="hotness")


class TestStoreFileChecksums:
    def test_blocks_cover_the_file(self):
        sf = StoreFile(_cells(150), block_cells=64)
        assert sf.block_count == 3
        ranges = sf.block_ranges()
        assert ranges[0][0] == sf.cells()[0].sort_key()
        assert ranges[-1][1] == sf.cells()[-1].sort_key()

    def test_corrupt_block_fails_scan_loudly(self):
        sf = StoreFile(_cells(150), block_cells=64)
        sf.corrupt_block(1)
        with pytest.raises(ChecksumError):
            list(sf.scan())
        # A range that avoids the bad block still serves.
        assert len(list(sf.scan(b"row00000", b"row00010"))) == 10
        # A range inside the bad block fails before yielding anything.
        with pytest.raises(ChecksumError):
            list(sf.scan(b"row00070", b"row00080"))

    def test_corruption_never_mutates_the_original_cell(self):
        cells = _cells(10)
        sf = StoreFile(cells, block_cells=4)
        sf.corrupt_block(0)
        # The caller's cell objects — which WAL records alias — must be
        # intact, or the repair source itself would be corrupt.
        assert cells[0].value == b"value-0"

    def test_torn_tail_detected_at_end_of_file(self):
        sf = StoreFile(_cells(130), block_cells=64)
        assert sf.tear_tail(drop=1) == 1
        with pytest.raises(ChecksumError):
            list(sf.scan())  # full scan reaches (and checks) the tail
        assert sf.verify() == [2]

    def test_verify_reports_without_raising(self):
        sf = StoreFile(_cells(150), block_cells=64)
        assert sf.verify() == []
        sf.corrupt_block(0)
        sf.corrupt_block(2)
        assert sf.verify() == [0, 2]
        # verify() memoizes intact blocks; reads of them stay cheap+ok.
        assert len(list(sf.scan(b"row00064", b"row00070"))) == 6

    def test_rebuild_accepts_only_crc_identical_cells(self):
        original = _cells(100)
        sf = StoreFile(original, block_cells=64)
        sf.corrupt_block(0)
        wrong = [
            Cell(row=c.row, family=c.family, qualifier=c.qualifier,
                 timestamp=c.timestamp, value=b"tampered")
            for c in original[:64]
        ]
        assert not sf.rebuild_block(0, wrong)
        assert not sf.rebuild_block(0, original[:63])  # wrong count
        assert sf.rebuild_block(0, original[:64])
        assert sf.verify() == []
        assert [c.value for c in sf.scan()] == [c.value for c in original]

    def test_quarantined_block_keeps_failing_after_verify(self):
        sf = StoreFile(_cells(100), block_cells=64)
        sf.corrupt_block(1)
        sf.quarantine_block(1)
        assert sf.verify() == [1]
        with pytest.raises(ChecksumError):
            list(sf.scan(b"row00064", None))

    def test_small_file_single_block(self):
        sf = StoreFile(_cells(5), block_cells=64)
        assert sf.block_count == 1
        sf.corrupt_block(0)
        with pytest.raises(ChecksumError):
            sf.cells()


class TestDiskCorruptionInjector:
    def test_deterministic_targets(self):
        # Region/file ids come from process-global counters, so two
        # platform instances disagree on raw ids; the *structural* pick
        # (which region slot, which file slot, which block) must match.
        def normalize(p, hit):
            table = p.visits_repository.table
            pos = {r.region_id: i for i, r in enumerate(table.regions)}
            out = []
            for rid, family, file_id, block in hit:
                region = table.regions[pos[rid]]
                files = [sf.file_id
                         for sf in region.store_files_for(family)]
                out.append((pos[rid], family, files.index(file_id), block))
            return out

        hits = []
        for _ in range(2):
            p = _platform(seed=99)
            p.hbase.flush_all()
            hit = p.fault_injector.inject_disk_corruption(
                p.hbase, "visits", events=2)
            hits.append(normalize(p, hit))
            p.shutdown()
        assert hits[0] == hits[1]
        assert len(hits[0]) == 2

    def test_no_store_files_no_damage(self):
        p = _platform()
        # Nothing flushed yet: injection is a no-op, not an error.
        assert p.fault_injector.inject_disk_corruption(
            p.hbase, "gps_traces") == []
        p.shutdown()

    def test_events_validated(self):
        p = _platform()
        with pytest.raises(ConfigError):
            p.fault_injector.inject_disk_corruption(
                p.hbase, "visits", events=0)
        p.shutdown()

    def test_emits_kept_fault_events(self):
        p = _platform()
        p.hbase.flush_all()
        hit = p.fault_injector.inject_disk_corruption(p.hbase, "visits")
        events = p.telemetry.events.query(event_type="fault.injected")
        assert any(e.get("action") == FAULT_DISK for e in events)
        assert hit
        p.shutdown()


class TestScrubAndRepair:
    def test_bit_flip_repaired_from_wal_archive(self):
        oracle = _platform()
        expected = oracle.search(QUERY)
        p = _platform()
        baseline = p.search(QUERY)
        assert [pp.score for pp in baseline.pois] == [
            pp.score for pp in expected.pois]

        # Flush so visits live in store files, then rot a block.  The
        # flush truncated the WAL — the repair source is the archive.
        p.hbase.flush_all()
        hit = p.fault_injector.inject_disk_corruption(p.hbase, "visits")
        assert hit
        summary = p.supervisor.force_scrub()
        assert summary["blocks_corrupt"] >= 1
        assert summary["blocks_repaired"] >= 1
        assert summary["blocks_quarantined"] == 0
        # Repaired bytes serve again, identical to the oracle.
        healed = p.search(QUERY)
        assert [pp.score for pp in healed.pois] == [
            pp.score for pp in expected.pois]
        assert not healed.degraded
        repairs = p.telemetry.events.query(event_type="scrub.repair")
        assert repairs
        assert p.metrics.counter("scrub.repaired") >= 1
        p.shutdown()
        oracle.shutdown()

    def test_clean_pass_scans_everything_and_repairs_nothing(self):
        p = _platform()
        p.hbase.flush_all()
        summary = p.supervisor.force_scrub()
        assert summary["blocks_scanned"] > 0
        assert summary["blocks_corrupt"] == 0
        assert summary["blocks_repaired"] == 0
        assert summary["blocks_quarantined"] == 0
        p.shutdown()

    def test_torn_store_file_tail_repaired(self):
        p = _platform()
        p.hbase.flush_all()
        hit = p.fault_injector.inject_disk_corruption(
            p.hbase, "visits", tear_tail=True)
        assert hit
        summary = p.supervisor.force_scrub()
        assert summary["blocks_corrupt"] >= 1
        assert summary["blocks_repaired"] >= 1
        p.shutdown()

    def test_unrepairable_block_is_quarantined_not_served(self):
        p = _platform()
        p.hbase.flush_all()
        # Destroy the repair source: wipe the WAL archives, then rot a
        # block.  The scrubber must quarantine, and reads must fail
        # loudly rather than return damaged rows.
        for server in p.supervisor._servers.values():
            server._archive.clear()
        for region in p.visits_repository.table.regions:
            if region.wal is not None:
                region.wal.truncate_to(region.wal.last_sequence)
        hit = p.fault_injector.inject_disk_corruption(p.hbase, "visits")
        assert hit
        summary = p.supervisor.force_scrub()
        assert summary["blocks_repaired"] == 0
        assert summary["blocks_quarantined"] >= 1
        rid = hit[0][0]
        region = next(r for r in p.visits_repository.table.regions
                      if r.region_id == rid)
        with pytest.raises(ChecksumError):
            list(region.scan(hit[0][1]))
        quarantines = p.telemetry.events.query(
            event_type="scrub.quarantine")
        assert quarantines
        p.shutdown()

    def test_torn_wal_tail_dropped_by_scrub(self):
        p = _platform()
        region = next(r for r in p.visits_repository.table.regions
                      if r.wal is not None and len(r.wal) > 0)
        region.wal.corrupt_tail()
        summary = p.supervisor.force_scrub()
        assert summary["wal_records_dropped"] == 1
        events = p.telemetry.events.query(event_type="scrub.wal_torn")
        assert events and events[0]["region"] == region.region_id
        p.shutdown()

    def test_integrity_slo_stays_healthy_after_repair(self):
        from repro.core.scheduler import build_platform_scheduler

        p = _platform()
        scheduler = build_platform_scheduler(p)
        p.hbase.flush_all()
        p.fault_injector.inject_disk_corruption(p.hbase, "visits")
        p.supervisor.force_scrub()
        scheduler.advance_by(2.0)  # scrape the counters
        health = p.telemetry.health()
        integrity = [s for s in health["slos"]
                     if s["name"] == "storage_integrity"]
        assert integrity
        # One corrupt block out of hundreds scanned burns well under
        # the 0.1% error budget's critical rate only if repair worked;
        # either way the SLO must exist and carry data.
        assert integrity[0]["state"] in ("healthy", "warning", "critical")
        p.shutdown()
