"""Tests for the R-tree spatial index."""

import random

import pytest

from repro.errors import ValidationError
from repro.geo import BoundingBox, GeoPoint, RTree


def brute_force(points, query):
    return {
        value for point, value in points if query.contains(point)
    }


class TestRTree:
    def test_empty_tree_searches_empty(self):
        tree = RTree()
        assert tree.search(BoundingBox(0, 0, 10, 10)) == []
        assert len(tree) == 0

    def test_min_fanout_enforced(self):
        with pytest.raises(ValidationError):
            RTree(max_entries=3)

    def test_insert_and_point_search(self):
        tree = RTree()
        tree.insert_point(GeoPoint(5.0, 5.0), "a")
        tree.insert_point(GeoPoint(6.0, 6.0), "b")
        assert set(tree.search(BoundingBox(4.5, 4.5, 5.5, 5.5))) == {"a"}
        assert len(tree) == 2

    def test_matches_brute_force_on_random_points(self):
        rng = random.Random(7)
        tree = RTree(max_entries=8)
        points = []
        for i in range(500):
            p = GeoPoint(rng.uniform(35, 41), rng.uniform(20, 28))
            points.append((p, i))
            tree.insert_point(p, i)
        for _ in range(50):
            lat1, lat2 = sorted((rng.uniform(35, 41), rng.uniform(35, 41)))
            lon1, lon2 = sorted((rng.uniform(20, 28), rng.uniform(20, 28)))
            query = BoundingBox(lat1, lon1, lat2, lon2)
            assert set(tree.search(query)) == brute_force(points, query)

    def test_duplicate_coordinates_allowed(self):
        tree = RTree()
        p = GeoPoint(1.0, 1.0)
        for i in range(20):
            tree.insert_point(p, i)
        found = tree.search(BoundingBox(0.9, 0.9, 1.1, 1.1))
        assert sorted(found) == list(range(20))

    def test_delete_removes_one_entry(self):
        tree = RTree()
        p = GeoPoint(2.0, 2.0)
        tree.insert_point(p, "x")
        tree.insert_point(p, "y")
        box = BoundingBox(2.0, 2.0, 2.0, 2.0)
        assert tree.delete(box, "x") is True
        assert tree.delete(box, "x") is False  # already gone
        assert set(tree.search(BoundingBox(1, 1, 3, 3))) == {"y"}
        assert len(tree) == 1

    def test_delete_then_search_consistency(self):
        rng = random.Random(13)
        tree = RTree(max_entries=6)
        points = []
        for i in range(200):
            p = GeoPoint(rng.uniform(0, 10), rng.uniform(0, 10))
            points.append((p, i))
            tree.insert_point(p, i)
        # Delete half.
        removed = set()
        for p, i in points[:100]:
            assert tree.delete(BoundingBox(p.lat, p.lon, p.lat, p.lon), i)
            removed.add(i)
        query = BoundingBox(0, 0, 10, 10)
        remaining = set(tree.search(query))
        assert remaining == {i for _p, i in points if i not in removed}

    def test_search_point(self):
        tree = RTree()
        tree.insert(BoundingBox(0, 0, 5, 5), "area")
        assert tree.search_point(GeoPoint(3, 3)) == ["area"]
        assert tree.search_point(GeoPoint(6, 6)) == []

    def test_items_returns_everything(self):
        tree = RTree()
        for i in range(50):
            tree.insert_point(GeoPoint(float(i % 10), float(i // 10)), i)
        items = tree.items()
        assert len(items) == 50
        assert {v for _box, v in items} == set(range(50))
