"""Tests for user management, data collection, text processing, blogs."""

import pytest

from repro.config import PlatformConfig, SentimentConfig
from repro.core import MoDisSENSE
from repro.core.modules.data_collection import numeric_id
from repro.datagen import ReviewGenerator, generate_pois
from repro.errors import (
    AuthenticationError,
    NotTrainedError,
    PluginError,
    ValidationError,
)
from repro.social import CheckIn, FriendInfo, StatusUpdate


@pytest.fixture()
def platform():
    p = MoDisSENSE(PlatformConfig.small())
    fb = p.plugins["facebook"]
    tw = p.plugins["twitter"]
    for i in range(1, 8):
        fb.add_profile(FriendInfo("fb_%d" % i, "User %d" % i, "pic"))
    tw.add_profile(FriendInfo("tw_1", "User 1 on Twitter", "pic"))
    for i in range(2, 6):
        fb.add_friendship("fb_1", "fb_%d" % i)
    yield p
    p.shutdown()


class TestUserManagement:
    def test_register_is_idempotent_login(self, platform):
        u1 = platform.register_user("facebook", "fb_1", "pw", now=0.0)
        u2 = platform.register_user("facebook", "fb_1", "pw", now=1.0)
        assert u1.user_id == u2.user_id
        assert len(platform.user_management.all_users()) == 1

    def test_bad_password_rejected(self, platform):
        with pytest.raises(AuthenticationError):
            platform.register_user("facebook", "fb_1", "wrong", now=0.0)

    def test_unknown_network_rejected(self, platform):
        with pytest.raises(PluginError):
            platform.register_user("myspace", "ms_1", "pw", now=0.0)

    def test_link_second_network(self, platform):
        user = platform.register_user("facebook", "fb_1", "pw", now=0.0)
        platform.user_management.link_network(
            user.user_id, "twitter", "tw_1", "pw", now=1.0
        )
        assert user.linked_networks == ["facebook", "twitter"]
        assert user.network_id("twitter") == "tw_1"

    def test_cannot_steal_linked_account(self, platform):
        platform.register_user("facebook", "fb_1", "pw", now=0.0)
        other = platform.register_user("facebook", "fb_2", "pw", now=0.0)
        with pytest.raises(AuthenticationError):
            platform.user_management.link_network(
                other.user_id, "facebook", "fb_1", "pw", now=1.0
            )

    def test_unlink(self, platform):
        user = platform.register_user("facebook", "fb_1", "pw", now=0.0)
        platform.user_management.unlink_network(user.user_id, "facebook")
        assert user.linked_networks == []
        with pytest.raises(AuthenticationError):
            platform.user_management.validate_token(user.user_id, "facebook", 1.0)

    def test_expired_token_detected(self, platform):
        user = platform.register_user("facebook", "fb_1", "pw", now=0.0)
        with pytest.raises(AuthenticationError):
            platform.user_management.validate_token(
                user.user_id, "facebook", now=100_000.0
            )

    def test_unknown_user(self, platform):
        with pytest.raises(ValidationError):
            platform.user_management.get(42)


class TestNumericId:
    def test_extracts_digits(self):
        assert numeric_id("fb_123") == 123
        assert numeric_id("tw_7") == 7

    def test_no_digits_rejected(self):
        with pytest.raises(PluginError):
            numeric_id("anonymous")


class TestTextProcessing:
    def test_untrained_module_refuses(self, platform):
        with pytest.raises(NotTrainedError):
            platform.text_processing.process_comment(1, 1, 10, "nice")

    def test_comment_scored_and_persisted(self, platform):
        corpus = ReviewGenerator(seed=2, capacity=2000).labeled_texts(600)
        platform.text_processing.train(corpus)
        record = platform.text_processing.process_comment(
            1, 7, 10, "excellent wonderful delicious"
        )
        assert record.sentiment > 0.5
        stored = platform.text_repository.comments(1, 7)
        assert len(stored) == 1
        assert stored[0].sentiment == record.sentiment

    def test_empty_comment_neutral(self, platform):
        corpus = ReviewGenerator(seed=2, capacity=2000).labeled_texts(600)
        platform.text_processing.train(corpus)
        record = platform.text_processing.process_comment(1, 7, 10, "   ")
        assert record.sentiment == 0.5


class TestDataCollection:
    def _prepare(self, platform):
        pois = generate_pois(count=50, seed=3)
        platform.load_pois(pois)
        corpus = ReviewGenerator(seed=2, capacity=2000).labeled_texts(600)
        platform.text_processing.train(corpus)
        fb = platform.plugins["facebook"]
        # Friends 2..5 check in at POI 1 with polar comments.
        fb.add_checkin(CheckIn("fb_2", 1, pois[0].lat, pois[0].lon, 100,
                               "excellent wonderful lovely"))
        fb.add_checkin(CheckIn("fb_3", 1, pois[0].lat, pois[0].lon, 150,
                               "terrible awful rude"))
        fb.add_checkin(CheckIn("fb_1", 2, pois[1].lat, pois[1].lon, 200,
                               "delicious superb"))
        fb.add_status(StatusUpdate("fb_2", 160, "hello world"))
        return pois

    def test_collects_user_and_friend_checkins(self, platform):
        self._prepare(platform)
        platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        report = platform.collect(now=1000)
        assert report.users_scanned == 1
        assert report.checkins_ingested == 3
        assert report.comments_classified == 3
        assert report.friends_stored == 4
        assert report.statuses_seen == 1
        assert report.statuses_classified == 1

    def test_status_updates_reach_text_repository(self, platform):
        from repro.core.modules.data_collection import NO_POI

        self._prepare(platform)
        platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        platform.collect(now=1000)
        # fb_2 posted "hello world" at ts=160; it lands under NO_POI.
        stored = platform.text_repository.comments(2, NO_POI)
        assert len(stored) == 1
        assert stored[0].text == "hello world"

    def test_visit_grades_follow_sentiment(self, platform):
        self._prepare(platform)
        platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        platform.collect(now=1000)
        positive = platform.visits_repository.visits_of_user(2)
        negative = platform.visits_repository.visits_of_user(3)
        assert positive[0].grade > 0.5
        assert negative[0].grade < 0.5

    def test_visits_carry_replicated_poi_info(self, platform):
        pois = self._prepare(platform)
        platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        platform.collect(now=1000)
        visit = platform.visits_repository.visits_of_user(2)[0]
        assert visit.poi_name == pois[0].name
        assert visit.keywords == tuple(pois[0].keywords)

    def test_incremental_collection_no_duplicates(self, platform):
        self._prepare(platform)
        platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        first = platform.collect(now=1000)
        second = platform.collect(now=2000)
        assert first.checkins_ingested == 3
        assert second.checkins_ingested == 0  # nothing new since watermark

    def test_friend_lists_persisted(self, platform):
        self._prepare(platform)
        user = platform.register_user("facebook", "fb_1", "pw", now=1000.0)
        platform.collect(now=1000)
        friends = platform.social_info.get_friends(user.user_id, "facebook")
        assert {f.network_user_id for f in friends} == {
            "fb_2", "fb_3", "fb_4", "fb_5",
        }
