"""Tests for the ORDER BY index pushdown (top-k without a full sort)."""

import pytest

from repro.sqlstore import (
    Column,
    ColumnType,
    Eq,
    OrderedIndex,
    Query,
    SqlEngine,
    TableSchema,
)


@pytest.fixture()
def engine():
    eng = SqlEngine()
    eng.create_table(
        TableSchema(
            name="pois",
            columns=[
                Column("poi_id", ColumnType.INTEGER),
                Column("hotness", ColumnType.FLOAT, default=0.0),
                Column("name", ColumnType.TEXT, default="x"),
            ],
            primary_key="poi_id",
        )
    )
    eng.create_index("pois", OrderedIndex("hotness"))
    for i in range(1, 101):
        eng.insert("pois", {"poi_id": i, "hotness": float(i % 37)})
    return eng


class TestOrderByPushdown:
    def test_pushdown_used_and_correct(self, engine):
        before = engine.stats["index_order_scans"]
        rows = engine.select(
            Query(table="pois", order_by=("hotness", True), limit=5)
        )
        assert engine.stats["index_order_scans"] == before + 1
        # Matches the full-sort answer.
        expected = sorted(
            (r for _rid, r in engine.table("pois").scan()),
            key=lambda r: r["hotness"],
            reverse=True,
        )[:5]
        assert [r["hotness"] for r in rows] == [r["hotness"] for r in expected]

    def test_ascending_pushdown(self, engine):
        rows = engine.select(
            Query(table="pois", order_by=("hotness", False), limit=3)
        )
        assert [r["hotness"] for r in rows] == [0.0, 0.0, 1.0]

    def test_not_used_with_where_clause(self, engine):
        before = engine.stats["index_order_scans"]
        engine.select(
            Query(table="pois", where=Eq("poi_id", 5),
                  order_by=("hotness", True), limit=5)
        )
        assert engine.stats["index_order_scans"] == before

    def test_not_used_without_limit(self, engine):
        before = engine.stats["index_order_scans"]
        engine.select(Query(table="pois", order_by=("hotness", True)))
        assert engine.stats["index_order_scans"] == before

    def test_not_used_on_unindexed_column(self, engine):
        before = engine.stats["index_order_scans"]
        engine.select(Query(table="pois", order_by=("name", True), limit=5))
        assert engine.stats["index_order_scans"] == before

    def test_projection_applied(self, engine):
        rows = engine.select(
            Query(table="pois", order_by=("hotness", True), limit=2,
                  columns=["poi_id"])
        )
        assert all(set(r) == {"poi_id"} for r in rows)

    def test_stays_correct_after_updates(self, engine):
        table = engine.table("pois")
        rid = next(iter(table.rids_by_pk(50)))
        engine.update("pois", rid, {"hotness": 999.0})
        rows = engine.select(
            Query(table="pois", order_by=("hotness", True), limit=1)
        )
        assert rows[0]["poi_id"] == 50

    def test_incomplete_index_not_used(self):
        # A nullable indexed column leaves NULL rows out of the index;
        # the pushdown must refuse and fall back to the general plan.
        eng = SqlEngine()
        eng.create_table(
            TableSchema(
                name="t",
                columns=[
                    Column("id", ColumnType.INTEGER),
                    Column("v", ColumnType.FLOAT, nullable=True),
                ],
                primary_key="id",
            )
        )
        eng.create_index("t", OrderedIndex("v"))
        eng.insert("t", {"id": 1, "v": 5.0})
        eng.insert("t", {"id": 2, "v": None})
        before = eng.stats["index_order_scans"]
        rows = eng.select(Query(table="t", order_by=("v", True), limit=2))
        assert eng.stats["index_order_scans"] == before
        assert len(rows) == 2
