"""JSON-shape contract tests for every ``admin_*`` endpoint.

The admin surface is how operators (and the chaos-drill runbooks in
EXPERIMENTS.md) see the platform; these tests pin the response envelopes
so dashboards built on them don't silently break.
"""

import dataclasses

import pytest

from repro import MoDisSENSE, RestApi
from repro.config import PlatformConfig, TelemetryConfig
from repro.core.repositories.visits import VisitStruct


def _config(profiler=False, telemetry=True):
    return dataclasses.replace(
        PlatformConfig.small(),
        telemetry=TelemetryConfig(
            enabled=telemetry, profiler_enabled=profiler
        ),
    )


@pytest.fixture()
def api():
    p = MoDisSENSE(_config())
    for uid in range(1, 10):
        p.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5,
            poi_name="A", lat=37.98, lon=23.73, keywords=("x",),
        ))
    rest = RestApi(p)
    yield rest, p
    p.shutdown()


def _search(rest, friends=(1, 2, 3)):
    out = rest.handle(
        "search", {"friend_ids": list(friends), "sort_by": "hotness"}
    )
    assert out["status"] == "ok"
    return out


class TestAdminMetrics:
    def test_json_snapshot_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_metrics", {})
        assert out["status"] == "ok"
        assert set(out["data"]) == {"counters", "gauges", "latencies"}

    def test_prometheus_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_metrics", {"format": "prometheus"})
        assert out["status"] == "ok"
        assert set(out["data"]) == {"content_type", "body"}
        assert "version=0.0.4" in out["data"]["content_type"]


class TestAdminTraces:
    def test_shape_and_tracer_description(self, api):
        rest, _p = api
        _search(rest)
        out = rest.handle("admin_traces", {"limit": 5})
        assert out["status"] == "ok"
        data = out["data"]
        assert set(data) == {"traces", "tracing"}
        tracing = data["tracing"]
        # Satellite: the ring capacities and slow threshold are visible.
        assert tracing["max_traces"] == 128
        assert tracing["slow_log_size"] == 32
        assert tracing["slow_threshold_ms"] == 250.0
        assert data["traces"][0]["trace_id"] is not None

    def test_slow_threshold_settable_at_runtime(self, api):
        rest, p = api
        out = rest.handle("admin_traces", {"slow_threshold_ms": 0.0})
        assert out["status"] == "ok"
        assert out["data"]["tracing"]["slow_threshold_ms"] == 0.0
        assert p.tracer.slow_threshold_ms == 0.0
        # With a zero cutoff every query is a slow query.
        _search(rest)
        slow = rest.handle("admin_traces", {"slow": True})
        assert slow["data"]["traces"]

    def test_negative_threshold_rejected(self, api):
        rest, _p = api
        out = rest.handle("admin_traces", {"slow_threshold_ms": -1.0})
        assert out["status"] == "error"


class TestAdminCache:
    def test_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_cache", {})
        assert out["status"] == "ok"
        data = out["data"]
        assert set(data) == {"enabled", "scan", "hot_poi", "coalescing"}
        assert set(data["coalescing"]) == {
            "enabled", "coalesced_total", "in_flight"
        }


class TestAdminIngest:
    def test_disabled_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_ingest", {})
        assert out["status"] == "ok"
        assert out["data"] == {"enabled": False}


class TestAdminDescribe:
    def test_includes_telemetry(self, api):
        rest, _p = api
        out = rest.handle("admin_describe", {})
        assert out["status"] == "ok"
        telemetry = out["data"]["telemetry"]
        assert telemetry["enabled"] is True
        assert set(telemetry) >= {"store", "slo", "events"}


class TestAdminTimeseries:
    def test_directory_listing(self, api):
        rest, p = api
        _search(rest)
        p.telemetry.tick(1.0)
        out = rest.handle("admin_timeseries", {})
        assert out["status"] == "ok"
        data = out["data"]
        assert data["enabled"] is True
        assert "queries.personalized" in data["series"]
        assert data["store"]["scrapes"] >= 1

    def test_prefix_filter(self, api):
        rest, p = api
        _search(rest)
        p.telemetry.tick(1.0)
        out = rest.handle("admin_timeseries", {"prefix": "queries."})
        names = out["data"]["series"]
        assert names
        assert all(n.startswith("queries.") for n in names)

    def test_named_series_raw_and_rollup(self, api):
        rest, p = api
        for t in range(1, 4):
            _search(rest)
            p.telemetry.tick(float(t))
        raw = rest.handle(
            "admin_timeseries", {"name": "queries.personalized"}
        )
        assert raw["status"] == "ok"
        data = raw["data"]
        assert data["kind"] == "counter"
        points = data["samples"]["points"]
        assert len(points) == 3
        assert all(len(p) == 2 for p in points)  # [t, value]

        rolled = rest.handle(
            "admin_timeseries",
            {"name": "queries.personalized", "resolution": 10},
        )
        rows = rolled["data"]["samples"]["points"]
        assert rows and all(len(r) == 6 for r in rows)  # bucket rows

    def test_unknown_series_is_empty_not_error(self, api):
        rest, _p = api
        out = rest.handle("admin_timeseries", {"name": "no.such"})
        assert out["status"] == "ok"
        assert out["data"]["samples"]["points"] == []


class TestAdminHealth:
    def test_shape(self, api):
        rest, p = api
        _search(rest)
        p.telemetry.tick(1.0)
        out = rest.handle("admin_health", {})
        assert out["status"] == "ok"
        data = out["data"]
        assert data["enabled"] is True
        assert data["state"] in ("healthy", "warning", "critical")
        by_name = {s["name"]: s for s in data["slos"]}
        assert set(by_name) == {
            "goodput", "personalized_p99_latency", "ingest_freshness",
            "fanout_coverage", "degraded_query_rate",
            "backpressure_shed_rate", "storage_integrity",
            "recovery_mttr",
        }
        slo = by_name["fanout_coverage"]
        for key in ("state", "target", "fast_burn", "slow_burn",
                    "budget_remaining", "fast_window_s", "slow_window_s",
                    "critical_burn", "warning_burn"):
            assert key in slo, key


class TestAdminProfile:
    def test_disabled_profiler_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_profile", {})
        assert out["status"] == "ok"
        assert out["data"] == {"enabled": False}

    def test_enabled_shape_and_reset(self):
        p = MoDisSENSE(_config(profiler=True))
        rest = RestApi(p)
        try:
            # Deterministic: take a sample by hand rather than racing
            # the 20 ms wall-clock sampler.
            p.telemetry.profiler.sample_once()
            out = rest.handle("admin_profile", {"reset": True})
            assert out["status"] == "ok"
            data = out["data"]
            assert set(data) == {"enabled", "stats", "folded"}
            assert data["stats"]["samples"] >= 1
            assert isinstance(data["folded"], list)
            # reset=True cleared the accumulator after the read.
            after = rest.handle("admin_profile", {})
            assert after["data"]["stats"]["samples"] == 0
        finally:
            p.shutdown()


class TestAdminEvents:
    def test_shape_and_type_filter(self, api):
        rest, _p = api
        _search(rest)
        out = rest.handle("admin_events", {"type": "query.personalized"})
        assert out["status"] == "ok"
        data = out["data"]
        assert set(data) == {"enabled", "events", "stats"}
        assert data["events"]
        assert all(
            e["type"] == "query.personalized" for e in data["events"]
        )
        assert data["stats"]["emitted"] >= 1

    def test_interesting_filter_and_limit(self, api):
        rest, p = api
        p.telemetry.events.emit({"type": "drill"}, keep=True)
        p.telemetry.events.emit({"type": "drill"}, keep=True)
        out = rest.handle(
            "admin_events", {"interesting": True, "limit": 1}
        )
        events = out["data"]["events"]
        assert len(events) == 1
        assert events[0]["interesting"] is True


class TestAdminSupervisor:
    def test_disabled_shape(self, api):
        rest, _p = api
        out = rest.handle("admin_supervisor", {})
        assert out["status"] == "ok"
        assert out["data"] == {"enabled": False}

    def test_enabled_shape_and_drill(self):
        from repro.config import SupervisorConfig

        cfg = _config()
        cfg = dataclasses.replace(
            cfg, supervisor=SupervisorConfig(enabled=True)
        )
        p = MoDisSENSE(cfg)
        for uid in range(1, 10):
            p.visits_repository.store(VisitStruct(
                user_id=uid, poi_id=1, timestamp=uid, grade=0.5,
                poi_name="A", lat=37.98, lon=23.73, keywords=("x",),
            ))
        rest = RestApi(p)
        try:
            out = rest.handle("admin_supervisor", {})
            assert out["status"] == "ok"
            data = out["data"]
            assert data["enabled"] is True
            assert {"leases", "history", "describe"} <= set(data)
            assert len(data["leases"]) == p.config.cluster.num_nodes
            assert all(row["live"] for row in data["leases"])
            assert data["history"] == []
            assert data["describe"]["supervised_regions"] > 0

            drilled = rest.handle("admin_supervisor", {"drill": True})
            assert drilled["status"] == "ok"
            record = drilled["data"]["drill"]
            assert record["drill"] is True
            assert record["mttr_s"] >= 0.0
            assert drilled["data"]["history"]  # the drill is on record
            # The crashed node stays down (rejoin is separate); its
            # regions were re-homed, so service is whole regardless.
            dead = [r for r in drilled["data"]["leases"] if not r["live"]]
            assert len(dead) == 1 and dead[0]["declared_dead"]
            whole = _search(rest)
            assert whole["data"].get("degraded") in (False, None)

            scrubbed = rest.handle("admin_supervisor", {"scrub": True})
            assert scrubbed["status"] == "ok"
            assert "blocks_scanned" in scrubbed["data"]["scrub"]

            bad = rest.handle("admin_supervisor", {"node": 99, "drill": True})
            assert bad["status"] == "error"
        finally:
            p.shutdown()


class TestTelemetryDisabled:
    """Every telemetry endpoint degrades to an explicit 'off' envelope
    rather than erroring when the hub is disabled."""

    def test_disabled_envelopes(self):
        p = MoDisSENSE(_config(telemetry=False))
        rest = RestApi(p)
        try:
            ts = rest.handle("admin_timeseries", {})
            assert ts["data"] == {"enabled": False}
            health = rest.handle("admin_health", {})
            assert health["data"] == {
                "enabled": False, "state": "healthy", "slos": []
            }
            prof = rest.handle("admin_profile", {})
            assert prof["data"] == {"enabled": False}
            events = rest.handle("admin_events", {})
            assert events["data"] == {"enabled": False, "events": []}
        finally:
            p.shutdown()
